/**
 * @file
 * Regression pins: every calibrated cost constant of the simulated
 * device and the analytical framework is locked to the paper's
 * published value. A failing pin means the reproduction's
 * calibration drifted, which would silently invalidate every
 * downstream table and figure.
 */

#include <gtest/gtest.h>

#include "apusim/apu.hh"
#include "apusim/timing.hh"
#include "model/cost_table.hh"

using namespace cisram;

TEST(CostPins, SimulatorDataMovementConstants)
{
    const auto &mv = apu::defaultTiming().move;
    EXPECT_DOUBLE_EQ(mv.dmaL4L3PerByte, 0.19);
    EXPECT_EQ(mv.dmaL4L3Init, 41164u);
    EXPECT_DOUBLE_EQ(mv.dmaL4L2PerByte, 0.63);
    EXPECT_EQ(mv.dmaL4L2Init, 548u);
    EXPECT_EQ(mv.dmaL2L1, 386u);
    EXPECT_EQ(mv.pioLoadPerElem, 57u);
    EXPECT_EQ(mv.pioStorePerElem, 61u);
    EXPECT_EQ(mv.lookupInit, 629u);
    EXPECT_EQ(mv.loadVr, 29u);
    EXPECT_EQ(mv.storeVr, 29u);
    EXPECT_EQ(mv.cpy, 29u);
    EXPECT_EQ(mv.cpySubgrp, 82u);
    EXPECT_EQ(mv.cpyImm, 13u);
    EXPECT_EQ(mv.shiftPerStep, 373u);
    EXPECT_EQ(mv.shiftIntraBankBase, 8u);
}

TEST(CostPins, SimulatorComputeConstants)
{
    const auto &cp = apu::defaultTiming().compute;
    struct Pin
    {
        uint64_t value, paper;
        const char *name;
    } pins[] = {
        {cp.and16, 12, "and_16"},     {cp.or16, 8, "or_16"},
        {cp.not16, 10, "not_16"},     {cp.xor16, 12, "xor_16"},
        {cp.ashift, 15, "ashift"},    {cp.addU16, 12, "add_u16"},
        {cp.addS16, 13, "add_s16"},   {cp.subU16, 15, "sub_u16"},
        {cp.subS16, 16, "sub_s16"},   {cp.popcnt16, 23, "popcnt"},
        {cp.mulU16, 115, "mul_u16"},  {cp.mulS16, 201, "mul_s16"},
        {cp.mulF16, 77, "mul_f16"},   {cp.divU16, 664, "div_u16"},
        {cp.divS16, 739, "div_s16"},  {cp.eq16, 13, "eq_16"},
        {cp.gtU16, 13, "gt_u16"},     {cp.ltU16, 13, "lt_u16"},
        {cp.ltGf16, 45, "lt_gf16"},   {cp.geU16, 13, "ge_u16"},
        {cp.leU16, 13, "le_u16"},     {cp.recipU16, 735, "recip"},
        {cp.expF16, 40295, "exp_f16"},{cp.sinFx, 761, "sin_fx"},
        {cp.cosFx, 761, "cos_fx"},    {cp.countM, 239, "count_m"},
    };
    for (const auto &p : pins)
        EXPECT_EQ(p.value, p.paper) << p.name;
}

TEST(CostPins, FrameworkMatchesSimulatorBaseConstants)
{
    // The analytical CostTable and the simulator's TimingParams are
    // intentionally separate objects; their first-order constants
    // must still agree or Table 7's errors become artifacts.
    model::CostTable t;
    const auto &tp = apu::defaultTiming();
    EXPECT_DOUBLE_EQ(t.dmaL4L3PerByte, tp.move.dmaL4L3PerByte);
    EXPECT_DOUBLE_EQ(t.dmaL4L2PerByte, tp.move.dmaL4L2PerByte);
    EXPECT_DOUBLE_EQ(t.dmaL2L1,
                     static_cast<double>(tp.move.dmaL2L1));
    EXPECT_DOUBLE_EQ(t.pioLdPerElem,
                     static_cast<double>(tp.move.pioLoadPerElem));
    EXPECT_DOUBLE_EQ(t.pioStPerElem,
                     static_cast<double>(tp.move.pioStorePerElem));
    EXPECT_DOUBLE_EQ(t.cpySubgrp,
                     static_cast<double>(tp.move.cpySubgrp));
    EXPECT_DOUBLE_EQ(t.mulS16,
                     static_cast<double>(tp.compute.mulS16));
    EXPECT_DOUBLE_EQ(t.countM,
                     static_cast<double>(tp.compute.countM));
    // And the whole-vector DMA fits stay at the paper's values.
    EXPECT_DOUBLE_EQ(t.dmaL4L1, 22272.0);
    EXPECT_DOUBLE_EQ(t.dmaL1L4, 22186.0);
    EXPECT_DOUBLE_EQ(t.lookupPerEntry, 7.15);
}

TEST(CostPins, DeviceGeometry)
{
    const auto &s = apu::defaultSpec();
    EXPECT_DOUBLE_EQ(s.clockHz, 500.0e6);
    EXPECT_EQ(s.numCores, 4u);
    EXPECT_EQ(s.vrLength, 32768u);
    EXPECT_EQ(s.numVrs, 24u);
    EXPECT_EQ(s.numBanks, 16u);
    EXPECT_EQ(s.numVmrs, 48u);
    EXPECT_EQ(s.l2Bytes, 64u * 1024);
    EXPECT_EQ(s.l3Bytes, 1024u * 1024);
    EXPECT_EQ(s.l4Bytes, 16ull * 1024 * 1024 * 1024);
    EXPECT_EQ(s.dmaChunkBytes, 512u);
    EXPECT_EQ(s.dmaEnginesPerCore, 2u);
    // Derived totals from the paper: 2M bit processors.
    EXPECT_EQ(s.vrLength * s.numCores * 16, 2097152u);
}
