/**
 * @file
 * The persistent-fault escalation ladder, end to end: the
 * HealthMonitor state machine and its query-counted windows, the
 * exactly-once admission journal, sticky gdl fault latches cleared
 * by core/device resets, the reset + re-stage + replay choreography
 * (including address-layout determinism), the DRAM patrol scrubber's
 * measured cut of latent ECC escalations, admission-control
 * shedding, and serial-vs-threaded bit-identity of a recovering
 * pipeline.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apusim/apu.hh"
#include "apusim/multicore.hh"
#include "baseline/faisslite.hh"
#include "baseline/workloads.hh"
#include "common/metrics.hh"
#include "common/status.hh"
#include "common/threadpool.hh"
#include "dramsim/dram_sim.hh"
#include "fault/fault.hh"
#include "gdl/gdl.hh"
#include "kernels/serving.hh"
#include "recovery/health.hh"
#include "recovery/journal.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;
using namespace cisram::recovery;

namespace {

/** Disarm on scope exit so no test leaks an armed plan. */
struct PlanGuard
{
    explicit PlanGuard(const std::string &spec)
    {
        auto p = fault::FaultPlan::parse(spec);
        EXPECT_TRUE(p.ok()) << p.status().toString();
        fault::armPlan(*p);
    }
    ~PlanGuard() { fault::disarm(); }
};

/** Pin CISRAM_SIM_THREADS for one scope. */
struct ThreadSetting
{
    explicit ThreadSetting(unsigned n) { setSimThreads(n); }
    ~ThreadSetting() { setSimThreads(0); }
};

HealthPolicy
enabledPolicy(unsigned window, unsigned degrade, unsigned quarantine,
              unsigned sheds)
{
    HealthPolicy p;
    p.enabled = true;
    p.windowQueries = window;
    p.degradeThreshold = degrade;
    p.quarantineThreshold = quarantine;
    p.quarantineAdmissions = sheds;
    return p;
}

} // namespace

// ---- HealthMonitor: the state machine ----------------------------------

TEST(HealthLadder, EscalatesThroughDegradedToQuarantined)
{
    HealthMonitor hm(0, enabledPolicy(8, 1, 3, 2));
    EXPECT_EQ(hm.state(), CoreState::Healthy);

    hm.observeFaults(FaultLedgerDelta{1, 0, 0});
    EXPECT_EQ(hm.state(), CoreState::Degraded);
    EXPECT_EQ(hm.windowFaults(), 1u);

    // The ledger kinds all count: a CRC-exhausted transfer plus an
    // ECC double push the window total over the quarantine line.
    hm.observeFaults(FaultLedgerDelta{0, 1, 1});
    EXPECT_EQ(hm.state(), CoreState::Quarantined);

    ASSERT_EQ(hm.transitions().size(), 2u);
    EXPECT_EQ(hm.transitions()[0].from, CoreState::Healthy);
    EXPECT_EQ(hm.transitions()[0].to, CoreState::Degraded);
    EXPECT_EQ(hm.transitions()[1].from, CoreState::Degraded);
    EXPECT_EQ(hm.transitions()[1].to, CoreState::Quarantined);
}

TEST(HealthLadder, CleanWindowHealsDegraded)
{
    HealthMonitor hm(0, enabledPolicy(8, 1, 3, 2));
    hm.observeFaults(FaultLedgerDelta{1, 0, 0});
    ASSERT_EQ(hm.state(), CoreState::Degraded);

    // The window the fault landed in closes dirty: still Degraded.
    hm.observeQueries(8);
    EXPECT_EQ(hm.state(), CoreState::Degraded);

    // The next window closes clean: healed.
    hm.observeQueries(8);
    EXPECT_EQ(hm.state(), CoreState::Healthy);
    ASSERT_EQ(hm.transitions().size(), 2u);
    EXPECT_EQ(hm.transitions()[1].to, CoreState::Healthy);
}

TEST(HealthLadder, WindowsTumbleSoOldFaultsExpire)
{
    // One fault per window with quarantineThreshold 3: the counter
    // must reset at each window boundary, never accumulate across.
    HealthMonitor hm(0, enabledPolicy(4, 2, 3, 2));
    for (int w = 0; w < 5; ++w) {
        hm.observeFaults(FaultLedgerDelta{1, 0, 0});
        hm.observeQueries(4);
        EXPECT_EQ(hm.state(), CoreState::Healthy) << "window " << w;
    }
    EXPECT_TRUE(hm.transitions().empty());
}

TEST(HealthLadder, QuarantineAgesOutAfterConfiguredSheds)
{
    HealthMonitor hm(2, enabledPolicy(8, 1, 2, 3));
    hm.forceQuarantine();
    ASSERT_EQ(hm.state(), CoreState::Quarantined);

    EXPECT_FALSE(hm.observeShed());
    EXPECT_FALSE(hm.observeShed());
    EXPECT_TRUE(hm.observeShed()); // aged out: caller resets now

    hm.beginReset();
    EXPECT_EQ(hm.state(), CoreState::Resetting);
    hm.completeReset();
    EXPECT_EQ(hm.state(), CoreState::Healthy);
    EXPECT_EQ(hm.windowFaults(), 0u);

    ASSERT_EQ(hm.transitions().size(), 3u);
    EXPECT_EQ(hm.transitions()[0].to, CoreState::Quarantined);
    EXPECT_EQ(hm.transitions()[1].to, CoreState::Resetting);
    EXPECT_EQ(hm.transitions()[2].to, CoreState::Healthy);
}

TEST(HealthLadder, DisabledPolicyNeverTransitions)
{
    HealthMonitor hm(0, HealthPolicy{});
    hm.observeFaults(FaultLedgerDelta{100, 100, 100});
    hm.observeQueries(1000);
    hm.forceQuarantine();
    EXPECT_EQ(hm.state(), CoreState::Healthy);
    EXPECT_TRUE(hm.transitions().empty());
}

TEST(HealthLadderDeathTest, MisusePanics)
{
    HealthMonitor hm(0, enabledPolicy(8, 1, 2, 2));
    EXPECT_DEATH(hm.observeShed(),
                 "observeShed on a core that is Healthy");
    EXPECT_DEATH(hm.beginReset(),
                 "beginReset on a core that is Healthy");
    EXPECT_DEATH(hm.completeReset(),
                 "completeReset on a core that is Healthy");
}

// ---- ReplayJournal: exactly-once ---------------------------------------

TEST(Journal, TracksPendingInAdmissionOrder)
{
    ReplayJournal<int> j;
    j.admit(10, 1, 0.5);
    j.admit(11, 2, 0.6);
    j.admit(12, 3, 0.7);
    EXPECT_EQ(j.admitted(), 3u);
    EXPECT_EQ(j.outstanding(), 3u);

    j.complete(11);
    EXPECT_EQ(j.outstanding(), 2u);
    auto pend = j.pending();
    ASSERT_EQ(pend.size(), 2u);
    EXPECT_EQ(pend[0]->id, 10u);
    EXPECT_EQ(pend[1]->id, 12u);
    // Replay must see the original admission clock, not the replay's.
    EXPECT_DOUBLE_EQ(pend[0]->admitSeconds, 0.5);

    j.complete(10);
    j.complete(12);
    EXPECT_EQ(j.outstanding(), 0u);
}

TEST(JournalDeathTest, ExactlyOnceViolationsPanic)
{
    ReplayJournal<int> j;
    j.admit(7, 0, 0.0);
    EXPECT_DEATH(j.admit(7, 0, 0.0), "duplicate admission");
    EXPECT_DEATH(j.complete(99), "completing unknown");
    j.complete(7);
    EXPECT_DEATH(j.complete(7), "double completion");
}

// ---- gdl: sticky latches and resets ------------------------------------

TEST(GdlRecovery, StickyHangWedgesCoreUntilReset)
{
    PlanGuard plan("task_hang:core=0,nth=1,sticky=1;seed:3");
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);
    auto noop = [](apu::ApuCore &) { return 0; };

    // The drawn firing wedges the core...
    Status st = ctx.runTaskTimeoutOn(0, 1e-3, noop);
    EXPECT_EQ(st.code(), StatusCode::DeadlineExceeded);
    EXPECT_TRUE(ctx.coreWedged(0));

    // ...and every later launch hangs without a new draw.
    st = ctx.runTaskTimeoutOn(0, 1e-3, noop);
    EXPECT_EQ(st.code(), StatusCode::DeadlineExceeded);
    EXPECT_NE(st.message().find("wedged core 0"), std::string::npos);
    EXPECT_NE(st.message().find("needs a reset"), std::string::npos);
    EXPECT_EQ(ctx.stats().tasksTimedOut, 2u);

    // Other cores are untouched by this core's wedge.
    EXPECT_FALSE(ctx.coreWedged(1));
    EXPECT_TRUE(ctx.runTaskTimeoutOn(1, 1e-3, noop).ok());

    gdl::ResetOutcome out = ctx.resetCore(0);
    EXPECT_FALSE(ctx.coreWedged(0));
    EXPECT_GT(out.seconds, 0.0);
    EXPECT_EQ(ctx.stats().coreResets, 1u);
    EXPECT_GT(ctx.stats().resetSeconds, 0.0);
    EXPECT_TRUE(ctx.runTaskTimeoutOn(0, 1e-3, noop).ok());
}

TEST(GdlRecovery, StickyPcieCorruptWedgesLinkUntilDeviceReset)
{
    gdl::resetFaultStreams();
    PlanGuard plan("pcie_corrupt:nth=1,sticky=1;seed:3");
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);
    gdl::MemHandle h = ctx.memAllocAligned(4096);
    std::vector<uint8_t> buf(4096, 0xa5);

    // The first transfer draws the corrupt, the latch makes every
    // retry corrupt too: the transfer dies after all attempts.
    Status st = ctx.tryMemCpyToDev(h, buf.data(), buf.size());
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("all"), std::string::npos);
    EXPECT_TRUE(ctx.linkWedged());
    EXPECT_EQ(ctx.stats().pcieErrors, 1u);

    // The wedge is link state: a fresh transfer fails too.
    st = ctx.tryMemCpyToDev(h, buf.data(), buf.size());
    EXPECT_FALSE(st.ok());

    gdl::ResetOutcome out = ctx.resetDevice();
    EXPECT_FALSE(ctx.linkWedged());
    EXPECT_GT(out.seconds, 0.0);
    EXPECT_EQ(ctx.stats().deviceResets, 1u);

    // resetDevice released the session footprint; re-allocate and
    // verify the link carries clean transfers again.
    h = ctx.memAllocAligned(4096);
    EXPECT_TRUE(ctx.tryMemCpyToDev(h, buf.data(), buf.size()).ok());
    ctx.memFree(h);
}

TEST(GdlRecovery, ResetReleasesFootprintAndRecyclesAddresses)
{
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);
    gdl::MemHandle a = ctx.memAllocAligned(4096);
    gdl::MemHandle b = ctx.memAllocAligned(8192);

    double pcie_before = ctx.stats().pcieSeconds;
    gdl::ResetOutcome out = ctx.resetCore(0, 1ull << 20);
    EXPECT_EQ(out.freedBytes, 4096u + 8192u);
    EXPECT_EQ(out.restagedBytes, 1ull << 20);
    // Reset time = device re-init plus the PCIe re-stage of the
    // lost shard, and the PCIe share lands in the PCIe ledger.
    EXPECT_GT(out.seconds, 0.0);
    EXPECT_GT(ctx.stats().pcieSeconds, pcie_before);
    EXPECT_GE(ctx.stats().bytesToDevice, 1ull << 20);

    // The allocator's free lists hand the same addresses back to a
    // same-order rebuild — the property replay bit-identity rests on.
    gdl::MemHandle a2 = ctx.memAllocAligned(4096);
    gdl::MemHandle b2 = ctx.memAllocAligned(8192);
    EXPECT_EQ(a2.addr, a.addr);
    EXPECT_EQ(b2.addr, b.addr);
    ctx.memFree(a2);
    ctx.memFree(b2);
}

// ---- DRAM: latent singles and the patrol scrubber ----------------------

TEST(DramScrub, WritesClearLatentSinglesAndClearLatentsForgets)
{
    PlanGuard plan("dram_flip:p=0.5;seed:3");
    dram::DramSystem sys(dram::hbm2eConfig());

    sys.streamReadSeconds(0, 64ull << 10);
    EXPECT_GT(sys.latentSingles(), 0u);
    size_t before = sys.latentSingles();

    // A write re-encodes its codewords: the latents under it vanish.
    sys.streamWriteSeconds(0, 64ull << 10);
    EXPECT_EQ(sys.latentSingles(), 0u);
    EXPECT_LT(sys.latentSingles(), before);

    sys.streamReadSeconds(0, 64ull << 10);
    EXPECT_GT(sys.latentSingles(), 0u);
    sys.clearLatents();
    EXPECT_EQ(sys.latentSingles(), 0u);
    // clearLatents models a wholesale rewrite, not scrubbing: the
    // scrub ledger stays untouched.
    EXPECT_EQ(sys.eccStats().scrubCorrected, 0u);
    (void)sys.takeFaultStatus(); // drop any latent escalation
}

TEST(DramScrub, RereadingLatentSinglesEscalatesToDoubles)
{
    PlanGuard plan("dram_flip:p=2e-3;seed:9");
    dram::DramSystem sys(dram::hbm2eConfig());

    // Re-reading the same 1 MB region accumulates latent singles;
    // sooner or later a new flip lands on one — uncorrectable.
    for (int pass = 0; pass < 12; ++pass)
        sys.streamReadSeconds(0, 1ull << 20);

    const auto &ecc = sys.eccStats();
    EXPECT_GT(ecc.singleCorrected, 0u);
    EXPECT_GT(ecc.doubleDetected, 0u);
    Status st = sys.takeFaultStatus();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("latent"), std::string::npos);
}

TEST(DramScrub, PatrolScrubCutsLatentEscalations)
{
    PlanGuard plan("dram_flip:p=2e-3;seed:9");
    dram::DramSystem sys(dram::hbm2eConfig());
    const int kPasses = 12;
    const uint64_t kBytes = 1ull << 20;

    // Phase 1: no scrubbing. Latents age in place and escalate.
    for (int pass = 0; pass < kPasses; ++pass)
        sys.streamReadSeconds(0, kBytes);
    uint64_t doubles_off = sys.eccStats().doubleDetected;
    ASSERT_GT(doubles_off, 0u);
    (void)sys.takeFaultStatus();

    // Phase 2: same workload with an aggressive patrol scrub. Start
    // from clean storage (as a re-stage would) so the phases compare
    // like for like.
    sys.clearLatents();
    dram::ScrubConfig scrub;
    scrub.enabled = true;
    scrub.intervalReadBursts = 1024;
    scrub.burstsPerTick = 4096;
    sys.setScrubConfig(scrub);
    uint64_t reads_before = sys.stats().reads;
    for (int pass = 0; pass < kPasses; ++pass)
        sys.streamReadSeconds(0, kBytes);
    uint64_t doubles_on =
        sys.eccStats().doubleDetected - doubles_off;

    // The scrubber worked, its traffic is charged as real reads,
    // and the escalation rate dropped measurably.
    EXPECT_GT(sys.eccStats().scrubReads, 0u);
    EXPECT_GT(sys.eccStats().scrubCorrected, 0u);
    EXPECT_GT(sys.stats().reads - reads_before,
              sys.eccStats().wordsChecked / 1000); // includes scrub
    EXPECT_LT(doubles_on * 4, doubles_off)
        << "scrub on: " << doubles_on
        << ", scrub off: " << doubles_off;
    (void)sys.takeFaultStatus();
}

TEST(DramScrub, ScrubIsInertWithoutAnArmedDramClause)
{
    dram::ScrubConfig scrub;
    scrub.enabled = true;
    dram::DramSystem sys(dram::hbm2eConfig());
    sys.setScrubConfig(scrub);
    sys.streamReadSeconds(0, 4ull << 20);
    EXPECT_EQ(sys.eccStats().scrubReads, 0u);
    EXPECT_EQ(sys.latentSingles(), 0u);
}

// ---- DeviceServer: admission control -----------------------------------

TEST(ServingAdmission, DepthBoundShedsAtTheDoor)
{
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    ServerConfig cfg;
    cfg.batch = BatchPolicy{8, 100};
    cfg.admission.maxQueueDepth = 2;
    DeviceServer server(dev, spec, 0, nullptr, 1, cfg);

    EXPECT_TRUE(server.enqueue(0, genQuery(spec.dim, 10)).ok());
    EXPECT_TRUE(server.enqueue(1, genQuery(spec.dim, 11)).ok());
    Status st = server.enqueue(2, genQuery(spec.dim, 12));
    EXPECT_EQ(st.code(), StatusCode::ResourceExhausted);
    EXPECT_NE(st.message().find("admission queue full"),
              std::string::npos);

    // The shed query was never admitted: exactly the two admitted
    // queries get outcomes.
    EXPECT_EQ(server.drain().size(), 2u);
    EXPECT_EQ(server.journalOutstanding(), 0u);
}

TEST(ServingAdmission, PredictedDelayOverBudgetSheds)
{
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    ServerConfig cfg;
    cfg.batch = BatchPolicy{1, 0};
    cfg.admission.maxQueueDelaySeconds = 1e-9;
    DeviceServer server(dev, spec, 0, nullptr, 1, cfg);

    // The predictor has no samples yet: the first query is admitted
    // and served, seeding the EWMA.
    EXPECT_TRUE(server.enqueue(0, genQuery(spec.dim, 10)).ok());
    EXPECT_EQ(server.pump().size(), 1u);

    // An idle queue predicts zero wait (ceil(0/maxBatch) batches
    // ahead), so even a nanosecond budget admits. The old floor+1
    // predictor shed here — DESIGN.md §7 boundary, also pinned by
    // tests/test_wordparallel.cc.
    EXPECT_TRUE(server.enqueue(1, genQuery(spec.dim, 11)).ok());

    // With one query already waiting, the next rides a full batch
    // behind it — far longer than a nanosecond: shed.
    Status st = server.enqueue(2, genQuery(spec.dim, 12));
    EXPECT_EQ(st.code(), StatusCode::ResourceExhausted);
    EXPECT_NE(st.message().find("admission budget"),
              std::string::npos);

    // The admitted query is still delivered.
    EXPECT_EQ(server.drain().size(), 1u);
    EXPECT_EQ(server.journalOutstanding(), 0u);
}

// ---- DeviceServer: quarantine, shed, reset, replay ---------------------

TEST(ServingRecovery, QuarantineShedsWithResourceExhausted)
{
    PlanGuard plan("task_hang:core=0,p=1,sticky=1;seed:5");
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    ServerConfig cfg;
    cfg.batch = BatchPolicy{1, 0};
    cfg.health = enabledPolicy(16, 1, 2, 3);
    cfg.maxResets = 0; // never reset: quarantine is terminal here
    DeviceServer server(dev, spec, 0, nullptr, 1, cfg);

    auto &shed = metrics::Registry::get().counter(
        "recovery.shed",
        {{"device", "0"},
         {"core", "0"},
         {"reason", "quarantine"},
         {"tenant", "-"},
         {"slo_class", "0"}});
    double shed_before = shed.value();

    // The first batch wedges the core mid-retry and parks.
    EXPECT_TRUE(server.enqueue(1, genQuery(spec.dim, 1)).ok());
    EXPECT_TRUE(server.pump().empty());
    EXPECT_EQ(server.health().state(), CoreState::Quarantined);
    EXPECT_EQ(server.journalOutstanding(), 1u);

    // Quarantined + no reset budget: every admission sheds loudly.
    for (uint64_t q = 2; q <= 4; ++q) {
        Status st =
            server.enqueue(q, genQuery(spec.dim, static_cast<int>(q)));
        EXPECT_EQ(st.code(), StatusCode::ResourceExhausted)
            << "query " << q;
        EXPECT_NE(st.message().find("quarantined"),
                  std::string::npos);
    }
    EXPECT_EQ(shed.value() - shed_before, 3.0);

    // drain() cannot reset (budget 0): the parked query is forced
    // through the CPU fallback — delivered, never dropped.
    auto outs = server.drain();
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].id, 1u);
    EXPECT_TRUE(outs[0].ok);
    EXPECT_FALSE(outs[0].fromDevice);
    EXPECT_EQ(server.journalOutstanding(), 0u);
    EXPECT_EQ(server.resets(), 0u);
}

TEST(ServingRecovery, ForceResetReplaysToIdenticalAnswers)
{
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    DeviceServer server(dev, spec, 0, nullptr, 1, ServerConfig{});

    ServeOutcome before = server.serve(genQuery(spec.dim, 42));
    ASSERT_TRUE(before.ok);

    gdl::ResetOutcome out = server.forceReset();
    EXPECT_GT(out.seconds, 0.0);
    // The server tears its buffers down through their destructors
    // (in reverse allocation order) before the gdl reset, so the
    // session owns nothing by the time resetCore runs — the freed
    // footprint shows up in the allocator, not in the outcome.
    EXPECT_EQ(out.freedBytes, 0u);
    EXPECT_EQ(out.restagedBytes, server.restageBytes());
    EXPECT_EQ(server.resets(), 1u);
    EXPECT_EQ(server.host().stats().coreResets, 1u);

    // The rebuilt footprint lands on the same addresses, so the
    // same query retrieves bit-identically after the reset.
    ServeOutcome after = server.serve(genQuery(spec.dim, 42));
    ASSERT_TRUE(after.ok);
    EXPECT_EQ(after.fromDevice, before.fromDevice);
    EXPECT_EQ(after.ids, before.ids);
    EXPECT_DOUBLE_EQ(after.retrievalSeconds,
                     before.retrievalSeconds);
}

TEST(ServingRecovery, PersistentHangEscalatesResetsAndReplays)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    // A sticky hang wedges core 0 on its second task — the first
    // batch serves clean, the second wedges, quarantines, and parks.
    // drain() must reset the core, re-stage the shard, and replay
    // the journaled batch to the exact answers an un-faulted run
    // produces: all queries answered, zero wrong top-k.
    RagCorpusSpec corpus{"unit", 0, 3000, 368};
    const uint64_t seed = 2026;
    apu::ApuDevice dev;
    IndexFlatI16 index(corpus.dim);
    {
        auto emb = genEmbeddings(corpus, 0, corpus.numChunks, seed);
        index.add(emb.data(), corpus.numChunks);
    }
    auto query = [&](uint64_t q) {
        return genQuery(corpus.dim, 600 + static_cast<int>(q));
    };

    ServerConfig cfg;
    cfg.batch = BatchPolicy{4, 4};
    cfg.health = enabledPolicy(16, 1, 2, 4);

    std::vector<ServeOutcome> faulted;
    unsigned resets = 0;
    uint64_t replayed = 0;
    std::vector<Transition> ladder;
    {
        PlanGuard plan("task_hang:core=0,nth=2,sticky=1;seed:7");
        DeviceServer server(dev, corpus, 0, &index, seed, cfg);
        for (uint64_t q = 0; q < 8; ++q)
            EXPECT_TRUE(server.enqueue(q, query(q)).ok());
        faulted = server.drain();
        resets = server.resets();
        replayed = server.replayedQueries();
        ladder = server.health().transitions();
        EXPECT_EQ(server.journalOutstanding(), 0u);
        EXPECT_EQ(server.health().state(), CoreState::Healthy);
        EXPECT_EQ(server.host().stats().coreResets, 1u);
        EXPECT_GT(server.host().stats().resetSeconds, 0.0);
    }

    ASSERT_EQ(faulted.size(), 8u);
    EXPECT_EQ(resets, 1u);
    EXPECT_EQ(replayed, 4u); // the parked second batch

    // The full ladder ran: Healthy -> Degraded -> Quarantined ->
    // Resetting -> Healthy.
    ASSERT_EQ(ladder.size(), 4u);
    EXPECT_EQ(ladder[0].to, CoreState::Degraded);
    EXPECT_EQ(ladder[1].to, CoreState::Quarantined);
    EXPECT_EQ(ladder[2].to, CoreState::Resetting);
    EXPECT_EQ(ladder[3].to, CoreState::Healthy);

    // Reference: the same workload with no fault plan armed.
    std::vector<ServeOutcome> clean;
    {
        DeviceServer server(dev, corpus, 0, &index, seed, cfg);
        for (uint64_t q = 0; q < 8; ++q)
            EXPECT_TRUE(server.enqueue(q, query(q)).ok());
        clean = server.drain();
    }
    ASSERT_EQ(clean.size(), 8u);

    // Replayed batches are bit-identical to the un-faulted run: for
    // every query, same device answer, same top-k ids.
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(faulted[i].ok) << "query " << faulted[i].id;
        EXPECT_TRUE(faulted[i].fromDevice)
            << "query " << faulted[i].id;
        EXPECT_EQ(faulted[i].id, clean[i].id);
        EXPECT_EQ(faulted[i].ids, clean[i].ids)
            << "query " << faulted[i].id;
    }
    // ...and those answers are the right ones.
    for (const auto &o : clean) {
        auto expect = index.search(query(o.id).data(), 5);
        ASSERT_EQ(o.ids.size(), expect.size());
        for (size_t i = 0; i < o.ids.size(); ++i)
            EXPECT_EQ(o.ids[i],
                      static_cast<uint32_t>(expect[i].id))
                << "query " << o.id << " rank " << i;
    }
}

// ---- Pipeline determinism with recovery in the loop --------------------

namespace {

struct RecoverySnapshot
{
    std::vector<double> served, waits;
    std::vector<unsigned> attempts;
    std::vector<int> fromDevice;
    std::vector<double> busy;
    std::vector<unsigned> resets;
    std::vector<uint64_t> replayed;
};

RecoverySnapshot
runRecoveringPipeline()
{
    constexpr int kQ = 16;
    gdl::resetFaultStreams();
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    for (unsigned c = 0; c < dev.numCores(); ++c)
        dev.core(c).setMode(apu::ExecMode::TimingOnly);

    ServerConfig cfg;
    cfg.batch = BatchPolicy{2, 2};
    cfg.health = enabledPolicy(16, 1, 2, 4);
    std::vector<std::unique_ptr<DeviceServer>> servers;
    for (unsigned c = 0; c < dev.numCores(); ++c)
        servers.push_back(std::make_unique<DeviceServer>(
            dev, spec, c, nullptr, 7, cfg));

    RecoverySnapshot snap;
    snap.served.resize(kQ);
    snap.waits.resize(kQ);
    snap.attempts.resize(kQ);
    snap.fromDevice.resize(kQ);
    apu::runOnAllCores(dev, [&](apu::ApuCore &, unsigned c,
                                unsigned n) {
        auto shard = apu::shardOf(kQ, c, n);
        auto &server = *servers[c];
        auto record = [&](const ServeOutcome &out) {
            snap.served[out.id] = out.servedSeconds();
            snap.waits[out.id] = out.queueWaitSeconds;
            snap.attempts[out.id] = out.attempts;
            snap.fromDevice[out.id] = out.fromDevice ? 1 : 0;
        };
        for (size_t q = shard.begin; q < shard.end; ++q) {
            // Shed admissions would need re-routing; with unbounded
            // admission and a reset budget the enqueue always lands.
            Status st = server.enqueue(
                q, genQuery(spec.dim, 70 + static_cast<int>(q)));
            cisram_assert(st.ok(), st.toString());
            for (const auto &out : server.pump())
                record(out);
        }
        for (const auto &out : server.drain())
            record(out);
    });
    for (auto &s : servers) {
        snap.busy.push_back(s->busySeconds());
        snap.resets.push_back(s->resets());
        snap.replayed.push_back(s->replayedQueries());
    }
    return snap;
}

} // namespace

TEST(ServingRecovery, BitIdenticalAcrossSimThreadCounts)
{
    // The hard case for the determinism contract: a sticky wedge on
    // core 1 forces a quarantine -> reset -> replay mid-pipeline,
    // with transient PCIe corruption sprinkled everywhere. The whole
    // recovery choreography must land on the same queries at the
    // same simulated times for any CISRAM_SIM_THREADS.
    PlanGuard plan(
        "task_hang:core=1,nth=2,sticky=1;pcie_corrupt:p=0.02;"
        "seed:11");
    RecoverySnapshot serial, threaded;
    {
        ThreadSetting one(1);
        serial = runRecoveringPipeline();
    }
    {
        ThreadSetting four(4);
        threaded = runRecoveringPipeline();
    }
    ASSERT_EQ(serial.served.size(), threaded.served.size());
    for (size_t q = 0; q < serial.served.size(); ++q) {
        EXPECT_EQ(serial.served[q], threaded.served[q]) << "q=" << q;
        EXPECT_EQ(serial.waits[q], threaded.waits[q]) << "q=" << q;
        EXPECT_EQ(serial.attempts[q], threaded.attempts[q])
            << "q=" << q;
        EXPECT_EQ(serial.fromDevice[q], threaded.fromDevice[q])
            << "q=" << q;
    }
    ASSERT_EQ(serial.busy.size(), threaded.busy.size());
    for (size_t c = 0; c < serial.busy.size(); ++c) {
        EXPECT_EQ(serial.busy[c], threaded.busy[c]) << "core=" << c;
        EXPECT_EQ(serial.resets[c], threaded.resets[c])
            << "core=" << c;
        EXPECT_EQ(serial.replayed[c], threaded.replayed[c])
            << "core=" << c;
    }
    // The ladder actually ran: the wedged core reset and replayed.
    unsigned total_resets = 0;
    uint64_t total_replayed = 0;
    for (size_t c = 0; c < serial.resets.size(); ++c) {
        total_resets += serial.resets[c];
        total_replayed += serial.replayed[c];
    }
    EXPECT_GE(total_resets, 1u);
    EXPECT_GE(total_replayed, 1u);
}

// ---- fleet device labels on the recovery series -------------------------

TEST(HealthMonitor, MetricSeriesCarryTheDeviceIndex)
{
    // A fleet collapses without the device label: every device's
    // core 0 would write one shared series. Transition a monitor
    // built with device=3 and assert the fully-labeled series moved
    // while the device=0 twin did not.
    auto &reg = metrics::Registry::get();
    auto &scoped = reg.counter("recovery.transitions",
                               {{"device", "3"},
                                {"core", "1"},
                                {"from", "Healthy"},
                                {"to", "Quarantined"}});
    auto &unscoped = reg.counter("recovery.transitions",
                                 {{"device", "0"},
                                  {"core", "1"},
                                  {"from", "Healthy"},
                                  {"to", "Quarantined"}});
    double scoped_before = scoped.value();
    double unscoped_before = unscoped.value();

    HealthMonitor hm(1, enabledPolicy(8, 1, 2, 3), 3);
    EXPECT_EQ(hm.device(), 3u);
    hm.observeFaults(FaultLedgerDelta{2, 0, 0});
    EXPECT_EQ(hm.state(), CoreState::Quarantined);

    EXPECT_EQ(scoped.value() - scoped_before, 1.0);
    EXPECT_EQ(unscoped.value() - unscoped_before, 0.0);

    EXPECT_EQ(reg.gauge("recovery.core_state",
                        {{"device", "3"}, {"core", "1"}})
                  .value(),
              static_cast<double>(CoreState::Quarantined));
}

TEST(HealthMonitor, DefaultDeviceIndexIsZero)
{
    // Standalone single-device serving (every pre-fleet caller)
    // lands on the device=0 series.
    auto &reg = metrics::Registry::get();
    auto &zero = reg.counter("recovery.transitions",
                             {{"device", "0"},
                              {"core", "7"},
                              {"from", "Healthy"},
                              {"to", "Degraded"}});
    double before = zero.value();
    HealthMonitor hm(7, enabledPolicy(8, 1, 3, 2));
    EXPECT_EQ(hm.device(), 0u);
    hm.observeFaults(FaultLedgerDelta{1, 0, 0});
    EXPECT_EQ(hm.state(), CoreState::Degraded);
    EXPECT_EQ(zero.value() - before, 1.0);
}
