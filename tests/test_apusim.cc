/**
 * @file
 * APU device tests: memory hierarchy, DMA functional + timing
 * behaviour, PIO, lookup, execution modes, and cycle accounting.
 */

#include <gtest/gtest.h>

#include "apusim/apu.hh"
#include "common/rng.hh"

using namespace cisram;
using namespace cisram::apu;

namespace {

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<uint8_t>(rng.next());
    return v;
}

} // namespace

TEST(DeviceDram, SparseReadWrite)
{
    DeviceDram dram(1ull << 34);
    EXPECT_EQ(dram.residentPages(), 0u);

    // Unwritten memory reads as zero.
    uint8_t buf[16];
    dram.read(12345678, buf, sizeof(buf));
    for (uint8_t b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(dram.residentPages(), 0u);

    auto data = randomBytes(200000, 3);
    uint64_t addr = 3ull * 1024 * 1024 * 1024 + 17; // unaligned, > 2 GB
    dram.write(addr, data.data(), data.size());
    std::vector<uint8_t> back(data.size());
    dram.read(addr, back.data(), back.size());
    EXPECT_EQ(back, data);
    EXPECT_GT(dram.residentPages(), 2u);
}

TEST(DeviceDram, CrossPageBoundary)
{
    DeviceDram dram(1 << 20);
    uint64_t addr = DeviceDram::pageBytes - 3;
    uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    dram.write(addr, data, sizeof(data));
    uint8_t back[8];
    dram.read(addr, back, sizeof(back));
    EXPECT_EQ(0, std::memcmp(back, data, sizeof(back)));
}

TEST(DramAllocator, AlignmentAndExhaustion)
{
    DramAllocator alloc(4096);
    uint64_t a = alloc.alloc(100, 512);
    uint64_t b = alloc.alloc(100, 512);
    EXPECT_EQ(a % 512, 0u);
    EXPECT_EQ(b % 512, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_DEATH((void)alloc.alloc(1 << 20), "exhausted");
}

class ApuCoreTest : public ::testing::Test
{
  protected:
    ApuCoreTest() : dev(), core(dev.core(0)) {}

    ApuDevice dev;
    ApuCore &core;
};

TEST_F(ApuCoreTest, DmaL4ToL1RoundTrip)
{
    size_t bytes = dev.spec().vrBytes();
    auto data = randomBytes(bytes, 17);
    uint64_t addr = dev.allocator().alloc(bytes);
    dev.l4().write(addr, data.data(), bytes);

    core.dmaL4ToL1(0, addr);
    uint64_t out_addr = dev.allocator().alloc(bytes);
    core.dmaL1ToL4(out_addr, 0);

    std::vector<uint8_t> back(bytes);
    dev.l4().read(out_addr, back.data(), bytes);
    EXPECT_EQ(back, data);
}

TEST_F(ApuCoreTest, DmaL4ToL1CostMatchesPaper)
{
    // Paper Table 4: dma_l4_l1 measured at 22272 cycles for one full
    // 16-bit x 32K vector. The simulator's decomposed model must land
    // within 1%.
    core.stats().reset();
    core.dmaL4ToL1(0, 0);
    EXPECT_NEAR(core.stats().cycles(), 22272.0, 222.0);

    core.stats().reset();
    core.dmaL1ToL4(0, 0);
    EXPECT_NEAR(core.stats().cycles(), 22186.0, 222.0);
}

TEST_F(ApuCoreTest, DmaL4ToL2CostMatchesPaper)
{
    // Paper Table 4: dma_l4_l2 ~= 0.63 d + 548.
    for (size_t d : {512u, 4096u, 65536u}) {
        core.stats().reset();
        core.dmaL4ToL2(0, 0, d);
        double expect = 0.63 * static_cast<double>(d) + 548.0;
        EXPECT_NEAR(core.stats().cycles(), expect, expect * 0.01 + 20)
            << d;
    }
}

TEST_F(ApuCoreTest, DmaL4ToL3CostMatchesPaper)
{
    for (size_t d : {4096u, 262144u}) {
        core.stats().reset();
        core.dmaL4ToL3(0, 0, d);
        double expect = 0.19 * static_cast<double>(d) + 41164.0;
        EXPECT_NEAR(core.stats().cycles(), expect, expect * 0.01)
            << d;
    }
}

TEST_F(ApuCoreTest, PartialChunksCostWholeChunks)
{
    // 513 bytes needs two 512-byte chunks: costlier than linear.
    core.stats().reset();
    core.dmaL4ToL2(0, 0, 513);
    double two_chunks = core.stats().cycles();
    core.stats().reset();
    core.dmaL4ToL2(0, 0, 1024);
    EXPECT_DOUBLE_EQ(core.stats().cycles(), two_chunks);
}

TEST_F(ApuCoreTest, ChunkedDmaGathersAndDuplicates)
{
    size_t chunk = dev.spec().dmaChunkBytes;
    auto data = randomBytes(chunk * 2, 23);
    uint64_t addr = dev.allocator().alloc(chunk * 2);
    dev.l4().write(addr, data.data(), data.size());

    // Duplicate chunk 0 twice, then chunk 1: a layout transformation.
    core.dmaL4ToL2Chunks({addr, addr, addr + chunk}, 0);
    std::vector<uint8_t> l2(chunk * 3);
    core.l2().read(0, l2.data(), l2.size());
    EXPECT_EQ(0, std::memcmp(l2.data(), data.data(), chunk));
    EXPECT_EQ(0, std::memcmp(l2.data() + chunk, data.data(), chunk));
    EXPECT_EQ(0,
              std::memcmp(l2.data() + 2 * chunk, data.data() + chunk,
                          chunk));
}

TEST_F(ApuCoreTest, PioCostsPerElement)
{
    core.stats().reset();
    core.pioLoad(0, 0, 1, 0, 2, 100);
    EXPECT_NEAR(core.stats().cycles(), 57.0 * 100, 57.0 + 20);

    core.stats().reset();
    core.pioStore(0, 2, 0, 0, 1, 100);
    EXPECT_NEAR(core.stats().cycles(), 61.0 * 100, 61.0 + 20);
}

TEST_F(ApuCoreTest, PioStridedLayout)
{
    // Write a pattern into L4 and gather every third u16 into VR 0
    // with VR stride 2.
    std::vector<uint16_t> pattern(64);
    for (size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<uint16_t>(i * 10);
    uint64_t addr = dev.allocator().alloc(pattern.size() * 2);
    dev.l4().write(addr, pattern.data(), pattern.size() * 2);

    core.pioLoad(0, 4, 2, addr, 6, 10);
    const auto &vr = core.vr()[0];
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(vr[4 + 2 * i], pattern[3 * i]) << i;
}

TEST_F(ApuCoreTest, LookupGathersFromL3)
{
    // Table of 112 entries (a whole number of 16-entry granules) in
    // L3; cost then matches the paper's 7.15 sigma + 629 fit closely.
    std::vector<uint16_t> table(112);
    for (size_t i = 0; i < table.size(); ++i)
        table[i] = static_cast<uint16_t>(1000 + i);
    core.l3().write(0, table.data(), table.size() * 2);

    auto &idx = core.vr()[1];
    Rng rng(31);
    for (auto &v : idx)
        v = static_cast<uint16_t>(rng.nextBelow(table.size()));

    core.stats().reset();
    core.lookup(0, 1, 0, table.size());
    double expect = 7.15 * 112 + 629;
    EXPECT_NEAR(core.stats().cycles(), expect, expect * 0.02);

    const auto &dst = core.vr()[0];
    for (size_t i = 0; i < dst.size(); ++i)
        EXPECT_EQ(dst[i], table[idx[i]]);
}

TEST_F(ApuCoreTest, TimingOnlyModeSkipsData)
{
    auto data = randomBytes(dev.spec().vrBytes(), 5);
    uint64_t addr = dev.allocator().alloc(data.size());
    dev.l4().write(addr, data.data(), data.size());

    core.setMode(ExecMode::TimingOnly);
    core.stats().reset();
    core.dmaL4ToL1(0, addr);
    double cycles = core.stats().cycles();
    EXPECT_GT(cycles, 0.0);
    // L1 slot untouched.
    for (uint16_t v : core.l1().slot(0))
        EXPECT_EQ(v, 0);
    core.setMode(ExecMode::Functional);
}

TEST_F(ApuCoreTest, RepeatScopesMultiplyCycles)
{
    core.stats().reset();
    core.dmaL2ToL1(0);
    double one = core.stats().cycles();

    core.stats().reset();
    {
        ScopedRepeat rep(core.stats(), 1000);
        core.dmaL2ToL1(0);
    }
    EXPECT_DOUBLE_EQ(core.stats().cycles(), 1000 * one);

    // Nested scopes compound.
    core.stats().reset();
    {
        ScopedRepeat a(core.stats(), 10);
        ScopedRepeat b(core.stats(), 5);
        core.dmaL2ToL1(0);
    }
    EXPECT_DOUBLE_EQ(core.stats().cycles(), 50 * one);
}

TEST_F(ApuCoreTest, TagsAttributeCycles)
{
    core.stats().reset();
    {
        ScopedTag tag(core.stats(), "ld_lhs");
        core.dmaL2ToL1(0);
    }
    {
        ScopedTag tag(core.stats(), "st");
        core.dmaL1ToL2(0);
    }
    EXPECT_GT(core.stats().taggedCycles("ld_lhs"), 0.0);
    EXPECT_GT(core.stats().taggedCycles("st"), 0.0);
    EXPECT_DOUBLE_EQ(core.stats().taggedCycles("ld_lhs") +
                         core.stats().taggedCycles("st"),
                     core.stats().cycles());
    EXPECT_DOUBLE_EQ(core.stats().taggedCycles("unused"), 0.0);
}

TEST(ApuDevice, FourCoresWithPrivateState)
{
    ApuDevice dev;
    EXPECT_EQ(dev.numCores(), 4u);
    dev.core(0).vr()[0][0] = 42;
    EXPECT_EQ(dev.core(1).vr()[0][0], 0);
    dev.core(2).stats().charge(100);
    EXPECT_DOUBLE_EQ(dev.core(3).stats().cycles(), 0.0);
}

TEST(ApuDevice, CyclesToSeconds)
{
    ApuDevice dev;
    // 500 MHz: 5e8 cycles per second.
    EXPECT_DOUBLE_EQ(dev.cyclesToSeconds(5.0e8), 1.0);
}
