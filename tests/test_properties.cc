/**
 * @file
 * Property-based sweeps (parameterized over RNG seeds): algebraic
 * laws of the GVML operations, data-movement round trips at random
 * shapes, reduction consistency against scalar references, and DRAM
 * timing monotonicity.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dramsim/dram_sim.hh"
#include "gvml/gvml.hh"
#include "kernels/sort.hh"

using namespace cisram;
using namespace cisram::apu;
using namespace cisram::gvml;

class GvmlProperties : public ::testing::TestWithParam<uint64_t>
{
  protected:
    GvmlProperties() : g(dev.core(0)), rng(GetParam()) {}

    void
    fill(Vr v)
    {
        for (auto &x : g.data(v))
            x = rng.nextU16();
    }

    ApuDevice dev;
    Gvml g;
    Rng rng;
};

TEST_P(GvmlProperties, AddCommutesAndAssociates)
{
    fill(Vr(1));
    fill(Vr(2));
    fill(Vr(3));
    g.addU16(Vr(4), Vr(1), Vr(2));
    g.addU16(Vr(5), Vr(2), Vr(1));
    EXPECT_EQ(g.data(Vr(4)), g.data(Vr(5)));

    g.addU16(Vr(6), Vr(4), Vr(3)); // (a+b)+c
    g.addU16(Vr(7), Vr(2), Vr(3));
    g.addU16(Vr(8), Vr(1), Vr(7)); // a+(b+c)
    EXPECT_EQ(g.data(Vr(6)), g.data(Vr(8)));
}

TEST_P(GvmlProperties, SubInvertsAdd)
{
    fill(Vr(1));
    fill(Vr(2));
    g.addU16(Vr(3), Vr(1), Vr(2));
    g.subU16(Vr(4), Vr(3), Vr(2));
    EXPECT_EQ(g.data(Vr(4)), g.data(Vr(1)));
}

TEST_P(GvmlProperties, XorInvolutionAndNotNot)
{
    fill(Vr(1));
    fill(Vr(2));
    g.xor16(Vr(3), Vr(1), Vr(2));
    g.xor16(Vr(4), Vr(3), Vr(2));
    EXPECT_EQ(g.data(Vr(4)), g.data(Vr(1)));
    g.not16(Vr(5), Vr(1));
    g.not16(Vr(6), Vr(5));
    EXPECT_EQ(g.data(Vr(6)), g.data(Vr(1)));
}

TEST_P(GvmlProperties, DeMorgan)
{
    fill(Vr(1));
    fill(Vr(2));
    // ~(a & b) == ~a | ~b
    g.and16(Vr(3), Vr(1), Vr(2));
    g.not16(Vr(3), Vr(3));
    g.not16(Vr(4), Vr(1));
    g.not16(Vr(5), Vr(2));
    g.or16(Vr(6), Vr(4), Vr(5));
    EXPECT_EQ(g.data(Vr(3)), g.data(Vr(6)));
}

TEST_P(GvmlProperties, MinMaxLattice)
{
    fill(Vr(1));
    fill(Vr(2));
    g.minU16(Vr(3), Vr(1), Vr(2));
    g.maxU16(Vr(4), Vr(1), Vr(2));
    // min + max == a + b
    g.addU16(Vr(5), Vr(3), Vr(4));
    g.addU16(Vr(6), Vr(1), Vr(2));
    EXPECT_EQ(g.data(Vr(5)), g.data(Vr(6)));
    // min <= max everywhere
    g.leU16(Vr(7), Vr(3), Vr(4));
    EXPECT_EQ(g.countM(Vr(7)), g.length());
}

TEST_P(GvmlProperties, ComparisonTrichotomy)
{
    fill(Vr(1));
    fill(Vr(2));
    g.ltU16(Vr(3), Vr(1), Vr(2));
    g.gtU16(Vr(4), Vr(1), Vr(2));
    g.eq16(Vr(5), Vr(1), Vr(2));
    g.or16(Vr(6), Vr(3), Vr(4));
    g.or16(Vr(6), Vr(6), Vr(5));
    EXPECT_EQ(g.countM(Vr(6)), g.length());
    // Mutually exclusive.
    g.and16(Vr(7), Vr(3), Vr(4));
    EXPECT_EQ(g.countM(Vr(7)), 0u);
    g.and16(Vr(7), Vr(3), Vr(5));
    EXPECT_EQ(g.countM(Vr(7)), 0u);
}

TEST_P(GvmlProperties, PopcountBoundsAndComplement)
{
    fill(Vr(1));
    g.popcnt16(Vr(2), Vr(1));
    g.not16(Vr(3), Vr(1));
    g.popcnt16(Vr(4), Vr(3));
    const auto &p = g.data(Vr(2));
    const auto &pc = g.data(Vr(4));
    for (size_t i = 0; i < g.length(); ++i) {
        ASSERT_LE(p[i], 16);
        ASSERT_EQ(p[i] + pc[i], 16);
    }
}

TEST_P(GvmlProperties, ShiftRoundTrip)
{
    fill(Vr(1));
    int64_t k = static_cast<int64_t>(rng.nextBelow(500)) + 1;
    g.shiftE(Vr(2), Vr(1), k);
    g.shiftE(Vr(3), Vr(2), -k);
    // Interior elements survive the round trip.
    const auto &a = g.data(Vr(1));
    const auto &b = g.data(Vr(3));
    for (size_t i = static_cast<size_t>(k);
         i + static_cast<size_t>(k) < g.length(); ++i)
        ASSERT_EQ(b[i], a[i]) << i;
}

TEST_P(GvmlProperties, SubgroupBroadcastIdempotent)
{
    fill(Vr(1));
    size_t grp = size_t(64) << rng.nextBelow(5);
    size_t sub = grp >> (1 + rng.nextBelow(3));
    g.cpySubgrp16Grp(Vr(2), Vr(1), grp, sub, 0);
    g.cpySubgrp16Grp(Vr(3), Vr(2), grp, sub, 0);
    EXPECT_EQ(g.data(Vr(3)), g.data(Vr(2)));
}

TEST_P(GvmlProperties, SubgroupReduceMatchesScalar)
{
    auto &src = g.data(Vr(1));
    for (auto &x : src)
        x = static_cast<uint16_t>(rng.nextBelow(64));
    size_t grp = size_t(16) << rng.nextBelow(8);
    size_t sub = size_t(1) << rng.nextBelow(4);
    if (sub > grp)
        std::swap(sub, grp);
    if (grp == sub)
        grp *= 2;
    g.addSubgrpS16(Vr(2), Vr(1), grp, sub);
    const auto &dst = g.data(Vr(2));
    for (size_t base = 0; base < g.length(); base += grp) {
        for (size_t pos = 0; pos < sub; ++pos) {
            int32_t expect = 0;
            for (size_t s = 0; s < grp / sub; ++s)
                expect += static_cast<int16_t>(
                    src[base + s * sub + pos]);
            ASSERT_EQ(static_cast<int16_t>(dst[base + pos]),
                      static_cast<int16_t>(expect))
                << grp << "/" << sub;
        }
    }
}

TEST_P(GvmlProperties, MaxIndexAgreesWithScan)
{
    fill(Vr(1));
    auto mx = g.maxIndexU16(Vr(1));
    const auto &a = g.data(Vr(1));
    uint16_t best = 0;
    size_t best_i = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] > best) {
            best = a[i];
            best_i = i;
        }
    }
    EXPECT_EQ(mx.value, best);
    EXPECT_EQ(mx.index, best_i);
}

TEST_P(GvmlProperties, CompactPreservesMarkedOrder)
{
    fill(Vr(1));
    auto &mark = g.data(Vr(2));
    for (auto &m : mark)
        m = rng.nextBelow(4) == 0 ? 1 : 0;
    uint32_t n = g.cpyFromMrk16(Vr(3), Vr(1), Vr(2));
    EXPECT_EQ(n, g.countM(Vr(2)));
    const auto &src = g.data(Vr(1));
    const auto &dst = g.data(Vr(3));
    size_t j = 0;
    for (size_t i = 0; i < g.length(); ++i)
        if (mark[i])
            ASSERT_EQ(dst[j++], src[i]);
    for (; j < g.length(); ++j)
        ASSERT_EQ(dst[j], 0);
}

TEST_P(GvmlProperties, SortIsIdempotentAndPermutes)
{
    using namespace cisram::kernels;
    auto &key = g.data(Vr(0));
    uint64_t checksum = 0;
    for (auto &x : key) {
        x = static_cast<uint16_t>(rng.nextBelow(10000));
        checksum += x;
    }
    bitonicSortU16(g, Vr(0), false, Vr(1),
                   SortScratch::standard());
    auto once = g.data(Vr(0));
    uint64_t after = 0;
    for (size_t i = 0; i < once.size(); ++i) {
        after += once[i];
        if (i)
            ASSERT_LE(once[i - 1], once[i]);
    }
    EXPECT_EQ(after, checksum); // a permutation, nothing lost
    bitonicSortU16(g, Vr(0), false, Vr(1),
                   SortScratch::standard());
    EXPECT_EQ(g.data(Vr(0)), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GvmlProperties,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------------------

class DmaProperties : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DmaProperties, RandomRoundTripsThroughL2)
{
    ApuDevice dev;
    auto &core = dev.core(0);
    Rng rng(GetParam());
    for (int trial = 0; trial < 20; ++trial) {
        size_t bytes = 1 + rng.nextBelow(dev.spec().l2Bytes - 1);
        std::vector<uint8_t> data(bytes);
        for (auto &b : data)
            b = static_cast<uint8_t>(rng.next());
        uint64_t addr = dev.allocator().alloc(bytes);
        dev.l4().write(addr, data.data(), bytes);
        core.dmaL4ToL2(addr, 0, bytes);
        uint64_t out = dev.allocator().alloc(bytes);
        core.dmaL2ToL4(out, 0, bytes);
        std::vector<uint8_t> back(bytes);
        dev.l4().read(out, back.data(), bytes);
        ASSERT_EQ(back, data) << "bytes=" << bytes;
    }
}

TEST_P(DmaProperties, CostMonotoneInSize)
{
    ApuDevice dev;
    auto &core = dev.core(0);
    core.setMode(ExecMode::TimingOnly);
    Rng rng(GetParam());
    double prev = 0;
    for (size_t bytes = 512; bytes <= 65536; bytes *= 2) {
        core.stats().reset();
        core.dmaL4ToL2(0, 0, bytes);
        double c = core.stats().cycles();
        EXPECT_GT(c, prev);
        prev = c;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmaProperties,
                         ::testing::Values(7, 8));

// ------------------------------------------------------------------

TEST(DramProperties, TimeMonotoneInBytes)
{
    dram::DramSystem sys(dram::hbm2eConfig());
    double prev = 0;
    for (uint64_t mb = 1; mb <= 64; mb *= 2) {
        double t = sys.streamReadSeconds(0, mb << 20);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(DramProperties, MoreChannelsFaster)
{
    dram::DramConfig one = dram::hbm2eConfig();
    one.channels = 1;
    dram::DramConfig eight = dram::hbm2eConfig();
    dram::DramSystem s1(one), s8(eight);
    uint64_t bytes = 32ull << 20;
    double t1 = s1.streamReadSeconds(0, bytes);
    double t8 = s8.streamReadSeconds(0, bytes);
    EXPECT_GT(t1 / t8, 6.0);
    EXPECT_LT(t1 / t8, 9.0);
}

TEST(DramProperties, WritesRoughlySymmetricToReads)
{
    dram::DramSystem sys(dram::hbm2eConfig());
    uint64_t bytes = 16ull << 20;
    double r = sys.streamReadSeconds(0, bytes);
    double w = sys.streamWriteSeconds(0, bytes);
    EXPECT_LT(w / r, 1.5);
    EXPECT_GT(w / r, 0.7);
}
