/**
 * @file
 * RVV-on-microcode tests: every virtual vector instruction matches
 * scalar semantics, built purely from Table 2 micro-operations.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "rvv/rvv.hh"

using namespace cisram;
using namespace cisram::rvv;

namespace {

class RvvTest : public ::testing::Test
{
  protected:
    RvvTest() : unit(dev.core(0))
    {
        // Smaller VR file would be nicer, but the unit maps onto
        // the real geometry; fill three registers with random data.
        Rng rng(77);
        for (unsigned v = 1; v <= 3; ++v)
            for (auto &x : unit.data(v))
                x = rng.nextU16();
        // Deterministic edge values.
        auto &a = unit.data(1);
        auto &b = unit.data(2);
        a[0] = 0x0000; b[0] = 0x0000;
        a[1] = 0xffff; b[1] = 0x0001;
        a[2] = 0x8000; b[2] = 0x8000;
        a[3] = 0x7fff; b[3] = 0x8000;
        a[4] = 0x1234; b[4] = 0x1234;
    }

    apu::ApuDevice dev;
    RvvUnit unit;
};

} // namespace

TEST_F(RvvTest, VaddMatchesScalar)
{
    unit.vadd_vv(0, 1, 2);
    const auto &a = unit.data(1);
    const auto &b = unit.data(2);
    for (size_t i = 0; i < unit.vl(); ++i)
        ASSERT_EQ(unit.data(0)[i],
                  static_cast<uint16_t>(a[i] + b[i]))
            << i;
}

TEST_F(RvvTest, VsubMatchesScalar)
{
    unit.vsub_vv(0, 1, 2);
    const auto &a = unit.data(1);
    const auto &b = unit.data(2);
    for (size_t i = 0; i < unit.vl(); ++i)
        ASSERT_EQ(unit.data(0)[i],
                  static_cast<uint16_t>(a[i] - b[i]))
            << i;
}

TEST_F(RvvTest, VmulMatchesScalar)
{
    unit.vmul_vv(0, 1, 2);
    const auto &a = unit.data(1);
    const auto &b = unit.data(2);
    for (size_t i = 0; i < unit.vl(); ++i)
        ASSERT_EQ(unit.data(0)[i],
                  static_cast<uint16_t>(
                      static_cast<uint32_t>(a[i]) * b[i]))
            << i;
}

TEST_F(RvvTest, LogicalOps)
{
    const auto a = unit.data(1);
    const auto b = unit.data(2);
    unit.vand_vv(0, 1, 2);
    for (size_t i = 0; i < unit.vl(); ++i)
        ASSERT_EQ(unit.data(0)[i], a[i] & b[i]);
    unit.vor_vv(0, 1, 2);
    for (size_t i = 0; i < unit.vl(); ++i)
        ASSERT_EQ(unit.data(0)[i], a[i] | b[i]);
    unit.vxor_vv(0, 1, 2);
    for (size_t i = 0; i < unit.vl(); ++i)
        ASSERT_EQ(unit.data(0)[i], a[i] ^ b[i]);
    unit.vnot_v(0, 1);
    for (size_t i = 0; i < unit.vl(); ++i)
        ASSERT_EQ(unit.data(0)[i],
                  static_cast<uint16_t>(~a[i]));
}

TEST_F(RvvTest, ShiftsByImmediate)
{
    const auto a = unit.data(1);
    for (unsigned sh : {0u, 1u, 7u, 15u}) {
        unit.vsll_vi(0, 1, sh);
        unit.vsrl_vi(3, 1, sh);
        for (size_t i = 0; i < unit.vl(); i += 997) {
            ASSERT_EQ(unit.data(0)[i],
                      static_cast<uint16_t>(a[i] << sh))
                << sh;
            ASSERT_EQ(unit.data(3)[i],
                      static_cast<uint16_t>(a[i] >> sh))
                << sh;
        }
    }
}

TEST_F(RvvTest, CompareEqualProducesFullMask)
{
    unit.vmseq_vv(0, 1, 2);
    const auto &a = unit.data(1);
    const auto &b = unit.data(2);
    for (size_t i = 0; i < unit.vl(); ++i)
        ASSERT_EQ(unit.data(0)[i],
                  a[i] == b[i] ? 0xffff : 0x0000)
            << i;
}

TEST_F(RvvTest, CompareLessThanUnsigned)
{
    unit.vmsltu_vv(0, 1, 2);
    const auto &a = unit.data(1);
    const auto &b = unit.data(2);
    for (size_t i = 0; i < unit.vl(); ++i)
        ASSERT_EQ(unit.data(0)[i], a[i] < b[i] ? 0xffff : 0x0000)
            << i << " a=" << a[i] << " b=" << b[i];
}

TEST_F(RvvTest, MergeSelectsByMask)
{
    unit.vmseq_vv(3, 1, 1); // all ones
    unit.vmerge_vvm(0, 1, 2, 3);
    EXPECT_EQ(unit.data(0), unit.data(1));
    unit.vxor_vv(3, 3, 3); // all zeros
    unit.vmerge_vvm(0, 1, 2, 3);
    EXPECT_EQ(unit.data(0), unit.data(2));
    // Mixed mask from a compare.
    unit.vmsltu_vv(3, 1, 2);
    unit.vmerge_vvm(0, 1, 2, 3);
    const auto &a = unit.data(1);
    const auto &b = unit.data(2);
    for (size_t i = 0; i < unit.vl(); ++i)
        ASSERT_EQ(unit.data(0)[i], a[i] < b[i] ? a[i] : b[i]);
}

TEST_F(RvvTest, MinIdiom)
{
    // min(a, b) = vmerge(a, b, a <u b): a small RVV program.
    unit.vmsltu_vv(4, 1, 2);
    unit.vmerge_vvm(5, 1, 2, 4);
    const auto &a = unit.data(1);
    const auto &b = unit.data(2);
    for (size_t i = 0; i < unit.vl(); ++i)
        ASSERT_EQ(unit.data(5)[i], std::min(a[i], b[i]));
}

TEST_F(RvvTest, LoadStoreRoundTrip)
{
    unit.vse16(5, 1);
    unit.vle16(0, 5);
    EXPECT_EQ(unit.data(0), unit.data(1));
}

TEST_F(RvvTest, UopAccountingShowsBitSerialCosts)
{
    uint64_t u0 = unit.uops();
    unit.vand_vv(0, 1, 2);
    uint64_t and_cost = unit.uops() - u0;
    unit.vadd_vv(0, 1, 2);
    uint64_t add_cost = unit.uops() - u0 - and_cost;
    unit.vmul_vv(3, 1, 2);
    uint64_t mul_cost = unit.uops() - u0 - and_cost - add_cost;
    // Bit-parallel boolean << bit-serial add << shift-and-add mul,
    // the cost hierarchy of Table 5.
    EXPECT_LT(and_cost, add_cost);
    EXPECT_LT(add_cost * 10, mul_cost);
}

TEST_F(RvvTest, RegisterBoundsChecked)
{
    EXPECT_DEATH(unit.vadd_vv(16, 1, 2), "OOB");
    EXPECT_DEATH(unit.vmul_vv(0, 0, 2), "alias");
}
