/**
 * @file
 * IEEE binary16 soft-float tests: golden encodings, round-trip
 * properties, rounding behaviour, and special values.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/float16.hh"
#include "common/rng.hh"

using cisram::Float16;
using cisram::Rng;

TEST(Float16, GoldenEncodings)
{
    EXPECT_EQ(Float16::fromFloat(0.0f).bits(), 0x0000);
    EXPECT_EQ(Float16::fromFloat(-0.0f).bits(), 0x8000);
    EXPECT_EQ(Float16::fromFloat(1.0f).bits(), 0x3c00);
    EXPECT_EQ(Float16::fromFloat(-1.0f).bits(), 0xbc00);
    EXPECT_EQ(Float16::fromFloat(2.0f).bits(), 0x4000);
    EXPECT_EQ(Float16::fromFloat(0.5f).bits(), 0x3800);
    EXPECT_EQ(Float16::fromFloat(65504.0f).bits(), 0x7bff); // max half
    EXPECT_EQ(Float16::fromFloat(0.099976f).bits(), 0x2e66);
    // Smallest normal and smallest subnormal.
    EXPECT_EQ(Float16::fromFloat(6.103515625e-05f).bits(), 0x0400);
    EXPECT_EQ(Float16::fromFloat(5.9604644775390625e-08f).bits(),
              0x0001);
}

TEST(Float16, SpecialValues)
{
    Float16 inf = Float16::fromFloat(INFINITY);
    Float16 ninf = Float16::fromFloat(-INFINITY);
    Float16 nan = Float16::fromFloat(NAN);
    EXPECT_TRUE(inf.isInf());
    EXPECT_FALSE(inf.signBit());
    EXPECT_TRUE(ninf.isInf());
    EXPECT_TRUE(ninf.signBit());
    EXPECT_TRUE(nan.isNan());
    EXPECT_TRUE(std::isnan(nan.toFloat()));
    EXPECT_TRUE(std::isinf(inf.toFloat()));

    // Overflow saturates to infinity.
    EXPECT_TRUE(Float16::fromFloat(1.0e6f).isInf());
    EXPECT_TRUE(Float16::fromFloat(-1.0e6f).isInf());
    // Underflow flushes to signed zero.
    EXPECT_TRUE(Float16::fromFloat(1.0e-9f).isZero());
    EXPECT_EQ(Float16::fromFloat(-1.0e-9f).bits(), 0x8000);
}

TEST(Float16, ExactRoundTripForAllEncodings)
{
    // Every finite half value must survive half -> float -> half.
    for (uint32_t b = 0; b < 0x10000; ++b) {
        Float16 h = Float16::fromBits(static_cast<uint16_t>(b));
        if (h.isNan())
            continue;
        Float16 back = Float16::fromFloat(h.toFloat());
        EXPECT_EQ(back.bits(), h.bits()) << "bits=" << b;
    }
}

TEST(Float16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10);
    // ties go to the even mantissa (1.0).
    float tie = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(Float16::fromFloat(tie).bits(), 0x3c00);
    // Just above the tie rounds up.
    float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -20);
    EXPECT_EQ(Float16::fromFloat(above).bits(), 0x3c01);
    // 1 + 3*2^-11 ties between 0x3c01 and 0x3c02 -> even (0x3c02).
    float tie2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
    EXPECT_EQ(Float16::fromFloat(tie2).bits(), 0x3c02);
}

TEST(Float16, ConversionErrorBounded)
{
    Rng rng(42);
    for (int i = 0; i < 20000; ++i) {
        float v = rng.nextFloat(-1000.0f, 1000.0f);
        float r = Float16::fromFloat(v).toFloat();
        // Half precision relative error bound: 2^-11.
        EXPECT_LE(std::fabs(r - v),
                  std::fabs(v) * std::ldexp(1.0f, -11) + 1e-7f)
            << v;
    }
}

TEST(Float16, ArithmeticMatchesRoundedFloat)
{
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        Float16 a = Float16::fromFloat(rng.nextFloat(-100.f, 100.f));
        Float16 b = Float16::fromFloat(rng.nextFloat(-100.f, 100.f));
        EXPECT_EQ((a + b).bits(),
                  Float16::fromFloat(a.toFloat() + b.toFloat()).bits());
        EXPECT_EQ((a * b).bits(),
                  Float16::fromFloat(a.toFloat() * b.toFloat()).bits());
        EXPECT_EQ(a < b, a.toFloat() < b.toFloat());
    }
}
