/**
 * @file
 * Baseline tests: FAISS-lite exactness and threading equivalence,
 * Phoenix CPU correctness (seq == par), timing-model calibration
 * against the paper's aggregate statistics.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/faisslite.hh"
#include "baseline/phoenix_cpu.hh"
#include "baseline/timing_models.hh"
#include "baseline/workloads.hh"
#include "common/rng.hh"
#include "common/stats.hh"

using namespace cisram;
using namespace cisram::baseline;

namespace {

std::vector<float>
randomVecs(size_t n, size_t dim, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n * dim);
    for (auto &x : v)
        x = rng.nextFloat(-1.0f, 1.0f);
    return v;
}

/** Exhaustive reference top-k. */
std::vector<Hit>
naiveTopK(const IndexFlat &idx, const float *q, size_t k)
{
    std::vector<Hit> all;
    for (size_t i = 0; i < idx.size(); ++i)
        all.push_back({idx.score(q, i), i});
    std::sort(all.begin(), all.end(), [](const Hit &a, const Hit &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.id < b.id;
    });
    all.resize(std::min(k, all.size()));
    return all;
}

} // namespace

TEST(FaissLite, ExactTopKMatchesNaive)
{
    const size_t dim = 24, n = 2000, k = 10;
    IndexFlat idx(dim);
    auto data = randomVecs(n, dim, 1);
    idx.add(data.data(), n);
    auto q = randomVecs(1, dim, 2);

    auto got = idx.search(q.data(), k);
    auto expect = naiveTopK(idx, q.data(), k);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < k; ++i) {
        EXPECT_EQ(got[i].id, expect[i].id) << i;
        EXPECT_FLOAT_EQ(got[i].score, expect[i].score) << i;
    }
}

TEST(FaissLite, ThreadedSearchIdenticalToSequential)
{
    const size_t dim = 16, n = 5003, k = 25;
    IndexFlat idx(dim);
    auto data = randomVecs(n, dim, 3);
    idx.add(data.data(), n);
    auto q = randomVecs(1, dim, 4);
    auto seq = idx.search(q.data(), k, 1);
    for (unsigned threads : {2u, 4u, 7u}) {
        auto par = idx.search(q.data(), k, threads);
        EXPECT_EQ(par, seq) << threads << " threads";
    }
}

TEST(FaissLite, L2MetricPrefersNearest)
{
    IndexFlat idx(2, Metric::L2);
    float vecs[] = {0, 0, 5, 5, 1, 1};
    idx.add(vecs, 3);
    float q[] = {0.9f, 0.9f};
    auto hits = idx.search(q, 3);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0].id, 2u);
    EXPECT_EQ(hits[1].id, 0u);
    EXPECT_EQ(hits[2].id, 1u);
}

TEST(FaissLite, KClampedAndDeterministicTies)
{
    IndexFlat idx(2);
    float vecs[] = {1, 0, 1, 0, 1, 0};
    idx.add(vecs, 3);
    float q[] = {1, 0};
    auto hits = idx.search(q, 10);
    ASSERT_EQ(hits.size(), 3u);
    // All scores tie; ids ascend.
    EXPECT_EQ(hits[0].id, 0u);
    EXPECT_EQ(hits[1].id, 1u);
    EXPECT_EQ(hits[2].id, 2u);
}

TEST(FaissLite, Int16IndexMatchesFloat)
{
    const size_t dim = 368, n = 500, k = 5;
    RagCorpusSpec spec{"test", 0, n, dim};
    auto emb = genEmbeddings(spec, 0, n, 7);
    auto q = genQuery(dim, 8);

    IndexFlatI16 idx16(dim);
    idx16.add(emb.data(), n);

    std::vector<float> embf(emb.begin(), emb.end());
    std::vector<float> qf(q.begin(), q.end());
    IndexFlat idxf(dim);
    idxf.add(embf.data(), n);

    auto a = idx16.search(q.data(), k);
    auto b = idxf.search(qf.data(), k);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < k; ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_FLOAT_EQ(a[i].score, b[i].score);
    }
    // Threaded i16 search identical as well.
    EXPECT_EQ(idx16.search(q.data(), k, 4), a);
}

TEST(Workloads, EmbeddingsDeterministicAndBounded)
{
    const auto &spec = ragCorpora()[0];
    EXPECT_EQ(spec.numChunks, 163000u);
    EXPECT_NEAR(spec.embeddingBytes(), 120.0e6, 1.0e6);
    auto a = genEmbeddings(spec, 1000, 10, 42);
    auto b = genEmbeddings(spec, 1000, 10, 42);
    EXPECT_EQ(a, b);
    for (int16_t v : a) {
        EXPECT_GE(v, -7);
        EXPECT_LE(v, 7);
    }
    // Inner products stay within int16.
    auto q = genQuery(spec.dim, 1);
    int64_t max_dot = static_cast<int64_t>(spec.dim) * 7 * 7;
    EXPECT_LE(max_dot, 32767);
}

TEST(Workloads, CorpusSpecsMatchPaper)
{
    const auto &cs = ragCorpora();
    ASSERT_EQ(cs.size(), 3u);
    EXPECT_NEAR(cs[1].embeddingBytes(), 600.0e6, 5.0e6);
    EXPECT_NEAR(cs[2].embeddingBytes(), 2.4e9, 0.05e9);
}

TEST(PhoenixCpu, HistogramSeqParEquivalent)
{
    auto in = genHistogramInput(300000, 5);
    auto seq = histogramSeq(in);
    EXPECT_EQ(histogramPar(in, 4), seq);
    // Conservation: every pixel lands in one bin.
    uint64_t total = 0;
    for (auto c : seq.r)
        total += c;
    EXPECT_EQ(total, in.pixels.size() / 3);
}

TEST(PhoenixCpu, LinRegSeqParEquivalentAndSensible)
{
    auto in = genLinRegInput(200000, 6);
    auto seq = linRegSeq(in);
    EXPECT_EQ(linRegPar(in, 4), seq);
    // Generator correlates y ~ x/2 + noise: slope near 0.5.
    EXPECT_NEAR(seq.b, 0.5, 0.1);
}

TEST(PhoenixCpu, MatmulSeqParEquivalent)
{
    size_t m = 37, n = 29, k = 41;
    auto a = genMatrix(m, k, 7);
    auto b = genMatrix(k, n, 8);
    auto seq = matmulSeq(a, b, m, n, k);
    EXPECT_EQ(matmulPar(a, b, m, n, k, 4), seq);
    // Spot-check one entry against a scalar loop.
    int32_t c00 = 0;
    for (size_t kk = 0; kk < k; ++kk)
        c00 += static_cast<int32_t>(a[kk]) * b[kk * n];
    EXPECT_EQ(seq[0], c00);
}

TEST(PhoenixCpu, KmeansConvergesAndPartitions)
{
    auto in = genKmeansInput(2000, 4, 8, 9);
    auto res = kmeansSeq(in, 50);
    EXPECT_LE(res.iterations, 50u);
    EXPECT_EQ(res.assignment.size(), in.numPoints);
    for (auto a : res.assignment)
        EXPECT_LT(a, in.k);
    // Parallel assignment phase gives the same result.
    auto par = kmeansPar(in, 50, 4);
    EXPECT_EQ(par.assignment, res.assignment);
    EXPECT_EQ(par.iterations, res.iterations);
}

TEST(PhoenixCpu, ReverseIndexCoversAllLinks)
{
    auto in = genRevIndexInput(200, 10, 50, 10);
    auto idx = reverseIndexSeq(in);
    // Every link that occurs in a doc is indexed with that doc.
    for (uint32_t doc = 0; doc < in.docLinks.size(); ++doc) {
        for (uint32_t link : in.docLinks[doc]) {
            const auto &lst = idx.at(link);
            EXPECT_TRUE(std::find(lst.begin(), lst.end(), doc) !=
                        lst.end());
        }
    }
}

TEST(PhoenixCpu, StringMatchSeqParEquivalent)
{
    auto in = genStringMatchInput(100000, 11);
    auto seq = stringMatchSeq(in);
    EXPECT_EQ(stringMatchPar(in, 4), seq);
    // The generator's Zipf bias makes low-id keys frequent.
    EXPECT_GT(seq[0], 0u);
}

TEST(PhoenixCpu, WordCountSeqParEquivalent)
{
    auto in = genWordCountInput(50000, 12);
    auto seq = wordCountSeq(in, 20);
    EXPECT_EQ(wordCountPar(in, 20, 4), seq);
    ASSERT_FALSE(seq.empty());
    // Counts are sorted descending.
    for (size_t i = 1; i < seq.size(); ++i)
        EXPECT_GE(seq[i - 1].count, seq[i].count);
    // Total of top counts cannot exceed the word count.
    uint64_t total = 0;
    for (const auto &e : seq)
        total += e.count;
    EXPECT_LE(total, in.words.size());
}

TEST(TimingModels, Fig13AggregatesReproduce)
{
    // Against the paper's measured APU latencies (Table 7), the
    // calibrated CPU model must reproduce Fig. 13's aggregates.
    const double apu_ms[] = {1644.8, 92.3, 421.3, 1.6,
                             182.0, 90.9, 3.2};
    XeonTimingModel cpu;
    std::vector<double> s1, smt;
    size_t i = 0;
    for (const auto &spec : phoenixSpecs()) {
        s1.push_back(cpu.phoenixMs(spec.app, false) / apu_ms[i]);
        smt.push_back(cpu.phoenixMs(spec.app, true) / apu_ms[i]);
        ++i;
    }
    EXPECT_NEAR(mean(s1), 41.8, 0.5);
    EXPECT_NEAR(geomean(s1), 14.4, 0.5);
    EXPECT_NEAR(maxOf(s1), 128.3, 0.5);
    EXPECT_NEAR(mean(smt), 12.5, 0.5);
    EXPECT_NEAR(geomean(smt), 2.6, 0.15);
    EXPECT_NEAR(maxOf(smt), 68.1, 0.5);
}

TEST(TimingModels, WinLossPatternMatchesPaper)
{
    // Section 5.2.1: the APU outperforms the 16-thread CPU on
    // linear regression, k-means, string match, word count only.
    const double apu_ms[] = {1644.8, 92.3, 421.3, 1.6,
                             182.0, 90.9, 3.2};
    const bool wins[] = {false, true, false, true,
                         false, true, true};
    XeonTimingModel cpu;
    size_t i = 0;
    for (const auto &spec : phoenixSpecs()) {
        bool apu_wins =
            cpu.phoenixMs(spec.app, true) > apu_ms[i];
        EXPECT_EQ(apu_wins, wins[i]) << spec.name;
        ++i;
    }
}

TEST(TimingModels, EnnsCalibrationPoints)
{
    XeonTimingModel cpu;
    EXPECT_NEAR(cpu.ennsRetrievalMs(120.0e6), 24.6, 0.1);
    EXPECT_NEAR(cpu.ennsRetrievalMs(600.0e6), 98.9, 0.1);
    EXPECT_NEAR(cpu.ennsRetrievalMs(2400.0e6), 555.7, 0.1);
    // Monotone in between and extrapolates beyond.
    EXPECT_GT(cpu.ennsRetrievalMs(1200.0e6),
              cpu.ennsRetrievalMs(600.0e6));
    EXPECT_GT(cpu.ennsRetrievalMs(4800.0e6),
              cpu.ennsRetrievalMs(2400.0e6));
}

TEST(TimingModels, GpuRetrievalBandwidthBound)
{
    GpuTimingModel gpu;
    double t10 = gpu.ennsRetrievalSeconds(120.0e6);
    double t200 = gpu.ennsRetrievalSeconds(2400.0e6);
    EXPECT_GT(t200, t10);
    // Both far below CPU latencies at the same sizes.
    XeonTimingModel cpu;
    EXPECT_LT(t200 * 1e3, cpu.ennsRetrievalMs(2400.0e6));
}

TEST(TimingModels, LlmTtftNearHalfSecond)
{
    // Fig. 14's retrieval shares imply a ~545 ms generation TTFT.
    LlmGenerationModel llm;
    EXPECT_NEAR(llm.ttftSeconds(), 0.545, 0.03);
}
