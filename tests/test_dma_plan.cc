/**
 * @file
 * Layout-to-DMA-descriptor tests: classification, correctness of the
 * generated chunk lists, and an end-to-end layout transformation
 * through the simulator's chunk-programmed DMA engine. Also covers
 * the DRAM page-policy knob.
 */

#include <gtest/gtest.h>

#include "apusim/apu.hh"
#include "common/rng.hh"
#include "core/dma_plan.hh"
#include "dramsim/dram_sim.hh"

using namespace cisram;
using namespace cisram::core;

TEST(DmaPlan, ContiguousLayout)
{
    Layout l = Layout::rowMajor({8});
    DmaPlan plan = planFromLayout(l, 4096);
    EXPECT_EQ(plan.kind, TransferClass::Contiguous);
    ASSERT_EQ(plan.numChunks(), 8u);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(plan.chunkSrcs[i], 4096 + i * 512);
}

TEST(DmaPlan, StridedLayout)
{
    // Every fourth chunk.
    Layout l({{8, 4}});
    DmaPlan plan = planFromLayout(l, 0);
    EXPECT_EQ(plan.kind, TransferClass::Strided);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(plan.chunkSrcs[i], i * 4 * 512);
    EXPECT_EQ(plan.distinctChunks(), 8u);
}

TEST(DmaPlan, DuplicatedLayout)
{
    // Stride-0 inner dimension duplicates one chunk.
    Layout l({{4, 1}, {16, 0}});
    DmaPlan plan = planFromLayout(l, 0);
    EXPECT_EQ(plan.kind, TransferClass::Duplicated);
    EXPECT_EQ(plan.numChunks(), 64u);
    EXPECT_EQ(plan.distinctChunks(), 4u);
}

TEST(DmaPlan, IrregularTransposeDetected)
{
    // A transposed 2-D walk has two alternating strides.
    Layout l = Layout::rowMajor({4, 4}).transposed(0, 1);
    DmaPlan plan = planFromLayout(l, 0);
    EXPECT_EQ(plan.kind, TransferClass::Irregular);
}

TEST(DmaPlan, ExecutesOnChunkedDmaEngine)
{
    // Duplicated plan through the simulator: the broadcast-friendly
    // staging pattern of Section 4.3 realized end-to-end.
    apu::ApuDevice dev;
    auto &core = dev.core(0);
    Rng rng(9);
    std::vector<uint8_t> chunk_data(4 * 512);
    for (auto &b : chunk_data)
        b = static_cast<uint8_t>(rng.next());
    uint64_t base = dev.allocator().alloc(chunk_data.size());
    dev.l4().write(base, chunk_data.data(), chunk_data.size());

    Layout dup({{4, 1}, {8, 0}}); // each chunk repeated 8x
    DmaPlan plan = planFromLayout(dup, base);
    ASSERT_EQ(plan.numChunks(), 32u);
    core.dmaL4ToL2Chunks(plan.chunkSrcs, 0);

    std::vector<uint8_t> l2(32 * 512);
    core.l2().read(0, l2.data(), l2.size());
    for (size_t c = 0; c < 4; ++c)
        for (size_t r = 0; r < 8; ++r)
            ASSERT_EQ(0, std::memcmp(l2.data() + (c * 8 + r) * 512,
                                     chunk_data.data() + c * 512,
                                     512))
                << c << "/" << r;
}

TEST(DramPagePolicy, ClosedPageHurtsStreams)
{
    dram::DramConfig open_cfg = dram::hbm2eConfig();
    dram::DramConfig closed_cfg = dram::hbm2eConfig();
    closed_cfg.pagePolicy = dram::PagePolicy::Closed;
    dram::DramSystem open_sys(open_cfg), closed_sys(closed_cfg);
    uint64_t bytes = 16ull << 20;
    double t_open = open_sys.streamReadSeconds(0, bytes);
    double t_closed = closed_sys.streamReadSeconds(0, bytes);
    EXPECT_GT(t_closed, t_open * 1.2);
}

TEST(DramPagePolicy, ClosedPageCountsOneActivatePerBurst)
{
    dram::DramConfig cfg = dram::hbm2eConfig();
    cfg.pagePolicy = dram::PagePolicy::Closed;
    dram::DramSystem sys(cfg);
    sys.resetStats();
    sys.streamReadSeconds(0, 1 << 20);
    EXPECT_EQ(sys.stats().activates, sys.stats().reads);
}
