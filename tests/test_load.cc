/**
 * @file
 * Open-loop load subsystem: deterministic arrival traces (shapes,
 * tenants, bit-identical regeneration), mutation plans (epoch
 * overlays that partition exactly across shards, tombstones that
 * never compact), the per-epoch flat golden (searchEpochFlat), a
 * single server's epoch-tagged incremental re-stage, and the full
 * open-loop drive: live mutation plus a mid-stream device kill with
 * exactly-once delivery and every answer bit-compared against its
 * admission epoch's snapshot.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/faisslite.hh"
#include "baseline/workloads.hh"
#include "fleet/fleet.hh"
#include "kernels/serving.hh"
#include "load/arrivals.hh"
#include "load/mutation.hh"
#include "load/openloop.hh"
#include "obs/slo.hh"

using namespace cisram;
using namespace cisram::load;

// ---- arrival traces -----------------------------------------------------

TEST(Arrivals, DeterministicAndOpenLoopShaped)
{
    TrafficConfig cfg;
    cfg.ratePerSecond = 200;
    cfg.durationSeconds = 2.0;
    cfg.seed = 7;

    ArrivalTrace a = genArrivalTrace(cfg);
    ArrivalTrace b = genArrivalTrace(cfg);
    ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
    for (size_t i = 0; i < a.arrivals.size(); ++i) {
        EXPECT_EQ(a.arrivals[i].seconds, b.arrivals[i].seconds);
        EXPECT_EQ(a.arrivals[i].querySeed,
                  b.arrivals[i].querySeed);
    }

    // Poisson at λ=200 over 2s: ~400 arrivals; the Bernoulli grid
    // keeps the count within a loose band deterministically.
    EXPECT_GT(a.arrivals.size(), 300u);
    EXPECT_LT(a.arrivals.size(), 500u);

    // Timestamps ascend strictly (one slot admits at most one
    // arrival) and ids are dense and 1-based.
    for (size_t i = 0; i < a.arrivals.size(); ++i) {
        EXPECT_EQ(a.arrivals[i].id, i + 1);
        if (i)
            EXPECT_GT(a.arrivals[i].seconds,
                      a.arrivals[i - 1].seconds);
    }

    // A different seed is a different trace.
    cfg.seed = 8;
    ArrivalTrace c = genArrivalTrace(cfg);
    EXPECT_NE(a.arrivals.size(), 0u);
    bool differs = c.arrivals.size() != a.arrivals.size();
    for (size_t i = 0;
         !differs && i < std::min(a.arrivals.size(),
                                  c.arrivals.size());
         ++i)
        differs = a.arrivals[i].seconds != c.arrivals[i].seconds;
    EXPECT_TRUE(differs);
}

TEST(Arrivals, BurstThenSilenceConcentratesArrivals)
{
    // burstFactor · burstDuty = 1: the off-burst rate clamps to
    // zero, so every arrival must land inside a burst window.
    TrafficConfig cfg;
    cfg.shape = ArrivalShape::Burst;
    cfg.ratePerSecond = 400;
    cfg.durationSeconds = 1.0;
    cfg.burstFactor = 4.0;
    cfg.burstDuty = 0.25;
    cfg.burstPeriodSeconds = 0.25;
    cfg.seed = 11;

    ArrivalTrace t = genArrivalTrace(cfg);
    ASSERT_GT(t.arrivals.size(), 100u);
    EXPECT_EQ(t.peakRate, 1600.0);
    for (const Arrival &a : t.arrivals) {
        double phase =
            std::fmod(a.seconds, cfg.burstPeriodSeconds);
        EXPECT_LT(phase, cfg.burstDuty * cfg.burstPeriodSeconds)
            << "arrival at t=" << a.seconds
            << " landed in a silent window";
    }
}

TEST(Arrivals, DiurnalRateRampsToMidRunPeak)
{
    TrafficConfig cfg;
    cfg.shape = ArrivalShape::Diurnal;
    cfg.ratePerSecond = 100;
    cfg.durationSeconds = 4.0;
    cfg.diurnalAmplitude = 0.5;

    EXPECT_DOUBLE_EQ(arrivalRateAt(cfg, 0.0), 50.0);
    EXPECT_DOUBLE_EQ(arrivalRateAt(cfg, 2.0), 150.0);
    EXPECT_DOUBLE_EQ(arrivalRateAt(cfg, 4.0), 50.0);
    EXPECT_DOUBLE_EQ(arrivalRateAt(cfg, 1.0), 100.0);

    // More arrivals in the middle half than in the outer half.
    ArrivalTrace t = genArrivalTrace(cfg);
    size_t mid = 0, outer = 0;
    for (const Arrival &a : t.arrivals)
        (a.seconds >= 1.0 && a.seconds < 3.0 ? mid : outer)++;
    EXPECT_GT(mid, outer);
}

TEST(Arrivals, TenantsDrawByWeightAndCarryTheirClass)
{
    TrafficConfig cfg;
    cfg.ratePerSecond = 500;
    cfg.durationSeconds = 2.0;
    cfg.seed = 13;
    cfg.tenants = {TenantSpec{"alpha", 3.0, 0, 64},
                   TenantSpec{"beta", 1.0, 1, 8}};

    ArrivalTrace t = genArrivalTrace(cfg);
    size_t alpha = 0, beta = 0;
    for (const Arrival &a : t.arrivals) {
        ASSERT_LT(a.tenant, 2u);
        const TenantSpec &ts = t.cfg.tenants[a.tenant];
        EXPECT_EQ(a.sloClass, ts.sloClass);
        EXPECT_LT(a.user, ts.users);
        (a.tenant == 0 ? alpha : beta)++;
    }
    ASSERT_GT(alpha, 0u);
    ASSERT_GT(beta, 0u);
    // 3:1 weights: alpha should dominate clearly (loose band — the
    // draw is seeded, so this is a deterministic assertion).
    EXPECT_GT(alpha, 2 * beta);
}

// ---- mutation plans -----------------------------------------------------

namespace {

baseline::RagCorpusSpec
tinyCorpus()
{
    return baseline::RagCorpusSpec{"load-unit", 0, 1536, 96};
}

} // namespace

TEST(MutationPlanTest, ShardViewsPartitionTheWholeCorpusView)
{
    const unsigned kShards = 4;
    MutationConfig mc;
    mc.batches = 3;
    mc.insertsPerBatch = 96;
    mc.deletesPerBatch = 48;
    mc.seed = 5;
    baseline::RagCorpusSpec base = tinyCorpus();
    MutationPlan plan(base, kShards, mc);
    ASSERT_EQ(plan.epochs(), 3u);

    for (uint64_t e = 1; e <= plan.epochs(); ++e) {
        const baseline::RagCorpusSpec &spec = plan.specAt(e);
        ASSERT_NE(spec.epochView, nullptr);
        const baseline::CorpusEpochView &whole = *spec.epochView;
        EXPECT_EQ(whole.epoch, e);
        EXPECT_EQ(spec.numChunks,
                  whole.baseChunks + whole.inserted.size());
        EXPECT_EQ(whole.inserted.size(), e * mc.insertsPerBatch);
        EXPECT_EQ(whole.deleted.size(), e * mc.deletesPerBatch);
        EXPECT_EQ(plan.liveChunksAt(e),
                  base.numChunks + e * mc.insertsPerBatch -
                      e * mc.deletesPerBatch);
        EXPECT_TRUE(std::is_sorted(whole.inserted.begin(),
                                   whole.inserted.end()));

        auto updates = plan.shardUpdates(e);
        ASSERT_EQ(updates.size(), kShards);
        std::multiset<uint64_t> shard_ins, shard_del;
        uint64_t delta = 0;
        for (const auto &u : updates) {
            ASSERT_NE(u.view, nullptr);
            EXPECT_EQ(u.view->epoch, e);
            EXPECT_EQ(u.numChunks, u.view->baseChunks +
                                       u.view->inserted.size());
            EXPECT_TRUE(std::is_sorted(u.view->inserted.begin(),
                                       u.view->inserted.end()));
            for (uint64_t g : u.view->inserted) {
                shard_ins.insert(g);
                EXPECT_EQ(g % kShards, u.shard)
                    << "insert " << g << " on the wrong shard";
            }
            for (uint64_t g : u.view->deleted)
                shard_del.insert(g);
            delta += u.deltaBytes;
        }
        // Exact partition: every insert/delete on exactly one
        // shard, none invented, none lost.
        EXPECT_EQ(shard_ins.size(), whole.inserted.size());
        for (uint64_t g : whole.inserted)
            EXPECT_EQ(shard_ins.count(g), 1u);
        EXPECT_EQ(shard_del.size(), whole.deleted.size());
        for (uint64_t g : whole.deleted)
            EXPECT_EQ(shard_del.count(g), 1u);
        // Re-stage bytes = this batch's inserts only (incremental,
        // not a full restage).
        EXPECT_EQ(delta, mc.insertsPerBatch * base.dim *
                             sizeof(int16_t));
    }

    // Tombstones never compact: positions present at epoch e stay
    // at the same local position in every later epoch.
    const auto &s1 = plan.specAt(1);
    const auto &s3 = plan.specAt(3);
    for (uint64_t local = 0; local < s1.numChunks; ++local)
        EXPECT_EQ(s1.globalChunk(local), s3.globalChunk(local));
}

TEST(MutationPlanTest, DeterministicInConfigAlone)
{
    baseline::RagCorpusSpec base = tinyCorpus();
    MutationConfig mc;
    mc.seed = 21;
    MutationPlan a(base, 3, mc);
    MutationPlan b(base, 3, mc);
    for (uint64_t e = 1; e <= a.epochs(); ++e) {
        EXPECT_EQ(a.batches()[e - 1].inserts,
                  b.batches()[e - 1].inserts);
        EXPECT_EQ(a.batches()[e - 1].deletes,
                  b.batches()[e - 1].deletes);
    }
}

// ---- the per-epoch flat golden ------------------------------------------

TEST(EpochGolden, MatchesTheStaticIndexAtEpochZero)
{
    baseline::RagCorpusSpec base = tinyCorpus();
    const uint64_t seed = 99;
    baseline::IndexFlatI16 index(base.dim);
    auto emb =
        baseline::genEmbeddings(base, 0, base.numChunks, seed);
    index.add(emb.data(), base.numChunks);

    for (int q = 0; q < 4; ++q) {
        auto query = baseline::genQuery(base.dim, 700 + q);
        auto want = index.search(query.data(), 5);
        auto got = baseline::searchEpochFlat(base, seed,
                                             query.data(), 5);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i].id, want[i].id);
            EXPECT_EQ(got[i].score, want[i].score);
        }
    }
}

TEST(EpochGolden, TombstonesNeverSurfaceAndInsertsAreLive)
{
    baseline::RagCorpusSpec base = tinyCorpus();
    const uint64_t seed = 99;
    MutationConfig mc;
    mc.batches = 2;
    mc.insertsPerBatch = 64;
    mc.deletesPerBatch = 32;
    mc.seed = 17;
    MutationPlan plan(base, 2, mc);

    for (uint64_t e = 1; e <= plan.epochs(); ++e) {
        const baseline::RagCorpusSpec &spec = plan.specAt(e);
        const auto &view = *spec.epochView;
        auto query = baseline::genQuery(base.dim, 31);
        // k = every position: the exact live set must come back.
        auto hits = baseline::searchEpochFlat(
            spec, seed, query.data(), spec.numChunks);
        EXPECT_EQ(hits.size(), plan.liveChunksAt(e));
        std::unordered_set<uint64_t> got;
        for (const auto &h : hits) {
            uint64_t g = spec.globalChunk(h.id);
            EXPECT_EQ(view.deleted.count(g), 0u)
                << "tombstoned chunk " << g << " surfaced";
            got.insert(g);
        }
        for (uint64_t g : view.inserted)
            if (!view.deleted.count(g))
                EXPECT_EQ(got.count(g), 1u)
                    << "live insert " << g << " missing";
    }
}

// ---- one server's epoch-tagged incremental re-stage ---------------------

TEST(ServerMutation, DeviceAnswersBitCompareAgainstEachEpoch)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    baseline::RagCorpusSpec base = tinyCorpus();
    const uint64_t seed = 4242;
    baseline::IndexFlatI16 golden(base.dim);
    auto emb =
        baseline::genEmbeddings(base, 0, base.numChunks, seed);
    golden.add(emb.data(), base.numChunks);

    MutationConfig mc;
    mc.batches = 2;
    mc.insertsPerBatch = 64;
    mc.deletesPerBatch = 32;
    mc.seed = 23;
    MutationPlan plan(base, 1, mc);

    apu::ApuDevice dev;
    kernels::ServerConfig cfg;
    cfg.topK = 5;
    kernels::DeviceServer server(dev, base, 0, &golden, seed, cfg);

    auto serve_and_check = [&](uint64_t epoch, uint64_t first_id) {
        const baseline::RagCorpusSpec &spec =
            epoch == 0 ? base : plan.specAt(epoch);
        for (int q = 0; q < 3; ++q) {
            auto query =
                baseline::genQuery(base.dim, 800 + 10 * epoch + q);
            ASSERT_TRUE(
                server.enqueue(first_id + q, query).ok());
            auto outs = server.drain();
            ASSERT_EQ(outs.size(), 1u);
            EXPECT_TRUE(outs[0].ok);
            auto want = baseline::searchEpochFlat(
                spec, seed, query.data(), cfg.topK);
            ASSERT_EQ(outs[0].run.hits.size(), want.size());
            for (size_t i = 0; i < want.size(); ++i) {
                EXPECT_EQ(outs[0].run.hits[i].id, want[i].id)
                    << "epoch " << epoch << " query " << q;
                EXPECT_EQ(outs[0].run.hits[i].score,
                          want[i].score)
                    << "epoch " << epoch << " query " << q;
            }
        }
    };

    serve_and_check(0, 1);
    for (uint64_t e = 1; e <= plan.epochs(); ++e) {
        auto updates = plan.shardUpdates(e);
        ASSERT_EQ(updates.size(), 1u);
        auto served = server.applyMutation(plan.specAt(e), e,
                                           updates[0].deltaBytes);
        EXPECT_TRUE(served.empty());
        EXPECT_EQ(server.corpusEpoch(), e);
        serve_and_check(e, 100 * e);
    }
}

// ---- the full open-loop drive -------------------------------------------

TEST(OpenLoopTest, MutationPlusKillKeepsExactlyOnceAndGoldens)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    baseline::RagCorpusSpec base{"load-fleet", 0, 2048, 368};
    const uint64_t seed = 4242;

    MutationConfig mc;
    mc.batches = 2;
    mc.startSeconds = 0.3;
    mc.intervalSeconds = 0.3;
    mc.insertsPerBatch = 64;
    mc.deletesPerBatch = 32;
    mc.seed = 29;
    MutationPlan plan(base, 4, mc);

    fleet::FleetConfig fcfg;
    fcfg.devices = 3;
    fcfg.replicas = 2;
    fcfg.shards = 4;
    fcfg.functional = true;
    fcfg.topK = 5;
    fleet::Router router(base, seed, fcfg);

    TrafficConfig tc;
    tc.ratePerSecond = 24;
    tc.durationSeconds = 1.0;
    tc.seed = 3;
    tc.tenants = {TenantSpec{"alpha", 2.0, 0, 16},
                  TenantSpec{"beta", 1.0, 1, 4}};
    ArrivalTrace trace = genArrivalTrace(tc);
    ASSERT_GT(trace.arrivals.size(), 8u);

    OpenLoopOptions opts;
    opts.plan = &plan;
    opts.killAtSeconds = 0.45;
    opts.killDevice = router.placement()[0][0];
    opts.slo.windowQueries = 8;
    opts.slo.classes = {
        obs::SloClass{sloClassName(0), 0.5, 0.9},
        obs::SloClass{sloClassName(1), 1.0, 0.9}};

    OpenLoopResult res = runOpenLoop(router, trace, base, opts);

    // Open loop: everything offered; nothing here should shed
    // (no quotas, no admission caps in this config).
    EXPECT_EQ(res.offered, trace.arrivals.size());
    EXPECT_EQ(res.admitted, res.offered);
    EXPECT_EQ(res.epochsApplied, 2u);
    EXPECT_EQ(router.corpusEpoch(), 2u);

    // Exactly-once through mutation barriers AND a device kill:
    // one outcome per admitted query, ledger empty.
    EXPECT_EQ(router.ledgerOutstanding(), 0u);
    ASSERT_EQ(res.outcomes.size(), res.admitted);
    std::set<uint64_t> ids;
    for (const auto &o : res.outcomes) {
        EXPECT_TRUE(o.ok) << "query " << o.id;
        ids.insert(o.id);
    }
    EXPECT_EQ(ids.size(), res.outcomes.size());
    EXPECT_EQ(res.delivered, res.outcomes.size());

    // Queries really spanned epochs (the kill device was shard 0's
    // primary, so failovers must have fired too).
    std::set<uint64_t> epochs;
    for (const auto &o : res.outcomes)
        epochs.insert(o.epoch);
    EXPECT_GE(epochs.size(), 2u);
    EXPECT_GT(router.evacuatedQueries() + router.failovers(), 0u);

    // The tentpole claim: every answer bit-compares against its
    // admission epoch's snapshot.
    EXPECT_EQ(countGoldenMismatches(res.outcomes, trace, base,
                                    seed, &plan, fcfg.topK),
              0u);

    // SLO windows tile the epochs: flushAll at each boundary closes
    // one window per class, so both classes report even if silent.
    size_t c0 = 0, c1 = 0;
    for (const auto &w : res.sloWindows)
        (w.cls == sloClassName(0) ? c0 : c1)++;
    EXPECT_GE(c0, 2u);
    EXPECT_GE(c1, 2u);
}
