/**
 * @file
 * GDL host-library tests: allocation, PCIe round trips, task
 * invocation, and host-side accounting.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gdl/gdl.hh"
#include "gvml/gvml.hh"

using namespace cisram;
using namespace cisram::gdl;

TEST(Gdl, MemRoundTrip)
{
    apu::ApuDevice dev;
    GdlContext ctx(dev);
    Rng rng(5);
    std::vector<uint8_t> data(100000);
    for (auto &b : data)
        b = static_cast<uint8_t>(rng.next());

    MemHandle h = ctx.memAllocAligned(data.size());
    EXPECT_EQ(h.addr % 512, 0u);
    ctx.memCpyToDev(h, data.data(), data.size());
    std::vector<uint8_t> back(data.size());
    ctx.memCpyFromDev(back.data(), h, back.size());
    EXPECT_EQ(back, data);

    EXPECT_EQ(ctx.stats().bytesToDevice, data.size());
    EXPECT_EQ(ctx.stats().bytesFromDevice, data.size());
    EXPECT_GT(ctx.stats().pcieSeconds, 0.0);
    ctx.memFree(h);
}

TEST(Gdl, HandleOffsetArithmetic)
{
    apu::ApuDevice dev;
    GdlContext ctx(dev);
    MemHandle base = ctx.memAllocAligned(4096);
    MemHandle second = base.offset(1024);
    uint32_t v = 0xdeadbeef;
    ctx.memCpyToDev(second, &v, sizeof(v));
    uint32_t back = 0;
    ctx.memCpyFromDev(&back, base.offset(1024), sizeof(back));
    EXPECT_EQ(back, v);
    ctx.memFree(base);
}

TEST(Gdl, RunTaskAccountsDeviceTime)
{
    apu::ApuDevice dev;
    GdlContext ctx(dev);
    int rc = ctx.runTask([](apu::ApuCore &core) {
        gvml::Gvml g(core);
        g.addU16(gvml::Vr(0), gvml::Vr(1), gvml::Vr(2));
        return 0;
    });
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(ctx.stats().tasksRun, 1u);
    EXPECT_GT(ctx.stats().deviceSeconds, 0.0);
    EXPECT_GT(ctx.stats().invokeSeconds, 0.0);
}

TEST(Gdl, EndToEndVecAdd)
{
    // The full Fig. 5 flow through the GDL API.
    apu::ApuDevice dev;
    GdlContext ctx(dev);
    size_t n = dev.spec().vrLength;
    std::vector<uint16_t> a(n), b(n);
    Rng rng(6);
    for (size_t i = 0; i < n; ++i) {
        a[i] = rng.nextU16();
        b[i] = rng.nextU16();
    }

    MemHandle buf = ctx.memAllocAligned(3 * n * 2);
    ctx.memCpyToDev(buf, a.data(), n * 2);
    ctx.memCpyToDev(buf.offset(n * 2), b.data(), n * 2);

    int rc = ctx.runTask([&](apu::ApuCore &core) {
        gvml::Gvml g(core);
        g.directDmaL4ToL1_32k(gvml::Vmr(0), buf.addr);
        g.directDmaL4ToL1_32k(gvml::Vmr(1), buf.addr + n * 2);
        g.load16(gvml::Vr(0), gvml::Vmr(0));
        g.load16(gvml::Vr(1), gvml::Vmr(1));
        g.addU16(gvml::Vr(2), gvml::Vr(0), gvml::Vr(1));
        g.store16(gvml::Vmr(2), gvml::Vr(2));
        g.directDmaL1ToL4_32k(buf.addr + 2 * n * 2, gvml::Vmr(2));
        return 0;
    });
    ASSERT_EQ(rc, 0);

    std::vector<uint16_t> out(n);
    ctx.memCpyFromDev(out.data(), buf.offset(2 * n * 2), n * 2);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], static_cast<uint16_t>(a[i] + b[i]));

    // PCIe moved 3 vectors; the device did real work.
    EXPECT_EQ(ctx.stats().bytesToDevice, 2 * n * 2);
    EXPECT_EQ(ctx.stats().bytesFromDevice, n * 2);
    EXPECT_GT(ctx.stats().totalSeconds(), 0.0);
    ctx.memFree(buf);
}

TEST(Gdl, DeviceBufferFreesOnScopeExit)
{
    apu::ApuDevice dev;
    GdlContext ctx(dev);
    uint32_t v = 0x1234abcd, back = 0;
    {
        DeviceBuffer buf(ctx, 4096);
        EXPECT_EQ(ctx.outstandingAllocs(), 1u);
        buf.toDev(&v, sizeof(v));
        buf.fromDev(&back, sizeof(back));
    }
    EXPECT_EQ(back, v);
    EXPECT_EQ(ctx.outstandingAllocs(), 0u);
}

TEST(Gdl, AllocatorRecyclesFreedBlocks)
{
    // A steady-state serving loop (alloc/free the same size per
    // request) must not grow the device footprint.
    apu::ApuDevice dev;
    GdlContext ctx(dev);
    MemHandle first = ctx.memAllocAligned(2048);
    ctx.memFree(first);
    uint64_t watermark = dev.allocator().used();
    for (int i = 0; i < 100; ++i) {
        MemHandle h = ctx.memAllocAligned(2048);
        EXPECT_EQ(h.addr, first.addr);
        ctx.memFree(h);
    }
    EXPECT_EQ(dev.allocator().used(), watermark);
}

TEST(GdlDeathTest, TeardownPanicsOnLeakedAllocation)
{
#ifdef NDEBUG
    GTEST_SKIP() << "leak check only panics in debug builds";
#else
    EXPECT_DEATH(
        {
            apu::ApuDevice dev;
            GdlContext ctx(dev);
            ctx.memAllocAligned(1024);
        },
        "outstanding device allocation");
#endif
}

TEST(GdlDeathTest, FreeOfForeignHandlePanics)
{
    apu::ApuDevice dev;
    GdlContext ctx(dev);
    // The diagnostic must name the offending device address.
    EXPECT_DEATH(ctx.memFree(MemHandle{12345}),
                 "memFree: device address 12345 is not owned by "
                 "this context");
}

TEST(GdlDeathTest, DoubleFreePanicsWithAddress)
{
    apu::ApuDevice dev;
    GdlContext ctx(dev);
    MemHandle h = ctx.memAllocAligned(1024);
    ctx.memFree(h);
    EXPECT_DEATH(ctx.memFree(h), "is not owned by this context "
                                 "\\(double-free");
}

TEST(GdlDeathTest, BadFreeNamesTheSessionCoreAndFootprint)
{
    // During a quarantine post-mortem the panic has to say which
    // serving core's session blew up and what it still held.
    apu::ApuDevice dev;
    GdlContext ctx(dev);
    ctx.setCoreHint(3);
    MemHandle h = ctx.memAllocAligned(1024);
    EXPECT_DEATH(ctx.memFree(MemHandle{h.addr + 999999}),
                 "session core 3, 1 outstanding allocation\\(s\\), "
                 "1024 bytes held");
    ctx.memFree(h);
}

TEST(GdlDeathTest, OffsetHandleFreeNamesTheOwningAllocation)
{
    // Freeing an interior address is the classic offset-handle bug:
    // the diagnostic must point at the owning block, not just say
    // "not owned".
    apu::ApuDevice dev;
    GdlContext ctx(dev);
    MemHandle h = ctx.memAllocAligned(2048);
    EXPECT_DEATH(ctx.memFree(h.offset(512)),
                 "points inside the 2048-byte allocation at .* — "
                 "freed with an offset handle\\?");
    ctx.memFree(h);
}
