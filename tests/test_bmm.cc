/**
 * @file
 * Binary-matmul kernel tests: every variant computes the exact
 * reference result; timing mode reproduces the Fig. 12 breakdown
 * shape; simulator and analytical model agree.
 */

#include <gtest/gtest.h>

#include "core/bmm_model.hh"
#include "kernels/bmm.hh"
#include "model/sg_model.hh"

using namespace cisram;
using namespace cisram::core;
using namespace cisram::kernels;

namespace {

constexpr BmmVariant allVariants[] = {
    BmmVariant::Baseline, BmmVariant::Opt1, BmmVariant::Opt1Opt2,
    BmmVariant::Opt1Opt3, BmmVariant::AllOpts,
};

} // namespace

class BmmFunctional
    : public ::testing::TestWithParam<BmmVariant>
{
};

TEST_P(BmmFunctional, MatchesReference)
{
    BmmShape shape{64, 64, 256};
    BmmData data = genBmmData(shape, 101);
    auto expect = bmmReference(shape, data);

    apu::ApuDevice dev;
    auto got = runBmmApu(dev, shape, GetParam(), &data);
    ASSERT_EQ(got.c.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        ASSERT_EQ(got.c[i], expect[i])
            << bmmVariantName(GetParam()) << " at " << i;
}

TEST_P(BmmFunctional, MatchesReferenceNonSquare)
{
    // Partial tiles (m not a multiple of rows-per-VR) and multiple
    // B-VR groups.
    BmmShape shape{48, 128, 512};
    BmmData data = genBmmData(shape, 102);
    auto expect = bmmReference(shape, data);

    apu::ApuDevice dev;
    auto got = runBmmApu(dev, shape, GetParam(), &data);
    ASSERT_EQ(got.c.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        ASSERT_EQ(got.c[i], expect[i])
            << bmmVariantName(GetParam()) << " at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, BmmFunctional, ::testing::ValuesIn(allVariants),
    [](const ::testing::TestParamInfo<BmmVariant> &info) {
        std::string name = bmmVariantName(info.param);
        for (auto &c : name)
            if (c == '+' || c == '-')
                c = '_';
        return name;
    });

namespace {

BmmRunResult
timedRun(BmmVariant v)
{
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    BmmShape paper{1024, 1024, 1024};
    return runBmmApu(dev, paper, v, nullptr);
}

} // namespace

TEST(BmmTiming, Fig12BaselineStoreBound)
{
    auto r = timedRun(BmmVariant::Baseline);
    EXPECT_GT(r.cycles.store, r.cycles.ldLhs);
    EXPECT_GT(r.cycles.store, r.cycles.ldRhs);
    EXPECT_GT(r.cycles.store, r.cycles.vrOps);
    // Paper: 226.3 ms measured baseline; ours within 2x.
    double ms = r.cycles.total() / 500.0e6 * 1e3;
    EXPECT_GT(ms, 110.0);
    EXPECT_LT(ms, 450.0);
}

TEST(BmmTiming, Fig12OptProgression)
{
    double base = timedRun(BmmVariant::Baseline).cycles.total();
    auto o1 = timedRun(BmmVariant::Opt1);
    double o12 = timedRun(BmmVariant::Opt1Opt2).cycles.total();
    double o13 = timedRun(BmmVariant::Opt1Opt3).cycles.total();
    double all = timedRun(BmmVariant::AllOpts).cycles.total();

    // Opt1 shifts the bottleneck to RHS loading.
    EXPECT_GT(o1.cycles.ldRhs, o1.cycles.ldLhs);
    EXPECT_GT(o1.cycles.ldRhs, o1.cycles.store);

    // Each additional optimization helps; all is the best.
    EXPECT_LT(o12, o1.cycles.total());
    EXPECT_LT(o13, o1.cycles.total());
    EXPECT_LT(all, o12);
    EXPECT_LT(all, o13);

    // Paper: 18.9x end-to-end gain; require >10x.
    EXPECT_GT(base / all, 10.0);
    EXPECT_LT(base / all, 60.0);
}

TEST(BmmTiming, SimulatorTracksAnalyticalModel)
{
    apu::ApuDevice dev;
    model::SubgroupReductionModel sg;
    sg.calibrate(dev.core(0));
    BmmAnalyticalModel model(model::CostTable{}, sg);
    BmmShape paper{1024, 1024, 1024};

    for (auto v : allVariants) {
        double sim = timedRun(v).cycles.total();
        double pred = model.predict(paper, v).total();
        EXPECT_NEAR(pred, sim, sim * 0.25) << bmmVariantName(v);
    }
}

TEST(BmmTiming, UopsCounted)
{
    auto r = timedRun(BmmVariant::AllOpts);
    EXPECT_GT(r.uops, 1000.0);
}
