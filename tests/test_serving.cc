/**
 * @file
 * The batched serving pipeline and the serving-path correctness
 * contracts: exact circuit-breaker cooldown counts, deterministic
 * batch formation, batched-vs-single functional equivalence,
 * overlapped-streaming timing invariants, honest per-attempt latency
 * accounting under injected faults, stage attribution of the bias
 * setup, and bit-identical pipeline runs for any CISRAM_SIM_THREADS.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apusim/apu.hh"
#include "apusim/multicore.hh"
#include "baseline/faisslite.hh"
#include "baseline/workloads.hh"
#include "common/metrics.hh"
#include "common/status.hh"
#include "common/threadpool.hh"
#include "dramsim/dram_sim.hh"
#include "fault/fault.hh"
#include "gdl/gdl.hh"
#include "kernels/rag.hh"
#include "kernels/serving.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

/** Disarm on scope exit so no test leaks an armed plan. */
struct PlanGuard
{
    explicit PlanGuard(const std::string &spec)
    {
        auto p = fault::FaultPlan::parse(spec);
        EXPECT_TRUE(p.ok()) << p.status().toString();
        fault::armPlan(*p);
    }
    ~PlanGuard() { fault::disarm(); }
};

/** Pin CISRAM_SIM_THREADS for one scope. */
struct ThreadSetting
{
    explicit ThreadSetting(unsigned n) { setSimThreads(n); }
    ~ThreadSetting() { setSimThreads(0); }
};

} // namespace

// ---- Circuit breaker: exact cooldown counts ----------------------------

TEST(ServingBreaker, ExactCooldownCounts)
{
    // While Open, exactly `cooldown` calls fall back; the next call
    // is the probe. The pre-fix code admitted the probe one query
    // early (only cooldown-1 fallbacks).
    for (unsigned cooldown : {1u, 2u, 4u}) {
        CircuitBreaker br(/*failure_threshold=*/1, cooldown);
        br.recordFailure();
        ASSERT_EQ(br.state(), BreakerState::Open)
            << "cooldown " << cooldown;
        for (unsigned i = 0; i < cooldown; ++i)
            EXPECT_FALSE(br.allowRequest())
                << "cooldown " << cooldown << ", fallback " << i;
        EXPECT_TRUE(br.allowRequest())
            << "cooldown " << cooldown << ": probe expected";
        EXPECT_EQ(br.state(), BreakerState::HalfOpen);
    }
}

TEST(ServingBreaker, ZeroCooldownProbesImmediately)
{
    CircuitBreaker br(1, 0);
    br.recordFailure();
    ASSERT_EQ(br.state(), BreakerState::Open);
    EXPECT_TRUE(br.allowRequest());
    EXPECT_EQ(br.state(), BreakerState::HalfOpen);
}

TEST(ServingBreaker, FailedProbeRestartsFullCooldown)
{
    CircuitBreaker br(1, 3);
    br.recordFailure();
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < 3; ++i)
            EXPECT_FALSE(br.allowRequest()) << "round " << round;
        EXPECT_TRUE(br.allowRequest()) << "round " << round;
        br.recordFailure(); // probe fails: back to Open
        EXPECT_EQ(br.state(), BreakerState::Open);
    }
    EXPECT_EQ(br.trips(), 3u); // initial + two failed probes
}

TEST(ServingBreaker, ProbeOutcomesAreCounted)
{
    // Every half-open probe outcome lands in the metrics registry:
    // operators watching breaker.probe_failure climb without a
    // matching probe_success are looking at a persistent fault.
    auto &succ =
        metrics::Registry::get().counter("breaker.probe_success");
    auto &fail =
        metrics::Registry::get().counter("breaker.probe_failure");
    double succ_before = succ.value();
    double fail_before = fail.value();

    CircuitBreaker br(1, 1);
    br.recordFailure(); // trips Open
    EXPECT_FALSE(br.allowRequest()); // cooldown
    EXPECT_TRUE(br.allowRequest());  // probe admitted (HalfOpen)
    br.recordFailure();              // probe fails: re-open
    EXPECT_EQ(fail.value() - fail_before, 1.0);
    EXPECT_EQ(succ.value() - succ_before, 0.0);

    EXPECT_FALSE(br.allowRequest());
    EXPECT_TRUE(br.allowRequest()); // second probe
    br.recordSuccess();             // probe succeeds: close
    EXPECT_EQ(succ.value() - succ_before, 1.0);
    EXPECT_EQ(fail.value() - fail_before, 1.0);
    EXPECT_EQ(br.state(), BreakerState::Closed);

    // Success from a Closed breaker is not a probe: no counter move.
    br.recordSuccess();
    EXPECT_EQ(succ.value() - succ_before, 1.0);
}

// ---- Batch former -------------------------------------------------------

namespace {

PendingQuery
pq(uint64_t id)
{
    return PendingQuery{id, std::vector<int16_t>(4, 0), 0.0};
}

} // namespace

TEST(BatchFormer, ShipsWhenFull)
{
    BatchFormer f(BatchPolicy{4, 100});
    for (uint64_t i = 0; i < 3; ++i) {
        f.admit(pq(i));
        EXPECT_FALSE(f.batchReady()) << "after admission " << i;
    }
    f.admit(pq(3));
    ASSERT_TRUE(f.batchReady());
    auto batch = f.takeBatch();
    ASSERT_EQ(batch.size(), 4u);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(batch[i].id, i); // FIFO order
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.batchesFormed(), 1u);
}

TEST(BatchFormer, LingerBoundShipsPartialBatch)
{
    // maxBatch 8, but the oldest query ships after 3 later
    // admissions even though the batch is not full.
    BatchFormer f(BatchPolicy{8, 3});
    f.admit(pq(0));
    EXPECT_FALSE(f.batchReady());
    f.admit(pq(1));
    f.admit(pq(2));
    EXPECT_FALSE(f.batchReady());
    f.admit(pq(3)); // third admission after query 0
    EXPECT_TRUE(f.batchReady());
    EXPECT_EQ(f.takeBatch().size(), 4u);
}

TEST(BatchFormer, ZeroLingerIsSequentialServing)
{
    BatchFormer f(BatchPolicy{8, 0});
    f.admit(pq(0));
    EXPECT_TRUE(f.batchReady());
    EXPECT_EQ(f.takeBatch().size(), 1u);
}

TEST(BatchFormer, TakeBatchOnEmptyReturnsNothing)
{
    BatchFormer f;
    EXPECT_FALSE(f.batchReady());
    EXPECT_TRUE(f.takeBatch().empty());
    EXPECT_EQ(f.batchesFormed(), 0u);
}

TEST(BatchFormerDeathTest, RejectsOversizedPolicy)
{
    EXPECT_DEATH(BatchFormer f(BatchPolicy{9, 1}), "maxBatch");
}

TEST(BatchFormer, TimeCloseOutShipsDepthOneAtTheBound)
{
    // Open-loop close-out: a lone query under a sparse trace has no
    // batch-mates coming, so it ships once the observed arrival
    // clock reaches its admission plus maxLingerSeconds — inclusive
    // at the bound, never before.
    BatchFormer f(BatchPolicy{8, 100, 0.5});
    f.admit(PendingQuery{1, std::vector<int16_t>(4, 0), 1.0});
    EXPECT_FALSE(f.batchReady());
    EXPECT_FALSE(f.batchReadyAt(1.0));
    EXPECT_FALSE(f.batchReadyAt(1.499));
    EXPECT_TRUE(f.batchReadyAt(1.5));
    EXPECT_EQ(f.frontAdmitSeconds(), 1.0);
    EXPECT_EQ(f.takeBatch().size(), 1u);
    // An empty queue never closes out, whatever the clock says.
    EXPECT_FALSE(f.batchReadyAt(100.0));
}

TEST(BatchFormer, ExactlyMaxLingerAdmissionsStillShipsByCount)
{
    // The admission-count rule is independent of the time close-out:
    // with an absurd time bound, exactly maxLingerAdmissions later
    // admissions ship the oldest query; one fewer does not.
    BatchFormer f(BatchPolicy{8, 3, 1e9});
    f.admit(pq(0));
    f.admit(pq(1));
    f.admit(pq(2));
    EXPECT_FALSE(f.batchReady());
    EXPECT_FALSE(f.batchReadyAt(0.0));
    f.admit(pq(3)); // exactly the third admission after query 0
    EXPECT_TRUE(f.batchReady());
    EXPECT_TRUE(f.batchReadyAt(0.0)); // no clock involved
    EXPECT_EQ(f.takeBatch().size(), 4u);
}

// ---- Batched retrieval: functional equivalence -------------------------

TEST(ServingBatch, EveryBatchSizeMatchesSingleRetrieval)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    RagCorpusSpec corpus{"unit", 0, 2500, 368};
    const uint64_t seed = 77;
    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, corpus, 5);

    std::vector<std::vector<int16_t>> queries;
    std::vector<RagRunResult> singles;
    for (int q = 0; q < 8; ++q) {
        queries.push_back(genQuery(corpus.dim, 300 + q));
        singles.push_back(retriever.retrieve(
            queries.back(), RagVariant::AllOpts, seed));
    }

    for (size_t b = 1; b <= 8; ++b) {
        std::vector<std::vector<int16_t>> sub(queries.begin(),
                                              queries.begin() + b);
        auto batched = retriever.retrieveBatch(sub, seed);
        ASSERT_EQ(batched.size(), b);
        for (size_t q = 0; q < b; ++q) {
            ASSERT_EQ(batched[q].hits.size(),
                      singles[q].hits.size())
                << "batch " << b << ", query " << q;
            for (size_t i = 0; i < singles[q].hits.size(); ++i) {
                EXPECT_EQ(batched[q].hits[i].id,
                          singles[q].hits[i].id)
                    << "batch " << b << ", query " << q;
                EXPECT_EQ(batched[q].hits[i].score,
                          singles[q].hits[i].score);
            }
        }
    }
}

TEST(ServingBatch, OverlapDoesNotChangeFunctionalResults)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    RagCorpusSpec corpus{"unit", 0, 2000, 368};
    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, corpus, 5);

    std::vector<std::vector<int16_t>> queries;
    for (int q = 0; q < 4; ++q)
        queries.push_back(genQuery(corpus.dim, 500 + q));

    auto seq = retriever.retrieveBatch(queries, 9,
                                       RagBatchOptions{false});
    auto ovl = retriever.retrieveBatch(queries, 9,
                                       RagBatchOptions{true});
    for (size_t q = 0; q < queries.size(); ++q) {
        ASSERT_EQ(seq[q].hits.size(), ovl[q].hits.size());
        for (size_t i = 0; i < seq[q].hits.size(); ++i)
            EXPECT_EQ(seq[q].hits[i].id, ovl[q].hits[i].id);
    }
}

// ---- Overlapped streaming: timing invariants ---------------------------

TEST(ServingOverlap, TimingInvariantsAtPaperScale)
{
    const auto &spec = ragCorpora()[2]; // 200 GB, many supertiles
    std::vector<std::vector<int16_t>> queries;
    for (int q = 0; q < 4; ++q)
        queries.push_back(genQuery(spec.dim, 40 + q));

    auto run = [&](bool overlap) {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        dram::DramSystem hbm(dram::hbm2eConfig());
        RagRetriever retriever(dev, hbm, spec, 5);
        return retriever.retrieveBatch(queries, 1,
                                       RagBatchOptions{overlap});
    };
    auto seq = run(false);
    auto ovl = run(true);

    // Stage attribution is mode-independent: overlap only moves work
    // off the critical path, it never re-labels it.
    EXPECT_DOUBLE_EQ(ovl[0].stages.loadEmbedding,
                     seq[0].stages.loadEmbedding);
    EXPECT_DOUBLE_EQ(ovl[0].stages.calcDistance,
                     seq[0].stages.calcDistance);
    EXPECT_DOUBLE_EQ(ovl[0].stages.loadQuery,
                     seq[0].stages.loadQuery);
    EXPECT_DOUBLE_EQ(seq[0].stages.overlapHidden, 0.0);

    // Overlap helps at this scale and never hurts.
    EXPECT_GT(ovl[0].stages.overlapHidden, 0.0);
    EXPECT_LT(ovl[0].stages.total(), seq[0].stages.total());

    // The pipeline cannot beat its slower stage: the overlapped
    // stream+compute portion is bounded below by max(stream, calc).
    double overlapped_portion = ovl[0].stages.loadEmbedding +
        ovl[0].stages.calcDistance - ovl[0].stages.overlapHidden;
    EXPECT_GE(overlapped_portion,
              std::max(ovl[0].stages.loadEmbedding,
                       ovl[0].stages.calcDistance));
}

TEST(ServingOverlap, SingleSupertileHidesNothing)
{
    // One supertile leaves nothing to pipeline: the first stream and
    // the last compute are both exposed, and the sync charge makes
    // overlap a strict non-win, which the clamp turns into "no
    // change".
    RagCorpusSpec corpus{"tiny", 0, 10000, 368};
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, corpus, 5);
    std::vector<std::vector<int16_t>> queries{genQuery(corpus.dim,
                                                       3)};
    auto r = retriever.retrieveBatch(queries, 1,
                                     RagBatchOptions{true});
    EXPECT_DOUBLE_EQ(r[0].stages.overlapHidden, 0.0);
}

// ---- Stage attribution of the bias setup -------------------------------

TEST(ServingStages, LoadQueryIsPureQueryStaging)
{
    // The batched load-query stage must be exactly the cost of the
    // L4->L3 query transfer: the score-bias constant setup
    // (cpyImm16) belongs to calc-distance. The pre-fix code charged
    // it to load-query, which this exact-equality check catches.
    const auto &spec = ragCorpora()[0];
    std::vector<std::vector<int16_t>> one{genQuery(spec.dim, 11)};

    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, 5);
    auto r = retriever.retrieveBatch(one, 1);

    apu::ApuDevice ref;
    ref.core(0).setMode(apu::ExecMode::TimingOnly);
    ref.core(0).stats().reset();
    ref.core(0).dmaL4ToL3(0, 0, spec.dim * 2);
    double staging =
        ref.cyclesToSeconds(ref.core(0).stats().cycles());

    EXPECT_DOUBLE_EQ(r[0].stages.loadQuery, staging);
}

// ---- DeviceServer: end-to-end functional serving -----------------------

namespace {

struct ServingFixture
{
    RagCorpusSpec corpus{"unit", 0, 3000, 368};
    uint64_t seed = 2026;
    apu::ApuDevice dev;
    IndexFlatI16 index{368};

    ServingFixture()
    {
        auto emb =
            genEmbeddings(corpus, 0, corpus.numChunks, seed);
        index.add(emb.data(), corpus.numChunks);
    }

    std::vector<int16_t>
    query(int q) const
    {
        return genQuery(corpus.dim, 600 + q);
    }

    bool
    matchesGolden(int q, const std::vector<uint32_t> &ids) const
    {
        auto expect = index.search(query(q).data(), 5);
        if (ids.size() != expect.size())
            return false;
        for (size_t i = 0; i < ids.size(); ++i)
            if (ids[i] != static_cast<uint32_t>(expect[i].id))
                return false;
        return true;
    }
};

} // namespace

TEST(DeviceServerTest, PipelineServesCorrectAnswers)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    ServingFixture fx;
    ServerConfig cfg;
    cfg.batch = BatchPolicy{4, 4};
    DeviceServer server(fx.dev, fx.corpus, 0, &fx.index, fx.seed,
                        cfg);

    // All eight queries arrive at once (admitted at the same server
    // clock), so the second batch's wait is pure head-of-line
    // blocking behind the first.
    std::vector<ServeOutcome> outs;
    for (int q = 0; q < 8; ++q)
        server.enqueue(static_cast<uint64_t>(q), fx.query(q));
    for (auto &o : server.drain())
        outs.push_back(std::move(o));

    ASSERT_EQ(outs.size(), 8u);
    EXPECT_EQ(server.former().batchesFormed(), 2u);
    for (const auto &out : outs) {
        EXPECT_TRUE(out.ok);
        EXPECT_TRUE(out.fromDevice);
        EXPECT_EQ(out.batchSize, 4u);
        EXPECT_TRUE(
            fx.matchesGolden(static_cast<int>(out.id), out.ids))
            << "query " << out.id;
    }

    // Queue wait: the first batch ships at a quiet server (no wait);
    // the second batch's queries waited for the first to finish.
    EXPECT_DOUBLE_EQ(outs[0].queueWaitSeconds, 0.0);
    EXPECT_GT(outs[4].queueWaitSeconds, 0.0);
    EXPECT_GE(outs[4].servedSeconds(), outs[4].queueWaitSeconds);
    EXPECT_GT(server.busySeconds(), 0.0);
}

// ---- Open-loop close-out at the device server --------------------------

TEST(ServingBatch, DepthOneClosesOutAtExactlyTheLingerBound)
{
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    ServerConfig cfg;
    cfg.batch = BatchPolicy{8, 100, 0.5};
    DeviceServer server(dev, spec, 0, nullptr, 1, cfg);

    ASSERT_TRUE(
        server.enqueueAt(1, genQuery(spec.dim, 1), 1.0).ok());
    // Neither depth nor admission count is anywhere near shipping,
    // and the arrival clock has not reached the close-out instant.
    EXPECT_TRUE(server.pump().empty());
    EXPECT_TRUE(server.pumpUntil(1.499).empty());
    // Poll PAST the bound: service still starts at the close-out
    // instant (admit + linger = 1.5), not at the polling instant,
    // so the query waited exactly the linger bound.
    auto outs = server.pumpUntil(1.6);
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_TRUE(outs[0].ok);
    EXPECT_EQ(outs[0].batchSize, 1u);
    EXPECT_DOUBLE_EQ(outs[0].queueWaitSeconds, 0.5);
}

TEST(ServingBatch, BurstThenSilenceShipsFullThenCloseOutTail)
{
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    ServerConfig cfg;
    cfg.batch = BatchPolicy{4, 100, 0.25};
    DeviceServer server(dev, spec, 0, nullptr, 1, cfg);

    // Six arrivals in a tight burst (1/64 s apart — exact binary
    // times so the close-out comparison has no rounding slop), then
    // silence: the open-loop trace never fills a second batch.
    for (uint64_t q = 0; q < 6; ++q)
        ASSERT_TRUE(server
                        .enqueueAt(q + 1, genQuery(spec.dim, q),
                                   q * 0.015625)
                        .ok());
    // The burst depth-ships one full batch immediately...
    auto first = server.pumpUntil(6 * 0.015625);
    ASSERT_EQ(first.size(), 4u);
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].id, i + 1);
        EXPECT_EQ(first[i].batchSize, 4u);
    }
    // ...and the 2-query tail lingers: its oldest admit is at
    // 4/64 s, so close-out is at 4/64 + 0.25 and not a tick before.
    EXPECT_TRUE(server.pumpUntil(4 * 0.015625 + 0.249).empty());
    auto tail = server.pumpUntil(4 * 0.015625 + 0.25);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].id, 5u);
    EXPECT_EQ(tail[1].id, 6u);
    EXPECT_EQ(tail[0].batchSize, 2u);
    // Exactly-once: every burst query served, none twice.
    EXPECT_TRUE(server.pumpUntil(1e9).empty());
}

// ---- Latency accounting under injected faults --------------------------

TEST(ServingLatency, ImmediateFailuresDontChargeTheDeadline)
{
    // Every PCIe transfer corrupts: each device attempt dies in
    // microseconds of (retried) transfer time, so the served latency
    // must NOT include the 0.5 s deadline budget per attempt. The
    // pre-fix accounting charged attempts * deadline here.
    PlanGuard plan("pcie_corrupt:p=1;seed:5");
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    DeviceServer server(dev, spec, 0, nullptr, 1, ServerConfig{});

    ServeOutcome out = server.serve(genQuery(spec.dim, 1));
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(out.fromDevice);
    EXPECT_EQ(out.attempts, server.config().retry.maxAttempts);
    EXPECT_FALSE(out.lastError.empty());
    // Failed-attempt cost is actual simulated transfer time —
    // far below even one deadline.
    EXPECT_LT(out.hostSeconds,
              server.config().retry.deadlineSeconds);
    EXPECT_LT(out.hostSeconds, 0.01);
}

TEST(ServingLatency, HangsChargeExactlyTheDeadlinePerAttempt)
{
    // Every task hangs: the host waits out the full deadline per
    // attempt, and that wait IS the served latency (plus the
    // microscopic PCIe staging).
    PlanGuard plan("task_hang:p=1;seed:5");
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    DeviceServer server(dev, spec, 0, nullptr, 1, ServerConfig{});

    ServeOutcome out = server.serve(genQuery(spec.dim, 1));
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(out.fromDevice);
    unsigned attempts = server.config().retry.maxAttempts;
    EXPECT_EQ(out.attempts, attempts);
    double budget =
        attempts * server.config().retry.deadlineSeconds;
    EXPECT_GE(out.hostSeconds, budget);
    EXPECT_LT(out.hostSeconds, budget + 0.01);
}

TEST(ServingLatency, BreakerRoutesCooldownQueriesStraightToCpu)
{
    PlanGuard plan("task_hang:p=1;seed:5");
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    ServerConfig cfg;
    cfg.breakerThreshold = 1;
    cfg.breakerCooldown = 2;
    DeviceServer server(dev, spec, 0, nullptr, 1, cfg);

    auto first = server.serve(genQuery(spec.dim, 1));
    EXPECT_GT(first.attempts, 0u);
    EXPECT_EQ(server.breaker().state(), BreakerState::Open);

    // Exactly two cooldown queries bypass the device entirely (no
    // attempts, no deadline waits)...
    for (int q = 0; q < 2; ++q) {
        auto out = server.serve(genQuery(spec.dim, 2 + q));
        EXPECT_TRUE(out.ok);
        EXPECT_EQ(out.attempts, 0u) << "cooldown query " << q;
        EXPECT_LT(out.hostSeconds, 1e-9);
    }
    // ...then the next query probes the device again.
    auto probe = server.serve(genQuery(spec.dim, 9));
    EXPECT_GT(probe.attempts, 0u);
    EXPECT_EQ(server.breaker().state(), BreakerState::Open);
}

// ---- Pipeline determinism across thread counts -------------------------

namespace {

struct RunSnapshot
{
    std::vector<double> served, waits;
    std::vector<unsigned> attempts;
    std::vector<int> fromDevice;
    std::vector<double> busy;

    bool
    operator==(const RunSnapshot &o) const
    {
        return served == o.served && waits == o.waits &&
            attempts == o.attempts && fromDevice == o.fromDevice &&
            busy == o.busy;
    }
};

RunSnapshot
runShardedPipeline()
{
    constexpr int kQ = 16;
    // Both replays must assign the same fault-draw streams to their
    // (fresh) GdlContexts, or the comparison measures stream
    // assignment instead of thread scheduling.
    gdl::resetFaultStreams();
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    for (unsigned c = 0; c < dev.numCores(); ++c)
        dev.core(c).setMode(apu::ExecMode::TimingOnly);

    ServerConfig cfg;
    cfg.batch = BatchPolicy{2, 2};
    std::vector<std::unique_ptr<DeviceServer>> servers;
    for (unsigned c = 0; c < dev.numCores(); ++c)
        servers.push_back(std::make_unique<DeviceServer>(
            dev, spec, c, nullptr, 7, cfg));

    RunSnapshot snap;
    snap.served.resize(kQ);
    snap.waits.resize(kQ);
    snap.attempts.resize(kQ);
    snap.fromDevice.resize(kQ);
    apu::runOnAllCores(dev, [&](apu::ApuCore &, unsigned c,
                                unsigned n) {
        auto shard = apu::shardOf(kQ, c, n);
        auto &server = *servers[c];
        auto record = [&](const ServeOutcome &out) {
            snap.served[out.id] = out.servedSeconds();
            snap.waits[out.id] = out.queueWaitSeconds;
            snap.attempts[out.id] = out.attempts;
            snap.fromDevice[out.id] = out.fromDevice ? 1 : 0;
        };
        for (size_t q = shard.begin; q < shard.end; ++q) {
            server.enqueue(q, genQuery(spec.dim,
                                       70 + static_cast<int>(q)));
            for (const auto &out : server.pump())
                record(out);
        }
        for (const auto &out : server.drain())
            record(out);
    });
    for (auto &s : servers)
        snap.busy.push_back(s->busySeconds());
    return snap;
}

} // namespace

TEST(ServingDeterminism, BitIdenticalAcrossSimThreadCounts)
{
    // An armed fault plan makes this the hard case: retries,
    // breaker transitions, and fallbacks must all replay
    // identically whether cores run serially or concurrently.
    PlanGuard plan(
        "task_hang:core=1,p=0.9;pcie_corrupt:p=0.05;seed:31");
    RunSnapshot serial, threaded;
    {
        ThreadSetting one(1);
        serial = runShardedPipeline();
    }
    {
        ThreadSetting four(4);
        threaded = runShardedPipeline();
    }
    ASSERT_EQ(serial.served.size(), threaded.served.size());
    for (size_t q = 0; q < serial.served.size(); ++q) {
        EXPECT_EQ(serial.served[q], threaded.served[q]) << "q=" << q;
        EXPECT_EQ(serial.waits[q], threaded.waits[q]) << "q=" << q;
        EXPECT_EQ(serial.attempts[q], threaded.attempts[q])
            << "q=" << q;
        EXPECT_EQ(serial.fromDevice[q], threaded.fromDevice[q])
            << "q=" << q;
    }
    ASSERT_EQ(serial.busy.size(), threaded.busy.size());
    for (size_t c = 0; c < serial.busy.size(); ++c)
        EXPECT_EQ(serial.busy[c], threaded.busy[c]) << "core=" << c;
    // The plan actually bit: something fell back or retried.
    bool plan_bit = false;
    for (size_t q = 0; q < serial.fromDevice.size(); ++q)
        plan_bit |= (serial.fromDevice[q] == 0) ||
            (serial.attempts[q] > 1);
    EXPECT_TRUE(plan_bit);
}
