/**
 * @file
 * Bit-processor array tests: Table 2 micro-operations, global lines,
 * neighbour wires, and bank-boundary behaviour.
 */

#include <gtest/gtest.h>

#include "apusim/bitproc.hh"
#include "apusim/vr_file.hh"
#include "common/rng.hh"

using namespace cisram;
using namespace cisram::apu;

namespace {

/** Small register file: 8 VRs x 256 elements over 4 banks. */
struct Fixture
{
    Fixture() : vrs(8, 256, 4), bp(vrs) {}

    void
    randomize(unsigned vr, uint64_t seed)
    {
        Rng rng(seed);
        for (auto &v : vrs[vr])
            v = rng.nextU16();
    }

    VrFile vrs;
    BitProcArray bp;
};

} // namespace

TEST(VrFileTest, SlicePlaneRoundTrip)
{
    Fixture f;
    f.randomize(0, 11);
    auto original = f.vrs[0];
    for (unsigned s = 0; s < 16; ++s) {
        BitVector plane = f.vrs.slicePlane(0, s);
        for (size_t i = 0; i < original.size(); ++i)
            EXPECT_EQ(plane.get(i), ((original[i] >> s) & 1) != 0);
        f.vrs.setSlicePlane(0, s, plane);
    }
    EXPECT_EQ(f.vrs[0], original);
}

TEST(BitProc, ReadWriteVr)
{
    Fixture f;
    f.randomize(0, 1);
    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 1);
    EXPECT_EQ(f.vrs[1], f.vrs[0]);
}

TEST(BitProc, NegatedWriteIsComplement)
{
    Fixture f;
    f.randomize(0, 2);
    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 1, /*negate=*/true);
    for (size_t i = 0; i < f.vrs.length(); ++i)
        EXPECT_EQ(f.vrs[1][i], static_cast<uint16_t>(~f.vrs[0][i]));
}

TEST(BitProc, ReadAndOfTwoVrs)
{
    Fixture f;
    f.randomize(0, 3);
    f.randomize(1, 4);
    f.bp.rlFromVrAndVr(BitProcArray::fullMask, 0, 1);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 2);
    for (size_t i = 0; i < f.vrs.length(); ++i)
        EXPECT_EQ(f.vrs[2][i], f.vrs[0][i] & f.vrs[1][i]);
}

TEST(BitProc, RlOpVrBooleans)
{
    Fixture f;
    f.randomize(0, 5);
    f.randomize(1, 6);

    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.rlOpVr(BitProcArray::fullMask, BoolOp::Or, 1);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 2);

    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.rlOpVr(BitProcArray::fullMask, BoolOp::Xor, 1);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 3);

    for (size_t i = 0; i < f.vrs.length(); ++i) {
        EXPECT_EQ(f.vrs[2][i], f.vrs[0][i] | f.vrs[1][i]);
        EXPECT_EQ(f.vrs[3][i], f.vrs[0][i] ^ f.vrs[1][i]);
    }
}

TEST(BitProc, SliceMaskRestrictsOperation)
{
    Fixture f;
    f.randomize(0, 7);
    // Zero VR1, then copy only slices 0..7 of VR0 into it.
    f.bp.rlFromImmediate(BitProcArray::fullMask, false);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 1);
    f.bp.rlFromVr(0x00ff, 0);
    f.bp.writeVrFromRl(0x00ff, 1);
    for (size_t i = 0; i < f.vrs.length(); ++i)
        EXPECT_EQ(f.vrs[1][i], f.vrs[0][i] & 0x00ff);
}

TEST(BitProc, GvlAndsAcrossSlices)
{
    Fixture f;
    f.randomize(0, 8);
    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.loadGvlFromRl(BitProcArray::fullMask);
    const BitVector &gvl = f.bp.gvl();
    for (size_t i = 0; i < f.vrs.length(); ++i)
        EXPECT_EQ(gvl.get(i), f.vrs[0][i] == 0xffff) << i;
}

TEST(BitProc, GvlWithPartialMask)
{
    Fixture f;
    f.randomize(0, 9);
    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.loadGvlFromRl(0x000f); // AND of the low 4 slices only
    const BitVector &gvl = f.bp.gvl();
    for (size_t i = 0; i < f.vrs.length(); ++i)
        EXPECT_EQ(gvl.get(i), (f.vrs[0][i] & 0xf) == 0xf) << i;
}

TEST(BitProc, GhlOrsAcrossBankRow)
{
    Fixture f;
    // Set one element in bank 2 only (elements 128..191 for 4 banks
    // of 64): slice 3 of element 130.
    for (auto &v : f.vrs[0])
        v = 0;
    f.vrs[0][130] = 1u << 3;
    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.loadGhlFromRl(BitProcArray::fullMask);
    for (unsigned b = 0; b < 4; ++b)
        for (unsigned s = 0; s < 16; ++s)
            EXPECT_EQ(f.bp.ghlBit(b, s), b == 2 && s == 3);

    // Reading GHL back broadcasts to the whole bank row.
    f.bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::GHL);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 1);
    for (size_t i = 0; i < f.vrs.length(); ++i) {
        uint16_t expect = (i >= 128 && i < 192) ? (1u << 3) : 0;
        EXPECT_EQ(f.vrs[1][i], expect) << i;
    }
}

TEST(BitProc, EastWestNeighboursStopAtBankEdges)
{
    Fixture f;
    Rng rng(10);
    for (auto &v : f.vrs[0])
        v = rng.nextU16();

    // VR1 = west neighbour of VR0 (value at column i comes from i-1).
    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::RL_W);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 1);

    // VR2 = east neighbour.
    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::RL_E);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 2);

    size_t bank_elems = f.vrs.bankElems();
    for (size_t i = 0; i < f.vrs.length(); ++i) {
        uint16_t west =
            (i % bank_elems == 0) ? 0 : f.vrs[0][i - 1];
        uint16_t east =
            (i % bank_elems == bank_elems - 1) ? 0 : f.vrs[0][i + 1];
        EXPECT_EQ(f.vrs[1][i], west) << i;
        EXPECT_EQ(f.vrs[2][i], east) << i;
    }
}

TEST(BitProc, NorthSouthNeighboursShiftSlices)
{
    Fixture f;
    f.randomize(0, 12);
    // RL_S at slice s reads slice s-1: the net effect of writing
    // RL_S back is a 1-bit left shift of every element.
    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::RL_S);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 1);
    for (size_t i = 0; i < f.vrs.length(); ++i)
        EXPECT_EQ(f.vrs[1][i],
                  static_cast<uint16_t>(f.vrs[0][i] << 1));

    // RL_N reads slice s+1: a 1-bit logical right shift.
    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::RL_N);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 2);
    for (size_t i = 0; i < f.vrs.length(); ++i)
        EXPECT_EQ(f.vrs[2][i],
                  static_cast<uint16_t>(f.vrs[0][i] >> 1));
}

TEST(BitProc, RlFromVrOpLatchCombinations)
{
    Fixture f;
    f.randomize(0, 13);
    f.randomize(1, 14);
    // RL = VR0; then RL = VR1 ^ RL  ==> VR0 ^ VR1.
    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.rlFromVrOpLatch(BitProcArray::fullMask, 1, BoolOp::Xor,
                         LatchSrc::RL);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 2);
    for (size_t i = 0; i < f.vrs.length(); ++i)
        EXPECT_EQ(f.vrs[2][i], f.vrs[0][i] ^ f.vrs[1][i]);
}

TEST(BitProc, UopCounterAdvances)
{
    Fixture f;
    uint64_t before = f.bp.uopCount();
    f.bp.rlFromVr(BitProcArray::fullMask, 0);
    f.bp.writeVrFromRl(BitProcArray::fullMask, 1);
    EXPECT_EQ(f.bp.uopCount(), before + 2);
}
