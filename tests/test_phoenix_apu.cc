/**
 * @file
 * Phoenix-on-APU tests: every application's functional result is
 * exact against its CPU reference at test scale, and the paper-scale
 * timing reproduces Table 7 magnitudes and the Fig. 13 win/loss
 * pattern.
 */

#include <gtest/gtest.h>

#include "baseline/phoenix_cpu.hh"
#include "baseline/timing_models.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "kernels/phoenix_apu.hh"
#include "kernels/sort.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

constexpr PhoenixVariant kVariants[] = {
    PhoenixVariant::Baseline, PhoenixVariant::Opt1,
    PhoenixVariant::Opt2, PhoenixVariant::Opt3,
    PhoenixVariant::AllOpts,
};

} // namespace

TEST(SortComposite, SortsKeysAscending)
{
    apu::ApuDevice dev;
    gvml::Gvml g(dev.core(0));
    Rng rng(3);
    auto &key = g.data(gvml::Vr(0));
    for (auto &v : key)
        v = static_cast<uint16_t>(rng.nextBelow(5000));
    bitonicSortU16(g, gvml::Vr(0), false, gvml::Vr(1),
                   SortScratch::standard());
    const auto &sorted = g.data(gvml::Vr(0));
    for (size_t i = 1; i < sorted.size(); ++i)
        ASSERT_LE(sorted[i - 1], sorted[i]) << i;
}

TEST(SortComposite, PayloadFollowsKeysLexicographically)
{
    apu::ApuDevice dev;
    gvml::Gvml g(dev.core(0));
    Rng rng(4);
    auto &key = g.data(gvml::Vr(0));
    auto &pay = g.data(gvml::Vr(1));
    std::vector<std::pair<uint16_t, uint16_t>> ref;
    for (size_t i = 0; i < key.size(); ++i) {
        key[i] = static_cast<uint16_t>(rng.nextBelow(100));
        pay[i] = static_cast<uint16_t>(i);
        ref.push_back({key[i], pay[i]});
    }
    bitonicSortU16(g, gvml::Vr(0), true, gvml::Vr(1),
                   SortScratch::standard());
    std::sort(ref.begin(), ref.end());
    for (size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(g.data(gvml::Vr(0))[i], ref[i].first) << i;
        ASSERT_EQ(g.data(gvml::Vr(1))[i], ref[i].second) << i;
    }
}

class PhoenixFunctional
    : public ::testing::TestWithParam<PhoenixVariant>
{
};

TEST_P(PhoenixFunctional, Histogram)
{
    auto in = genHistogramInput(250000, 21);
    auto expect = histogramSeq(in);
    apu::ApuDevice dev;
    PhoenixStats st;
    auto got = histogramApu(dev, &in, in.pixels.size(), GetParam(),
                            st);
    EXPECT_EQ(got, expect);
    EXPECT_GT(st.cycles, 0.0);
}

TEST_P(PhoenixFunctional, LinearRegression)
{
    auto in = genLinRegInput(150000, 22);
    auto expect = linRegSeq(in);
    apu::ApuDevice dev;
    PhoenixStats st;
    auto got =
        linRegApu(dev, &in, in.points.size(), GetParam(), st);
    EXPECT_EQ(got, expect);
    EXPECT_NEAR(got.b, expect.b, 1e-12);
}

TEST_P(PhoenixFunctional, MatrixMultiply)
{
    size_t m = 48, n = 96, k = 256;
    auto a = genMatrix(m, k, 23, 5);
    auto b = genMatrix(k, n, 24, 5);
    auto expect = matmulSeq(a, b, m, n, k);
    apu::ApuDevice dev;
    PhoenixStats st;
    auto got = matmulApu(dev, &a, &b, m, n, k, GetParam(), st);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        ASSERT_EQ(got[i], expect[i]) << i;
}

TEST_P(PhoenixFunctional, Kmeans)
{
    auto in = genKmeansInput(8192, 8, 16, 25);
    auto expect = kmeansSeq(in, 8);
    apu::ApuDevice dev;
    PhoenixStats st;
    auto got = kmeansApu(dev, &in, in.numPoints, in.dim, in.k, 8,
                         GetParam(), st);
    ASSERT_EQ(got.size(), expect.assignment.size());
    EXPECT_EQ(got, expect.assignment);
}

TEST_P(PhoenixFunctional, StringMatch)
{
    auto in = genStringMatchInput(120000, 26);
    auto expect = stringMatchSeq(in);
    apu::ApuDevice dev;
    PhoenixStats st;
    auto got = stringMatchApu(dev, &in, in.words.size() * 16.0,
                              GetParam(), st);
    EXPECT_EQ(got, expect);
}

TEST_P(PhoenixFunctional, WordCount)
{
    auto in = genWordCountInput(60000, 27);
    auto ids = tokenizeWords(in.words);
    apu::ApuDevice dev;
    PhoenixStats st;
    auto got = wordCountApu(dev, &ids, ids.size(), GetParam(), st);

    auto expect = wordCountSeq(in, got.size());
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ("w" + std::to_string(got[i].first),
                  expect[i].word)
            << i;
        EXPECT_EQ(got[i].second, expect[i].count) << i;
    }
}

TEST_P(PhoenixFunctional, ReverseIndex)
{
    auto in = genRevIndexInput(2048, 16, 5000, 28);
    auto expect = reverseIndexSeq(in);
    // Flatten doc links into the APU's stream representation.
    std::vector<uint16_t> stream;
    for (const auto &doc : in.docLinks)
        for (uint32_t link : doc)
            stream.push_back(static_cast<uint16_t>(link));
    apu::ApuDevice dev;
    PhoenixStats st;
    auto got = reverseIndexApu(dev, &stream, stream.size(), 16,
                               GetParam(), st);
    ASSERT_EQ(got.size(), expect.size());
    for (const auto &[link, docs] : expect) {
        auto it = got.find(link);
        ASSERT_TRUE(it != got.end()) << link;
        EXPECT_EQ(it->second, docs) << link;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, PhoenixFunctional, ::testing::ValuesIn(kVariants),
    [](const ::testing::TestParamInfo<PhoenixVariant> &info) {
        std::string name = phoenixVariantName(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// =================================================================
// Paper-scale timing
// =================================================================

TEST(PhoenixTiming, Table7Magnitudes)
{
    // Paper Table 7 measured latencies (ms). Shapes, not absolutes:
    // each app must land within 3x of the paper's measurement.
    const double paper_ms[] = {1644.8, 92.3, 421.3, 1.6,
                               182.0, 90.9, 3.2};
    apu::ApuDevice dev;
    size_t i = 0;
    for (const auto &spec : phoenixSpecs()) {
        auto st = runPhoenixApuTimed(dev, spec.app,
                                     PhoenixVariant::AllOpts);
        double ms = st.ms(dev.spec());
        EXPECT_GT(ms, paper_ms[i] / 3.0) << spec.name;
        EXPECT_LT(ms, paper_ms[i] * 3.0) << spec.name;
        ++i;
    }
}

TEST(PhoenixTiming, AllOptsBeatsBaseline)
{
    apu::ApuDevice dev;
    for (const auto &spec : phoenixSpecs()) {
        double base = runPhoenixApuTimed(dev, spec.app,
                                         PhoenixVariant::Baseline)
                          .cycles;
        double all = runPhoenixApuTimed(dev, spec.app,
                                        PhoenixVariant::AllOpts)
                         .cycles;
        EXPECT_LE(all, base * 1.001) << spec.name;
    }
}

TEST(PhoenixTiming, Fig13WinLossPattern)
{
    // Section 5.2.1: the optimized APU beats the 16-thread CPU on
    // linear regression, k-means, string match, word count; loses
    // on histogram, matrix multiply, reverse index.
    const bool wins[] = {false, true, false, true,
                         false, true, true};
    apu::ApuDevice dev;
    XeonTimingModel cpu;
    size_t i = 0;
    for (const auto &spec : phoenixSpecs()) {
        double apu_ms = runPhoenixApuTimed(dev, spec.app,
                                           PhoenixVariant::AllOpts)
                            .ms(dev.spec());
        bool apu_wins = cpu.phoenixMs(spec.app, true) > apu_ms;
        EXPECT_EQ(apu_wins, wins[i]) << spec.name << " apu_ms="
                                     << apu_ms;
        ++i;
    }
}

TEST(PhoenixTiming, Fig13AggregateSpeedups)
{
    // Paper: mean 41.8x / geomean 14.4x / peak 128.3x vs 1T CPU.
    // Our APU latencies differ from the paper's device within small
    // factors, so require the aggregates in generous bands.
    apu::ApuDevice dev;
    XeonTimingModel cpu;
    std::vector<double> s1, smt;
    for (const auto &spec : phoenixSpecs()) {
        double apu_ms = runPhoenixApuTimed(dev, spec.app,
                                           PhoenixVariant::AllOpts)
                            .ms(dev.spec());
        s1.push_back(cpu.phoenixMs(spec.app, false) / apu_ms);
        smt.push_back(cpu.phoenixMs(spec.app, true) / apu_ms);
    }
    EXPECT_GT(mean(s1), 20.0);
    EXPECT_LT(mean(s1), 85.0);
    EXPECT_GT(geomean(s1), 7.0);
    EXPECT_LT(geomean(s1), 30.0);
    EXPECT_GT(maxOf(s1), 60.0);
    EXPECT_GT(mean(smt), 6.0);
    EXPECT_LT(mean(smt), 25.0);
    EXPECT_GT(geomean(smt), 1.2);
    EXPECT_LT(geomean(smt), 6.0);
}

TEST(PhoenixTiming, UopCountsTable6Scale)
{
    // Table 6 reports APU uCode instruction counts; ours count
    // vector commands. Sanity: nonzero and ordered by work.
    apu::ApuDevice dev;
    auto hist = runPhoenixApuTimed(dev, PhoenixApp::Histogram,
                                   PhoenixVariant::AllOpts);
    auto wc = runPhoenixApuTimed(dev, PhoenixApp::WordCount,
                                 PhoenixVariant::AllOpts);
    EXPECT_GT(hist.uops, wc.uops);
    EXPECT_GT(wc.uops, 0.0);
}
