/**
 * @file
 * GSI float16 (1s/6e/9m) tests: encoding geometry, round-trip, range.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/gsifloat.hh"
#include "common/rng.hh"

using cisram::GsiFloat16;
using cisram::Rng;

TEST(GsiFloat16, GoldenEncodings)
{
    // 1.0: sign 0, exponent bias 31 -> 0b0_011111_000000000.
    EXPECT_EQ(GsiFloat16::fromFloat(1.0f).bits(), 0x3e00);
    EXPECT_EQ(GsiFloat16::fromFloat(-1.0f).bits(), 0xbe00);
    EXPECT_EQ(GsiFloat16::fromFloat(2.0f).bits(), 0x4000);
    EXPECT_EQ(GsiFloat16::fromFloat(0.5f).bits(), 0x3c00);
    EXPECT_EQ(GsiFloat16::fromFloat(0.0f).bits(), 0x0000);
    EXPECT_EQ(GsiFloat16::fromFloat(-0.0f).bits(), 0x8000);
    // 1.5: mantissa high bit set.
    EXPECT_EQ(GsiFloat16::fromFloat(1.5f).bits(), 0x3f00);
}

TEST(GsiFloat16, WiderDynamicRangeThanIeeeHalf)
{
    // 2^20 overflows IEEE half (max 65504) but fits in gf16
    // (max exponent 31, i.e. values up to ~2^32).
    GsiFloat16 big = GsiFloat16::fromFloat(1048576.0f);
    EXPECT_FALSE(big.isInf());
    EXPECT_FLOAT_EQ(big.toFloat(), 1048576.0f);

    // Near the top of the range: (2 - 2^-9) * 2^31.
    float max_gf = (2.0f - std::ldexp(1.0f, -9)) * std::ldexp(1.0f, 31);
    EXPECT_FALSE(GsiFloat16::fromFloat(max_gf).isInf());
    EXPECT_TRUE(GsiFloat16::fromFloat(max_gf * 2.0f).isInf());

    // Smallest normal 2^-30.
    float min_norm = std::ldexp(1.0f, -30);
    EXPECT_FLOAT_EQ(GsiFloat16::fromFloat(min_norm).toFloat(),
                    min_norm);
}

TEST(GsiFloat16, SpecialValues)
{
    EXPECT_TRUE(GsiFloat16::fromFloat(INFINITY).isInf());
    EXPECT_TRUE(GsiFloat16::fromFloat(-INFINITY).isInf());
    EXPECT_TRUE(GsiFloat16::fromFloat(NAN).isNan());
    EXPECT_TRUE(std::isnan(GsiFloat16::fromFloat(NAN).toFloat()));
}

TEST(GsiFloat16, ExactRoundTripForAllEncodings)
{
    for (uint32_t b = 0; b < 0x10000; ++b) {
        GsiFloat16 g = GsiFloat16::fromBits(static_cast<uint16_t>(b));
        if (g.isNan())
            continue;
        GsiFloat16 back = GsiFloat16::fromFloat(g.toFloat());
        EXPECT_EQ(back.bits(), g.bits()) << "bits=" << b;
    }
}

TEST(GsiFloat16, ConversionErrorBounded)
{
    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        float v = rng.nextFloat(-1.0e6f, 1.0e6f);
        float r = GsiFloat16::fromFloat(v).toFloat();
        // 9-bit mantissa: relative error bound 2^-10.
        EXPECT_LE(std::fabs(r - v),
                  std::fabs(v) * std::ldexp(1.0f, -10) + 1e-12f)
            << v;
    }
}

TEST(GsiFloat16, SubnormalsRepresentTinyValues)
{
    // One quarter of the smallest normal is a subnormal, not zero.
    float tiny = std::ldexp(1.0f, -32);
    GsiFloat16 g = GsiFloat16::fromFloat(tiny);
    EXPECT_FALSE(g.isZero());
    EXPECT_FLOAT_EQ(g.toFloat(), tiny);
}
