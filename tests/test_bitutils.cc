/**
 * @file
 * Unit and property tests for bit utilities and BitVector.
 */

#include <gtest/gtest.h>

#include "common/bitutils.hh"
#include "common/rng.hh"

using namespace cisram;

TEST(BitUtils, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(BitUtils, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4), 2u);
    EXPECT_EQ(log2Floor(32768), 15u);
    EXPECT_EQ(log2Floor(~0ull), 63u);
}

TEST(BitUtils, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
}

TEST(BitUtils, DivCeilAndRound)
{
    EXPECT_EQ(divCeil(0, 512), 0u);
    EXPECT_EQ(divCeil(1, 512), 1u);
    EXPECT_EQ(divCeil(512, 512), 1u);
    EXPECT_EQ(divCeil(513, 512), 2u);
    EXPECT_EQ(roundUpPow2(0, 512), 0u);
    EXPECT_EQ(roundUpPow2(1, 512), 512u);
    EXPECT_EQ(roundUpPow2(512, 512), 512u);
}

TEST(BitVector, SetGetFill)
{
    BitVector v(100);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_FALSE(v.any());
    v.set(0, true);
    v.set(63, true);
    v.set(64, true);
    v.set(99, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(63));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(99));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 4u);
    v.fill(true);
    EXPECT_TRUE(v.all());
    EXPECT_EQ(v.popcount(), 100u);
    v.fill(false);
    EXPECT_FALSE(v.any());
}

TEST(BitVector, TailBitsStayClear)
{
    BitVector v(70, true);
    EXPECT_EQ(v.popcount(), 70u);
    v.invert();
    EXPECT_EQ(v.popcount(), 0u);
    v.invert();
    EXPECT_EQ(v.popcount(), 70u);
}

TEST(BitVector, BooleanOps)
{
    BitVector a(130), b(130);
    for (size_t i = 0; i < 130; i += 2)
        a.set(i, true);
    for (size_t i = 0; i < 130; i += 3)
        b.set(i, true);
    BitVector both = a & b;
    BitVector either = a | b;
    BitVector diff = a ^ b;
    for (size_t i = 0; i < 130; ++i) {
        EXPECT_EQ(both.get(i), a.get(i) && b.get(i)) << i;
        EXPECT_EQ(either.get(i), a.get(i) || b.get(i)) << i;
        EXPECT_EQ(diff.get(i), a.get(i) != b.get(i)) << i;
    }
}

TEST(BitVector, FirstSet)
{
    BitVector v(200);
    EXPECT_EQ(v.firstSet(), 200u);
    v.set(150, true);
    EXPECT_EQ(v.firstSet(), 150u);
    v.set(7, true);
    EXPECT_EQ(v.firstSet(), 7u);
}

class BitVectorShift : public ::testing::TestWithParam<size_t>
{
};

TEST_P(BitVectorShift, ShiftMatchesReference)
{
    size_t k = GetParam();
    Rng rng(1234 + k);
    const size_t n = 300;
    BitVector v(n);
    std::vector<bool> ref(n, false);
    for (size_t i = 0; i < n; ++i) {
        bool bit = rng.next() & 1;
        v.set(i, bit);
        ref[i] = bit;
    }

    BitVector up = v.shiftedUp(k);
    BitVector down = v.shiftedDown(k);
    for (size_t i = 0; i < n; ++i) {
        bool exp_up = i >= k ? ref[i - k] : false;
        bool exp_down = i + k < n ? ref[i + k] : false;
        EXPECT_EQ(up.get(i), exp_up) << "up k=" << k << " i=" << i;
        EXPECT_EQ(down.get(i), exp_down) << "down k=" << k << " i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Shifts, BitVectorShift,
                         ::testing::Values(0, 1, 2, 63, 64, 65, 127,
                                           128, 200, 299, 300, 400));
