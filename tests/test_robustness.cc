/**
 * @file
 * Failure-injection tests: API misuse must die loudly with a
 * diagnostic, never corrupt state silently. (cisram_assert stays on
 * in release builds; these death tests pin that contract.)
 */

#include <gtest/gtest.h>

#include "apusim/apu.hh"
#include "baseline/phoenix_cpu.hh"
#include "core/layout.hh"
#include "core/planner.hh"
#include "gvml/gvml.hh"
#include "kernels/bmm.hh"
#include "kernels/rag.hh"
#include "model/sg_model.hh"

using namespace cisram;
using namespace cisram::apu;
using namespace cisram::gvml;

TEST(Robustness, VrIndexOutOfBounds)
{
    ApuDevice dev;
    EXPECT_DEATH((void)dev.core(0).vr()[24], "VR index OOB");
    EXPECT_DEATH((void)dev.core(0).l1().slot(48), "VMR index OOB");
    EXPECT_DEATH((void)dev.core(5), "core index OOB");
}

TEST(Robustness, MemoryBoundsEnforced)
{
    ApuDevice dev;
    uint8_t buf[8] = {};
    EXPECT_DEATH(dev.l4().read(dev.l4().capacity() - 4, buf, 8),
                 "DRAM read OOB");
    EXPECT_DEATH(dev.core(0).l2().write(dev.spec().l2Bytes - 4, buf,
                                        8),
                 "SRAM write OOB");
    EXPECT_DEATH(dev.core(0).dmaL4ToL2(0, 0,
                                       dev.spec().l2Bytes + 1),
                 "L2 overflow");
}

TEST(Robustness, PioAndLookupValidation)
{
    ApuDevice dev;
    auto &core = dev.core(0);
    // PIO beyond the VR length.
    EXPECT_DEATH(core.pioLoad(0, 32760, 1, 0, 2, 100),
                 "PIO load VR index OOB");
    // Lookup table that does not fit in L3.
    EXPECT_DEATH(core.lookup(0, 1, 0, dev.spec().l3Bytes),
                 "lookup table exceeds L3");
    // Lookup index outside the declared table.
    core.vr()[1][0] = 100;
    EXPECT_DEATH(core.lookup(0, 1, 0, 50), "lookup index OOB");
}

TEST(Robustness, GvmlSubgroupContracts)
{
    ApuDevice dev;
    Gvml g(dev.core(0));
    EXPECT_DEATH(g.addSubgrpS16(Vr(0), Vr(1), 100, 1),
                 "power-of-two");
    EXPECT_DEATH(g.addSubgrpS16(Vr(0), Vr(1), 64, 128), "invalid");
    EXPECT_DEATH(g.cpySubgrp16Grp(Vr(0), Vr(1), 64, 48),
                 "subgroup must divide group");
    EXPECT_DEATH(g.cpySubgrp16Grp(Vr(0), Vr(1), 64, 16, 4),
                 "subgroup index OOB");
}

TEST(Robustness, LayoutContracts)
{
    using namespace cisram::core;
    Layout l = Layout::rowMajor({4, 8});
    EXPECT_DEATH((void)l.offsetOf({1}), "index rank mismatch");
    EXPECT_DEATH((void)l.offsetOf({4, 0}), "index OOB");
    BroadcastSweep bad{0, 3}; // window does not divide the axis
    EXPECT_DEATH((void)maxLookupSpan(l, bad),
                 "window must divide");
}

TEST(Robustness, KernelShapeContracts)
{
    apu::ApuDevice dev;
    core::BmmShape bad_k{64, 64, 48 * 16}; // kWords = 48, not pow2
    kernels::BmmData data;
    EXPECT_DEATH(
        (void)kernels::runBmmApu(dev, bad_k,
                                 core::BmmVariant::AllOpts, &data),
        "power of two");

    dram::DramSystem hbm(dram::hbm2eConfig());
    baseline::RagCorpusSpec spec{"x", 0, 1000, 368};
    kernels::RagRetriever r(dev, hbm, spec, 5);
    std::vector<int16_t> short_query(10);
    EXPECT_DEATH(
        (void)r.retrieve(short_query,
                         kernels::RagVariant::AllOpts, 1),
        "query dim mismatch");
}

TEST(Robustness, PlannerAndModelContracts)
{
    model::CostTable t;
    model::SubgroupReductionModel sg;
    // Using the Eq. 1 model before calibration is a hard error.
    EXPECT_DEATH((void)sg.predict(64, 1), "before calibration");
    EXPECT_DEATH((void)core::planReduction(t, sg, 1),
                 "reduction length");
    // Fitting with too few samples is rejected.
    std::vector<model::SgSample> few = {{16, 1, 100.0}};
    EXPECT_DEATH(sg.fit(few), "8 samples");
}

TEST(Robustness, FunctionalRunsRequireOperands)
{
    apu::ApuDevice dev;
    EXPECT_DEATH((void)kernels::runBmmApu(
                     dev, {64, 64, 256},
                     core::BmmVariant::Baseline, nullptr),
                 "requires operands");
}

TEST(Robustness, MatmulShapeMismatch)
{
    auto a = baseline::genMatrix(4, 4, 1);
    auto b = baseline::genMatrix(4, 4, 2);
    EXPECT_DEATH((void)baseline::matmulSeq(a, b, 4, 5, 4),
                 "shape mismatch");
}

TEST(Robustness, RepeatAndTagScopesBalance)
{
    // Scopes close in order even under nesting; cycles stay sane.
    apu::ApuDevice dev;
    auto &stats = dev.core(0).stats();
    {
        apu::ScopedRepeat a(stats, 3);
        {
            apu::ScopedTag t(stats, "x");
            stats.charge(10);
        }
        stats.charge(1);
    }
    stats.charge(1);
    EXPECT_DOUBLE_EQ(stats.cycles(), 30 + 3 + 1);
    EXPECT_DOUBLE_EQ(stats.taggedCycles("x"), 30);
    EXPECT_DOUBLE_EQ(stats.repeat(), 1.0);
}
