/**
 * @file
 * The fault-injection subsystem and the recoverable-error contract
 * built on it: spec parsing, draw determinism, CRC-checked PCIe
 * retry, task timeouts, device-OOM, SECDED ECC statistics against
 * their analytical expectation, the circuit breaker, and the
 * bit-identity of an armed-but-zero-probability plan with an
 * unarmed run.
 */

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "apusim/apu.hh"
#include "common/status.hh"
#include "dramsim/dram_sim.hh"
#include "fault/fault.hh"
#include "gdl/gdl.hh"
#include "kernels/serving.hh"

using namespace cisram;
using namespace cisram::fault;

namespace {

/** Disarm on scope exit so no test leaks an armed plan. */
struct PlanGuard
{
    explicit PlanGuard(const std::string &spec)
    {
        auto p = FaultPlan::parse(spec);
        EXPECT_TRUE(p.ok()) << p.status().toString();
        armPlan(*p);
    }
    ~PlanGuard() { disarm(); }
};

} // namespace

// ---- Status / StatusOr --------------------------------------------------

TEST(Status, CodesAndMessages)
{
    Status ok = Status::okStatus();
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.code(), StatusCode::Ok);

    Status dl = Status::deadlineExceeded("waited 5 ms");
    EXPECT_FALSE(dl.ok());
    EXPECT_EQ(dl.code(), StatusCode::DeadlineExceeded);
    EXPECT_EQ(dl.toString(), "DEADLINE_EXCEEDED: waited 5 ms");

    EXPECT_STREQ(statusCodeName(StatusCode::DataCorruption),
                 "DATA_CORRUPTION");
    EXPECT_STREQ(statusCodeName(StatusCode::ResourceExhausted),
                 "RESOURCE_EXHAUSTED");
}

TEST(Status, StatusOrHoldsValueOrError)
{
    StatusOr<int> v(42);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 42);

    StatusOr<int> e(Status::unavailable("device gone"));
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.status().code(), StatusCode::Unavailable);
}

TEST(StatusDeathTest, ValueOfErrorDies)
{
    StatusOr<int> e(Status::deviceFault("boom"));
    EXPECT_DEATH(e.value(), "boom");
}

// ---- Spec parsing -------------------------------------------------------

TEST(FaultSpec, ParsesClausesAndSeed)
{
    auto p = FaultPlan::parse(
        "pcie_corrupt:p=1e-3;task_hang:core=2,nth=5;seed:42");
    ASSERT_TRUE(p.ok()) << p.status().toString();
    EXPECT_TRUE(p->any());
    EXPECT_EQ(p->seed(), 42u);

    const Clause &pc = p->clause(Kind::PcieCorrupt);
    EXPECT_TRUE(pc.enabled);
    EXPECT_DOUBLE_EQ(pc.p, 1e-3);

    const Clause &th = p->clause(Kind::TaskHang);
    EXPECT_TRUE(th.enabled);
    EXPECT_EQ(th.core, 2);
    EXPECT_EQ(th.nth, 5);

    EXPECT_FALSE(p->clause(Kind::DramFlip).enabled);
    EXPECT_FALSE(p->clause(Kind::DevOom).enabled);
}

TEST(FaultSpec, ToStringRoundTrips)
{
    auto p = FaultPlan::parse(
        "dram_flip:p=1e-6;dram_flip2:p=1e-9;dev_oom:nth=3;seed:7");
    ASSERT_TRUE(p.ok());
    auto q = FaultPlan::parse(p->toString());
    ASSERT_TRUE(q.ok()) << q.status().toString();
    EXPECT_EQ(p->toString(), q->toString());
    EXPECT_EQ(q->seed(), 7u);
    EXPECT_DOUBLE_EQ(q->clause(Kind::DramFlip).p, 1e-6);
    EXPECT_EQ(q->clause(Kind::DevOom).nth, 3);
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    // A typo'd injection campaign must never silently run clean.
    const char *bad[] = {
        "frobnicate:p=1",      // unknown kind
        "pcie_corrupt:q=1",    // unknown key
        "pcie_corrupt:p=nan1", // malformed number
        "pcie_corrupt:p=1.5",  // probability out of range
        "pcie_corrupt:p=-0.1", // probability out of range
        "task_hang:nth=0",     // nth is 1-based
        "seed:banana",         // malformed seed
    };
    for (const char *spec : bad) {
        auto p = FaultPlan::parse(spec);
        EXPECT_FALSE(p.ok()) << "accepted: " << spec;
        EXPECT_EQ(p.status().code(), StatusCode::InvalidArgument)
            << spec;
    }
}

TEST(FaultSpec, StickyKeyParsesAndRoundTrips)
{
    auto p = FaultPlan::parse(
        "task_hang:core=1,nth=3,sticky=1;pcie_corrupt:p=1e-3;"
        "seed:9");
    ASSERT_TRUE(p.ok()) << p.status().toString();
    EXPECT_TRUE(p->clause(Kind::TaskHang).sticky);
    EXPECT_FALSE(p->clause(Kind::PcieCorrupt).sticky);
    EXPECT_NE(p->toString().find("sticky=1"), std::string::npos);

    auto q = FaultPlan::parse(p->toString());
    ASSERT_TRUE(q.ok()) << q.status().toString();
    EXPECT_EQ(p->toString(), q->toString());
    EXPECT_TRUE(q->clause(Kind::TaskHang).sticky);

    // sticky=0 is the explicit spelling of the default.
    auto r = FaultPlan::parse("task_hang:p=0.5,sticky=0");
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->clause(Kind::TaskHang).sticky);
}

TEST(FaultSpec, DuplicateClausesAreRejectedNamingTheToken)
{
    // Two clauses for one kind would silently merge into a campaign
    // nobody wrote down; the parser must refuse and say which token
    // repeated.
    struct Case
    {
        const char *spec;
        const char *token;
    } cases[] = {
        {"task_hang:p=0.1;task_hang:nth=2", "task_hang"},
        {"pcie_corrupt:p=1e-3;dram_flip:p=1e-6;pcie_corrupt:p=1e-2",
         "pcie_corrupt"},
        {"seed:1;task_hang:p=0.1;seed:2", "seed"},
    };
    for (const auto &c : cases) {
        auto p = FaultPlan::parse(c.spec);
        ASSERT_FALSE(p.ok()) << "accepted: " << c.spec;
        EXPECT_EQ(p.status().code(), StatusCode::InvalidArgument)
            << c.spec;
        EXPECT_NE(p.status().message().find(
                      std::string("duplicate clause '") + c.token),
                  std::string::npos)
            << p.status().toString();
    }
}

TEST(FaultSpec, SeedWithoutAValueIsRejectedNamingSeed)
{
    for (const char *spec : {"seed", "seed:", "task_hang:p=1;seed"}) {
        auto p = FaultPlan::parse(spec);
        ASSERT_FALSE(p.ok()) << "accepted: " << spec;
        EXPECT_EQ(p.status().code(), StatusCode::InvalidArgument)
            << spec;
        EXPECT_NE(p.status().message().find("seed"),
                  std::string::npos)
            << p.status().toString();
    }
}

TEST(FaultSpec, EmptySpecArmsNothing)
{
    auto p = FaultPlan::parse("");
    ASSERT_TRUE(p.ok());
    EXPECT_FALSE(p->any());
}

// ---- Draw determinism ---------------------------------------------------

TEST(FaultDraws, PureFunctionOfCoordinates)
{
    auto a = FaultPlan::parse("pcie_corrupt:p=0.3;dram_flip:p=0.2;"
                              "task_hang:p=0.1;seed:99");
    auto b = FaultPlan::parse("pcie_corrupt:p=0.3;dram_flip:p=0.2;"
                              "task_hang:p=0.1;seed:99");
    ASSERT_TRUE(a.ok() && b.ok());
    for (uint64_t i = 0; i < 2000; ++i) {
        EXPECT_EQ(a->drawPcieCorrupt(3, i, 0),
                  b->drawPcieCorrupt(3, i, 0));
        EXPECT_EQ(a->drawDramFlips(5, i), b->drawDramFlips(5, i));
        EXPECT_EQ(a->drawTaskHang(1, i), b->drawTaskHang(1, i));
        // Repeated evaluation never changes the outcome.
        EXPECT_EQ(a->drawPcieCorrupt(3, i, 0),
                  a->drawPcieCorrupt(3, i, 0));
    }
}

TEST(FaultDraws, SeedChangesTheSequence)
{
    auto a = FaultPlan::parse("dram_flip:p=0.5;seed:1");
    auto b = FaultPlan::parse("dram_flip:p=0.5;seed:2");
    ASSERT_TRUE(a.ok() && b.ok());
    unsigned differing = 0;
    for (uint64_t i = 0; i < 1000; ++i)
        if (a->drawDramFlips(0, i) != b->drawDramFlips(0, i))
            ++differing;
    EXPECT_GT(differing, 100u);
}

TEST(FaultDraws, RetriesEventuallyClear)
{
    // The attempt index is part of the hash, so a p < 1 corruption
    // cannot pin a transfer forever.
    auto p = FaultPlan::parse("pcie_corrupt:p=0.9;seed:5");
    ASSERT_TRUE(p.ok());
    for (uint64_t xfer = 0; xfer < 50; ++xfer) {
        bool cleared = false;
        for (uint64_t attempt = 0; attempt < 64 && !cleared;
             ++attempt)
            cleared = !p->drawPcieCorrupt(0, xfer, attempt);
        EXPECT_TRUE(cleared) << "transfer " << xfer;
    }
}

// ---- CRC-32 -------------------------------------------------------------

TEST(Crc32, KnownAnswerAndBitSensitivity)
{
    // IEEE 802.3 check value for the ASCII digits "123456789".
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);

    uint8_t buf[64] = {};
    uint32_t clean = crc32(buf, sizeof(buf));
    for (int bit = 0; bit < 8; ++bit) {
        buf[17] = static_cast<uint8_t>(1u << bit);
        EXPECT_NE(crc32(buf, sizeof(buf)), clean);
    }
}

// ---- GDL: PCIe retry ----------------------------------------------------

TEST(GdlFault, NthTransferRetriesOnceAndDataSurvives)
{
    PlanGuard guard("pcie_corrupt:nth=1");
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);

    std::vector<uint32_t> data(256);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint32_t>(i * 2654435761u);

    gdl::MemHandle h = ctx.memAllocAligned(data.size() * 4);
    // Transfer #1: corrupted in flight once, CRC catches it, resend
    // is clean.
    Status st =
        ctx.tryMemCpyToDev(h, data.data(), data.size() * 4);
    EXPECT_TRUE(st.ok()) << st.toString();
    EXPECT_EQ(ctx.stats().pcieRetries, 1u);
    EXPECT_EQ(ctx.stats().pcieErrors, 0u);

    std::vector<uint32_t> back(data.size());
    st = ctx.tryMemCpyFromDev(back.data(), h, back.size() * 4);
    EXPECT_TRUE(st.ok()) << st.toString();
    EXPECT_EQ(back, data);
    EXPECT_EQ(ctx.stats().pcieRetries, 1u);
    ctx.memFree(h);
}

TEST(GdlFault, PersistentCorruptionExhaustsRetries)
{
    PlanGuard guard("pcie_corrupt:p=1");
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);

    std::vector<uint8_t> data(512, 0xa5);
    gdl::MemHandle h = ctx.memAllocAligned(data.size());
    Status st = ctx.tryMemCpyToDev(h, data.data(), data.size());
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::DataCorruption);
    EXPECT_EQ(ctx.stats().pcieErrors, 1u);
    EXPECT_EQ(ctx.stats().pcieRetries, ctx.pcieMaxAttempts);

    // No clean attempt ever happened: device memory stays untouched.
    std::vector<uint8_t> dev_bytes(data.size(), 0xff);
    dev.l4().read(h.addr, dev_bytes.data(), dev_bytes.size());
    for (uint8_t b : dev_bytes)
        ASSERT_EQ(b, 0u);
    ctx.memFree(h);
}

TEST(GdlFault, ArmedZeroProbabilityIsTimingIdentical)
{
    std::vector<uint16_t> data(4096, 7);

    auto run = [&](bool armed) {
        PlanGuard *guard = nullptr;
        if (armed)
            guard = new PlanGuard("pcie_corrupt:p=0");
        apu::ApuDevice dev;
        gdl::GdlContext ctx(dev);
        gdl::MemHandle h = ctx.memAllocAligned(data.size() * 2);
        ctx.memCpyToDev(h, data.data(), data.size() * 2);
        std::vector<uint16_t> back(data.size());
        ctx.memCpyFromDev(back.data(), h, back.size() * 2);
        EXPECT_EQ(back, data);
        double seconds = ctx.stats().pcieSeconds;
        ctx.memFree(h);
        delete guard;
        return seconds;
    };

    double unarmed = run(false);
    double armed_p0 = run(true);
    EXPECT_EQ(unarmed, armed_p0); // bit-identical, not "close"
}

// ---- GDL: task timeout --------------------------------------------------

TEST(GdlFault, InjectedHangMissesDeadlineThenRecovers)
{
    PlanGuard guard("task_hang:core=0,nth=1");
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);

    bool ran = false;
    auto task = [&](apu::ApuCore &) {
        ran = true;
        return 0;
    };

    // Invocation 1 hangs: the host waits out the deadline and the
    // task body never executes.
    double before = ctx.stats().invokeSeconds;
    Status st = ctx.runTaskTimeout(0.01, task);
    EXPECT_EQ(st.code(), StatusCode::DeadlineExceeded);
    EXPECT_FALSE(ran);
    EXPECT_EQ(ctx.stats().tasksTimedOut, 1u);
    EXPECT_GE(ctx.stats().invokeSeconds - before, 0.01);

    // The retry (invocation 2) goes through.
    st = ctx.runTaskTimeout(0.01, task);
    EXPECT_TRUE(st.ok()) << st.toString();
    EXPECT_TRUE(ran);
    EXPECT_EQ(ctx.stats().tasksTimedOut, 1u);
}

TEST(GdlFault, SlowTaskExceedsDeadlineWithoutInjection)
{
    // No plan armed: a genuinely slow task still trips the deadline.
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);
    Status st = ctx.runTaskTimeout(1e-5, [](apu::ApuCore &core) {
        core.chargeRaw(1000000); // 2 ms at 500 MHz
        return 0;
    });
    EXPECT_EQ(st.code(), StatusCode::DeadlineExceeded);
    EXPECT_EQ(ctx.stats().tasksTimedOut, 1u);
}

TEST(GdlFault, NonzeroTaskStatusIsCountedAndReturned)
{
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);

    int rc = ctx.runTask([](apu::ApuCore &) { return 7; });
    EXPECT_EQ(rc, 7);
    EXPECT_EQ(ctx.stats().tasksFailed, 1u);

    Status st =
        ctx.runTaskTimeout(1.0, [](apu::ApuCore &) { return 3; });
    EXPECT_EQ(st.code(), StatusCode::DeviceFault);
    EXPECT_EQ(ctx.stats().tasksFailed, 2u);
}

// ---- GDL: device OOM ----------------------------------------------------

TEST(GdlFault, InjectedOomFailsOnceThenRecovers)
{
    PlanGuard guard("dev_oom:nth=1");
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);

    auto first = ctx.tryMemAllocAligned(1024);
    ASSERT_FALSE(first.ok());
    EXPECT_EQ(first.status().code(), StatusCode::ResourceExhausted);
    EXPECT_EQ(ctx.stats().allocFailures, 1u);

    auto second = ctx.tryMemAllocAligned(1024);
    ASSERT_TRUE(second.ok()) << second.status().toString();
    ctx.memFree(*second);
}

TEST(GdlFault, RealExhaustionSurfacesAsResourceExhausted)
{
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);
    auto huge = ctx.tryMemAllocAligned(dev.l4().capacity() + 4096);
    ASSERT_FALSE(huge.ok());
    EXPECT_EQ(huge.status().code(), StatusCode::ResourceExhausted);
    EXPECT_EQ(ctx.outstandingAllocs(), 0u);
}

TEST(GdlFaultDeathTest, UncheckedAllocDiesOnInjectedOom)
{
    PlanGuard guard("dev_oom:nth=1");
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);
    EXPECT_DEATH(ctx.memAllocAligned(1024), "injected device OOM");
}

// ---- DRAM ECC -----------------------------------------------------------

TEST(DramEcc, SingleFlipsAllCorrectedAtAnalyticalRate)
{
    const double p = 2e-3;
    PlanGuard guard("dram_flip:p=2e-3;seed:7");
    dram::DramSystem sys(dram::hbm2eConfig());

    sys.streamReadSeconds(0, 32ull << 20);
    const auto &ecc = sys.eccStats();

    // 32 MB / 8-byte codewords.
    EXPECT_EQ(ecc.wordsChecked, (32ull << 20) / 8);
    double expected = static_cast<double>(ecc.wordsChecked) * p;
    EXPECT_GT(ecc.singleCorrected, 0u);
    EXPECT_NEAR(static_cast<double>(ecc.singleCorrected), expected,
                expected * 0.10);

    // Corrected means corrected: nothing uncorrectable surfaced.
    EXPECT_EQ(ecc.doubleDetected, 0u);
    EXPECT_TRUE(sys.takeFaultStatus().ok());
}

TEST(DramEcc, DoubleFlipsAllDetectedAndSurfaceAsStatus)
{
    const double p2 = 1e-4;
    PlanGuard guard("dram_flip2:p=1e-4;seed:11");
    dram::DramSystem sys(dram::hbm2eConfig());

    sys.streamReadSeconds(0, 32ull << 20);
    const auto &ecc = sys.eccStats();

    double expected = static_cast<double>(ecc.wordsChecked) * p2;
    EXPECT_GT(ecc.doubleDetected, 0u);
    EXPECT_NEAR(static_cast<double>(ecc.doubleDetected), expected,
                expected * 0.35);
    EXPECT_EQ(ecc.singleCorrected, 0u);

    // The sticky status reports the first uncorrectable error, then
    // clears on take.
    Status st = sys.takeFaultStatus();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::DeviceFault);
    EXPECT_NE(st.message().find("uncorrectable"), std::string::npos);
    EXPECT_TRUE(sys.takeFaultStatus().ok());
}

TEST(DramEcc, WritesAreNotChecked)
{
    PlanGuard guard("dram_flip:p=0.5;seed:3");
    dram::DramSystem sys(dram::hbm2eConfig());
    sys.streamWriteSeconds(0, 4ull << 20);
    EXPECT_EQ(sys.eccStats().wordsChecked, 0u);
    EXPECT_EQ(sys.eccStats().singleCorrected, 0u);
}

TEST(DramEcc, ArmedZeroProbabilityKeepsTimingBitIdentical)
{
    auto run = [](bool armed) {
        PlanGuard *guard = nullptr;
        if (armed)
            guard = new PlanGuard("dram_flip:p=0");
        dram::DramSystem sys(dram::hbm2eConfig());
        double s = sys.streamReadSeconds(0, 8ull << 20);
        delete guard;
        return s;
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(DramEcc, ResetStatsClearsTheLedger)
{
    PlanGuard guard("dram_flip:p=0.01;seed:13");
    dram::DramSystem sys(dram::hbm2eConfig());
    sys.streamReadSeconds(0, 1ull << 20);
    EXPECT_GT(sys.eccStats().wordsChecked, 0u);
    sys.resetStats();
    EXPECT_EQ(sys.eccStats().wordsChecked, 0u);
    EXPECT_EQ(sys.eccStats().singleCorrected, 0u);
}

// ---- Circuit breaker ----------------------------------------------------

TEST(CircuitBreaker, TripsAfterConsecutiveFailures)
{
    kernels::CircuitBreaker br(/*failure_threshold=*/2,
                               /*cooldown_queries=*/2);
    EXPECT_EQ(br.state(), kernels::BreakerState::Closed);
    EXPECT_TRUE(br.allowRequest());
    br.recordFailure();
    EXPECT_EQ(br.state(), kernels::BreakerState::Closed);

    // A success in between resets the consecutive count.
    br.recordSuccess();
    br.recordFailure();
    EXPECT_EQ(br.state(), kernels::BreakerState::Closed);
    br.recordFailure();
    EXPECT_EQ(br.state(), kernels::BreakerState::Open);
    EXPECT_EQ(br.trips(), 1u);
}

TEST(CircuitBreaker, CooldownThenProbeThenClose)
{
    kernels::CircuitBreaker br(1, 2);
    br.recordFailure(); // threshold 1: trips immediately
    ASSERT_EQ(br.state(), kernels::BreakerState::Open);

    EXPECT_FALSE(br.allowRequest()); // cooldown query 1
    EXPECT_FALSE(br.allowRequest()); // cooldown query 2
    EXPECT_TRUE(br.allowRequest());  // cooldown done: the probe
    EXPECT_EQ(br.state(), kernels::BreakerState::HalfOpen);
    EXPECT_FALSE(br.allowRequest()); // one probe at a time

    br.recordSuccess();
    EXPECT_EQ(br.state(), kernels::BreakerState::Closed);
    EXPECT_TRUE(br.allowRequest());
}

TEST(CircuitBreaker, FailedProbeReopens)
{
    kernels::CircuitBreaker br(1, 1);
    br.recordFailure();
    ASSERT_EQ(br.state(), kernels::BreakerState::Open);
    EXPECT_FALSE(br.allowRequest()); // the one cooldown query
    EXPECT_TRUE(br.allowRequest());  // cooldown done: the probe
    br.recordFailure();              // probe fails
    EXPECT_EQ(br.state(), kernels::BreakerState::Open);
    EXPECT_EQ(br.trips(), 2u);

    // The cooldown restarts in full after a failed probe.
    EXPECT_FALSE(br.allowRequest());
    EXPECT_TRUE(br.allowRequest());
}

TEST(CircuitBreaker, StateNames)
{
    EXPECT_STREQ(breakerStateName(kernels::BreakerState::Closed),
                 "closed");
    EXPECT_STREQ(breakerStateName(kernels::BreakerState::Open),
                 "open");
    EXPECT_STREQ(breakerStateName(kernels::BreakerState::HalfOpen),
                 "half-open");
}

// ---- Arming -------------------------------------------------------------

TEST(FaultArming, ArmDisarmGatesThePlan)
{
    EXPECT_EQ(fault::plan(), nullptr);
    {
        PlanGuard guard("task_hang:p=0.5");
        ASSERT_NE(fault::plan(), nullptr);
        EXPECT_TRUE(
            fault::plan()->clause(Kind::TaskHang).enabled);
    }
    EXPECT_EQ(fault::plan(), nullptr);
}

// ---- device= scoping and the fabric fault kinds -------------------------

TEST(FaultSpec, DeviceScopeParsesAndRoundTrips)
{
    auto p = FaultPlan::parse(
        "link_drop:device=2,p=0.5;"
        "link_corrupt:p=0.25,device=0,sticky=1;"
        "pcie_corrupt:p=1e-3;seed:9");
    ASSERT_TRUE(p.ok()) << p.status().toString();

    const Clause &drop = p->clause(Kind::LinkDrop);
    EXPECT_TRUE(drop.enabled);
    EXPECT_EQ(drop.device, 2);
    EXPECT_EQ(drop.p, 0.5);

    const Clause &corrupt = p->clause(Kind::LinkCorrupt);
    EXPECT_TRUE(corrupt.enabled);
    EXPECT_EQ(corrupt.device, 0);
    EXPECT_TRUE(corrupt.sticky);

    // A clause without a device key scopes to every device.
    EXPECT_EQ(p->clause(Kind::PcieCorrupt).device, -1);

    // toString emits the scope and the result re-parses to the
    // same plan (the grammar is its own serialization).
    auto q = FaultPlan::parse(p->toString());
    ASSERT_TRUE(q.ok()) << "round-trip rejected: " << p->toString();
    EXPECT_EQ(q->toString(), p->toString());
    EXPECT_EQ(q->clause(Kind::LinkDrop).device, 2);
    EXPECT_EQ(q->clause(Kind::LinkCorrupt).device, 0);
}

TEST(FaultSpec, DeviceOutOfRangeIsRejectedNamingTheValue)
{
    // The parse-time bound is kMaxFaultDevices; the fleet router
    // re-validates against the actual device count later. Either
    // way a bad scope must be loud, not a clause that never fires.
    struct Case
    {
        const char *spec;
        const char *value;
    } cases[] = {
        {"link_drop:device=64,p=1", "64"},
        {"link_drop:device=-1,p=1", "-1"},
        {"pcie_corrupt:device=1.5,p=1", "1.5"},
        {"dram_flip:p=1e-6,device=1000", "1000"},
    };
    for (const auto &c : cases) {
        auto p = FaultPlan::parse(c.spec);
        ASSERT_FALSE(p.ok()) << "accepted: " << c.spec;
        EXPECT_EQ(p.status().code(), StatusCode::InvalidArgument)
            << c.spec;
        EXPECT_NE(p.status().message().find(
                      std::string("device '") + c.value + "'"),
                  std::string::npos)
            << p.status().toString();
    }
}

TEST(FaultSpec, DuplicateDeviceKeyIsRejectedNamingTheToken)
{
    auto p = FaultPlan::parse("link_drop:device=1,device=2,p=1");
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::InvalidArgument);
    EXPECT_NE(p.status().message().find("duplicate key 'device=2'"),
              std::string::npos)
        << p.status().toString();
}

TEST(FaultDraws, LinkDrawsHonorDeviceScope)
{
    auto p = FaultPlan::parse("link_drop:device=1,p=1;seed:3");
    ASSERT_TRUE(p.ok());

    // Certain on the scoped device, never elsewhere.
    for (uint64_t msg = 0; msg < 8; ++msg) {
        EXPECT_TRUE(p->drawLinkDrop(1, msg, 0));
        EXPECT_FALSE(p->drawLinkDrop(0, msg, 0));
        EXPECT_FALSE(p->drawLinkDrop(2, msg, 0));
    }
    EXPECT_TRUE(p->appliesTo(Kind::LinkDrop, 1));
    EXPECT_FALSE(p->appliesTo(Kind::LinkDrop, 0));

    // An unscoped clause applies to every device.
    auto q = FaultPlan::parse("link_corrupt:p=1;seed:3");
    ASSERT_TRUE(q.ok());
    for (unsigned d = 0; d < 4; ++d) {
        EXPECT_TRUE(q->appliesTo(Kind::LinkCorrupt, d));
        EXPECT_TRUE(q->drawLinkCorrupt(d, 0, 0));
    }
}

TEST(FaultDraws, LinkDrawsAreDeterministicAndSeedSensitive)
{
    auto a = FaultPlan::parse("link_drop:p=0.5;seed:11");
    auto b = FaultPlan::parse("link_drop:p=0.5;seed:11");
    auto c = FaultPlan::parse("link_drop:p=0.5;seed:12");
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());

    unsigned agree = 0, differ = 0;
    for (uint64_t msg = 0; msg < 256; ++msg) {
        bool da = a->drawLinkDrop(0, msg, 0);
        EXPECT_EQ(da, b->drawLinkDrop(0, msg, 0));
        if (da != c->drawLinkDrop(0, msg, 0))
            ++differ;
        else
            ++agree;
    }
    // Different seeds must give a genuinely different sequence.
    EXPECT_GT(differ, 0u);
    EXPECT_GT(agree, 0u);
}

TEST(FaultDraws, LinkNthFiresOnExactlyThatMessage)
{
    auto p = FaultPlan::parse("link_corrupt:nth=3;seed:1");
    ASSERT_TRUE(p.ok());
    for (uint64_t msg = 0; msg < 8; ++msg)
        EXPECT_EQ(p->drawLinkCorrupt(0, msg, 0), msg + 1 == 3)
            << "msg " << msg;
    // Retries of the nth message are clean: the fault hit the wire
    // once, not the message identity.
    EXPECT_FALSE(p->drawLinkCorrupt(0, 2, 1));
}
