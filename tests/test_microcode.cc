/**
 * @file
 * Microcode programs validated against word-level semantics: the
 * bit-serial adder, composed XOR, and GVL-based all-bits test.
 */

#include <gtest/gtest.h>

#include "apusim/vr_file.hh"
#include "common/rng.hh"
#include "gvml/microcode.hh"

using namespace cisram;
using namespace cisram::apu;
using namespace cisram::gvml;

namespace {

struct Fixture
{
    Fixture() : vrs(8, 512, 4), bp(vrs) {}

    void
    randomize(unsigned vr, uint64_t seed)
    {
        Rng rng(seed);
        for (auto &v : vrs[vr])
            v = rng.nextU16();
    }

    VrFile vrs;
    BitProcArray bp;
};

} // namespace

TEST(Microcode, BitSerialAddMatchesWordAdd)
{
    Fixture f;
    f.randomize(0, 21);
    f.randomize(1, 22);
    // Edge cases: carries across every bit.
    f.vrs[0][0] = 0xffff;
    f.vrs[1][0] = 0x0001;
    f.vrs[0][1] = 0x7fff;
    f.vrs[1][1] = 0x7fff;
    f.vrs[0][2] = 0;
    f.vrs[1][2] = 0;

    uint64_t uops = mcAddU16(f.bp, 2, 0, 1, 5, 6, 7);
    EXPECT_GT(uops, 0u);
    for (size_t i = 0; i < f.vrs.length(); ++i)
        ASSERT_EQ(f.vrs[2][i],
                  static_cast<uint16_t>(f.vrs[0][i] + f.vrs[1][i]))
            << i;
}

TEST(Microcode, BitSerialAddUopBudget)
{
    // The ripple-carry adder should stay within a small multiple of
    // the 16-bit width: 16 sum steps + 15 carry hops + setup.
    Fixture f;
    f.randomize(0, 23);
    f.randomize(1, 24);
    uint64_t uops = mcAddU16(f.bp, 2, 0, 1, 5, 6, 7);
    EXPECT_LE(uops, 16 * 8u);
    EXPECT_GE(uops, 16 * 3u);
}

TEST(Microcode, ComposedXorMatchesWordXor)
{
    Fixture f;
    f.randomize(0, 25);
    f.randomize(1, 26);
    mcXor16(f.bp, 2, 0, 1, 7);
    for (size_t i = 0; i < f.vrs.length(); ++i)
        ASSERT_EQ(f.vrs[2][i], f.vrs[0][i] ^ f.vrs[1][i]) << i;
}

TEST(Microcode, BitSerialSubMatchesWordSub)
{
    Fixture f;
    f.randomize(0, 31);
    f.randomize(1, 32);
    f.vrs[0][0] = 0;
    f.vrs[1][0] = 1; // borrow through every bit
    f.vrs[0][1] = 0x8000;
    f.vrs[1][1] = 0x8000;
    mcSubU16(f.bp, 2, 0, 1, 4, 5, 6, 7);
    for (size_t i = 0; i < f.vrs.length(); ++i)
        ASSERT_EQ(f.vrs[2][i],
                  static_cast<uint16_t>(f.vrs[0][i] - f.vrs[1][i]))
            << i;
}

TEST(Microcode, ShiftAddMultiplierMatchesWordMul)
{
    Fixture f;
    f.randomize(0, 33);
    f.randomize(1, 34);
    f.vrs[0][0] = 0xffff;
    f.vrs[1][0] = 0xffff;
    f.vrs[0][1] = 0;
    f.vrs[1][1] = 12345;
    f.vrs[0][2] = 257;
    f.vrs[1][2] = 255;
    uint64_t uops = mcMulU16(f.bp, 2, 0, 1, 3, 4, 5, 6, 7);
    for (size_t i = 0; i < f.vrs.length(); ++i)
        ASSERT_EQ(f.vrs[2][i],
                  static_cast<uint16_t>(
                      static_cast<uint32_t>(f.vrs[0][i]) *
                      f.vrs[1][i]))
            << i;
    // The multiplier should cost an order of magnitude more than
    // the adder, mirroring the Table 5 mul/add ratio.
    Fixture g;
    uint64_t add_uops = mcAddU16(g.bp, 2, 0, 1, 5, 6, 7);
    EXPECT_GT(uops, 10 * add_uops);
}

TEST(Microcode, AllBitsSetViaGvl)
{
    Fixture f;
    f.randomize(0, 27);
    f.vrs[0][7] = 0xffff;
    f.vrs[0][8] = 0xfffe;
    mcAllBitsSet(f.bp, 1, 0);
    for (size_t i = 0; i < f.vrs.length(); ++i) {
        uint16_t expect = f.vrs[0][i] == 0xffff ? 0xffff : 0x0000;
        ASSERT_EQ(f.vrs[1][i], expect) << i;
    }
}
