/**
 * @file
 * Table 7 validation: the analytical framework's predicted Phoenix
 * latencies track the simulator's measurements within a few percent,
 * as in the paper (average accuracy 97.3%, max error 6.2%).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "kernels/phoenix_model.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

struct Validation
{
    std::vector<double> errors; // relative, signed
};

Validation
validate()
{
    apu::ApuDevice dev;
    model::SubgroupReductionModel sg;
    sg.calibrate(dev.core(0));
    model::LatencyEstimator est;
    est.setSgModel(sg);

    Validation out;
    for (const auto &spec : phoenixSpecs()) {
        double meas = runPhoenixApuTimed(dev, spec.app,
                                         PhoenixVariant::AllOpts)
                          .cycles;
        double pred = predictPhoenixCycles(est, spec.app);
        out.errors.push_back((pred - meas) / meas);
    }
    return out;
}

} // namespace

TEST(Table7Validation, PerAppErrorWithinTenPercent)
{
    auto v = validate();
    size_t i = 0;
    for (const auto &spec : phoenixSpecs()) {
        EXPECT_LT(std::fabs(v.errors[i]), 0.10) << spec.name;
        ++i;
    }
}

TEST(Table7Validation, AverageAccuracyAboveNinetyFive)
{
    auto v = validate();
    double sum = 0;
    for (double e : v.errors)
        sum += std::fabs(e);
    double avg_err = sum / static_cast<double>(v.errors.size());
    // Paper: 97.3% average accuracy.
    EXPECT_LT(avg_err, 0.05);
}

TEST(Table7Validation, PredictionRequiresCalibration)
{
    model::LatencyEstimator est; // no Eq. 1 model installed
    EXPECT_DEATH((void)predictPhoenixCycles(
                     est, PhoenixApp::MatrixMultiply),
                 "calibrated");
}
