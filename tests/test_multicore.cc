/**
 * @file
 * Multi-core execution tests: a functionally sharded kernel across
 * all four cores produces the sequential result, balances load, and
 * matches the tiles/numCores accounting used by the timed kernels —
 * and does all of that identically whether the cores run serially
 * (CISRAM_SIM_THREADS=1) or on worker threads (=4): MultiCoreResult,
 * metrics registry snapshots, and exported traces must be
 * bit-identical across thread counts.
 */

#include <array>
#include <stdexcept>

#include <gtest/gtest.h>

#include "apusim/multicore.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"
#include "gvml/gvml.hh"

using namespace cisram;
using namespace cisram::apu;
using namespace cisram::gvml;

namespace {

/**
 * A miniature sharded histogram over u16 values (16 bins). Each core
 * accumulates into its own partial bins (workers may run
 * concurrently); partials merge in core order afterwards.
 */
std::array<uint32_t, 16>
shardedHistogram(ApuDevice &dev, const std::vector<uint16_t> &data,
                 MultiCoreResult &mc)
{
    size_t l = dev.spec().vrLength;
    size_t tiles = (data.size() + l - 1) / l;
    std::array<std::array<uint32_t, 16>, 4> partial{};

    mc = runOnAllCores(dev, [&](ApuCore &core, unsigned idx,
                                unsigned n) {
        Gvml g(core);
        Shard sh = shardOf(tiles, idx, n);
        for (size_t t = sh.begin; t < sh.end; ++t) {
            // Stage the tile into L1 through the device DRAM path.
            auto &slot = core.l1().slot(0);
            std::fill(slot.begin(), slot.end(), 0xffff); // pad
            size_t count =
                std::min(l, data.size() - t * l);
            std::copy(data.begin() + static_cast<long>(t * l),
                      data.begin() + static_cast<long>(t * l +
                                                       count),
                      slot.begin());
            g.load16(Vr(0), Vmr(0));
            g.srImm16(Vr(1), Vr(0), 12); // 16 coarse bins
            for (uint16_t b = 0; b < 16; ++b) {
                g.cpyImm16(Vr(2), b);
                g.eq16(Vr(3), Vr(1), Vr(2));
                partial[idx][b] += g.countM(Vr(3));
            }
        }
    });
    std::array<uint32_t, 16> bins{};
    for (const auto &p : partial)
        for (size_t b = 0; b < 16; ++b)
            bins[b] += p[b];
    // Padding lands in bin 15 (0xffff >> 12); subtract it.
    bins[15] -= static_cast<uint32_t>(tiles * l - data.size());
    return bins;
}

/** Restore the thread override when a test ends. */
struct ThreadSetting
{
    explicit ThreadSetting(unsigned n) { setSimThreads(n); }
    ~ThreadSetting() { setSimThreads(0); }
};

} // namespace

TEST(MultiCore, ShardedResultMatchesSequential)
{
    ApuDevice dev;
    Rng rng(90);
    std::vector<uint16_t> data(200000);
    std::array<uint32_t, 16> expect{};
    for (auto &v : data) {
        v = rng.nextU16();
        ++expect[v >> 12];
    }

    MultiCoreResult mc;
    auto bins = shardedHistogram(dev, data, mc);
    EXPECT_EQ(bins, expect);
    EXPECT_EQ(mc.perCore.size(), 4u);
}

TEST(MultiCore, LoadBalancedWithinShardGranularity)
{
    ApuDevice dev;
    Rng rng(91);
    // 8 tiles over 4 cores: perfectly divisible.
    std::vector<uint16_t> data(8 * dev.spec().vrLength);
    for (auto &v : data)
        v = rng.nextU16();
    MultiCoreResult mc;
    shardedHistogram(dev, data, mc);
    EXPECT_NEAR(mc.imbalance(), 1.0, 0.01);
    // Critical path ~= total / 4, the assumption behind the timed
    // kernels' coreShare accounting.
    EXPECT_NEAR(mc.maxCycles, mc.totalCycles / 4.0,
                mc.totalCycles * 0.01);
}

TEST(MultiCore, ShardCoversEverythingOnce)
{
    for (size_t total : {0u, 1u, 3u, 4u, 7u, 100u}) {
        size_t covered = 0;
        size_t last_end = 0;
        for (unsigned c = 0; c < 4; ++c) {
            Shard s = shardOf(total, c, 4);
            EXPECT_LE(s.begin, s.end);
            EXPECT_GE(s.begin, last_end);
            covered += s.end - s.begin;
            last_end = s.end;
        }
        EXPECT_EQ(covered, total);
        EXPECT_EQ(last_end, total);
    }
}

TEST(MultiCore, CoresIsolated)
{
    ApuDevice dev;
    runOnAllCores(dev, [](ApuCore &core, unsigned idx, unsigned) {
        core.vr()[0][0] = static_cast<uint16_t>(1000 + idx);
    });
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(dev.core(c).vr()[0][0], 1000 + c);
}

TEST(MultiCore, ThreadedResultIdenticalToSerial)
{
    Rng rng(92);
    std::vector<uint16_t> data(150000);
    for (auto &v : data)
        v = rng.nextU16();

    ApuDevice dev;
    MultiCoreResult serial, threaded;
    std::array<uint32_t, 16> binsSerial, binsThreaded;
    {
        ThreadSetting one(1);
        binsSerial = shardedHistogram(dev, data, serial);
    }
    for (unsigned c = 0; c < dev.numCores(); ++c)
        dev.core(c).stats().reset();
    {
        ThreadSetting four(4);
        binsThreaded = shardedHistogram(dev, data, threaded);
    }

    EXPECT_EQ(binsSerial, binsThreaded);
    // Bit-identical, not approximately equal: the cycle ledgers are
    // per-core, so threading must not perturb them at all.
    EXPECT_EQ(serial.perCore, threaded.perCore);
    EXPECT_EQ(serial.maxCycles, threaded.maxCycles);
    EXPECT_EQ(serial.totalCycles, threaded.totalCycles);
    EXPECT_EQ(serial.imbalance(), threaded.imbalance());
}

TEST(MultiCore, ThreadedMetricsSnapshotIdenticalToSerial)
{
    Rng rng(93);
    std::vector<uint16_t> data(100000);
    for (auto &v : data)
        v = rng.nextU16();

    ApuDevice dev;
    metrics::setEnabled(true);
    MultiCoreResult mc;

    auto snapshot = [&](unsigned threads) {
        ThreadSetting setting(threads);
        metrics::Registry::global().zeroAll();
        for (unsigned c = 0; c < dev.numCores(); ++c)
            dev.core(c).stats().reset();
        shardedHistogram(dev, data, mc);
        return metrics::Registry::global().toJson().dump(2);
    };

    std::string serial = snapshot(1);
    std::string threaded = snapshot(4);
    metrics::setEnabled(false);

    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, threaded);
}

TEST(MultiCore, ThreadedTraceExportIdenticalToSerial)
{
    Rng rng(94);
    std::vector<uint16_t> data(60000);
    for (auto &v : data)
        v = rng.nextU16();

    ApuDevice dev;
    MultiCoreResult mc;
    auto &tracer = trace::Tracer::get();

    auto exportTrace = [&](unsigned threads) {
        ThreadSetting setting(threads);
        for (unsigned c = 0; c < dev.numCores(); ++c)
            dev.core(c).stats().reset();
        tracer.enable("/tmp/cisram_test_multicore_trace.json");
        shardedHistogram(dev, data, mc);
        std::string doc = tracer.renderJson();
        tracer.disable();
        return doc;
    };

    std::string serial = exportTrace(1);
    std::string threaded = exportTrace(4);

    EXPECT_GT(serial.size(), 1000u);
    EXPECT_EQ(serial, threaded);
}

TEST(MultiCore, FunctorExceptionPropagatesDeterministically)
{
    ApuDevice dev;
    for (unsigned threads : {1u, 4u}) {
        ThreadSetting setting(threads);
        // Cores 1 and 3 both throw; the lowest-index exception must
        // surface on the calling thread regardless of interleaving.
        try {
            runOnAllCores(dev, [](ApuCore &, unsigned idx,
                                  unsigned) {
                if (idx == 1 || idx == 3)
                    throw std::runtime_error(
                        "core" + std::to_string(idx));
            });
            FAIL() << "expected runOnAllCores to rethrow";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "core1");
        }
    }
}

TEST(MultiCore, DeviceUsableAfterFunctorException)
{
    ApuDevice dev;
    ThreadSetting four(4);
    EXPECT_THROW(
        runOnAllCores(dev,
                      [](ApuCore &, unsigned, unsigned) {
                          throw std::runtime_error("boom");
                      }),
        std::runtime_error);
    // The pool and device survive a failed batch.
    auto mc = runOnAllCores(dev, [](ApuCore &core, unsigned idx,
                                    unsigned) {
        core.vr()[1][0] = static_cast<uint16_t>(idx);
    });
    EXPECT_EQ(mc.perCore.size(), 4u);
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(dev.core(c).vr()[1][0], c);
}

TEST(MultiCore, NestedRunOnAllCoresRunsInline)
{
    ApuDevice dev;
    ThreadSetting four(4);
    // A functor that itself calls parallelFor must not deadlock; the
    // nested call runs inline on the worker.
    std::array<unsigned, 4> seen{};
    runOnAllCores(dev, [&](ApuCore &, unsigned idx, unsigned) {
        SimThreadPool::get().parallelFor(
            3, [&](size_t) { ++seen[idx]; });
    });
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(seen[c], 3u);
}
