/**
 * @file
 * Multi-core execution tests: a functionally sharded kernel across
 * all four cores produces the sequential result, balances load, and
 * matches the tiles/numCores accounting used by the timed kernels.
 */

#include <array>

#include <gtest/gtest.h>

#include "apusim/multicore.hh"
#include "common/rng.hh"
#include "gvml/gvml.hh"

using namespace cisram;
using namespace cisram::apu;
using namespace cisram::gvml;

namespace {

/** A miniature sharded histogram over u16 values (16 bins). */
std::array<uint32_t, 16>
shardedHistogram(ApuDevice &dev, const std::vector<uint16_t> &data,
                 MultiCoreResult &mc)
{
    size_t l = dev.spec().vrLength;
    size_t tiles = (data.size() + l - 1) / l;
    std::array<uint32_t, 16> bins{};

    mc = runOnAllCores(dev, [&](ApuCore &core, unsigned idx,
                                unsigned n) {
        Gvml g(core);
        Shard sh = shardOf(tiles, idx, n);
        for (size_t t = sh.begin; t < sh.end; ++t) {
            // Stage the tile into L1 through the device DRAM path.
            auto &slot = core.l1().slot(0);
            std::fill(slot.begin(), slot.end(), 0xffff); // pad
            size_t count =
                std::min(l, data.size() - t * l);
            std::copy(data.begin() + static_cast<long>(t * l),
                      data.begin() + static_cast<long>(t * l +
                                                       count),
                      slot.begin());
            g.load16(Vr(0), Vmr(0));
            g.srImm16(Vr(1), Vr(0), 12); // 16 coarse bins
            for (uint16_t b = 0; b < 16; ++b) {
                g.cpyImm16(Vr(2), b);
                g.eq16(Vr(3), Vr(1), Vr(2));
                bins[b] += g.countM(Vr(3));
            }
        }
    });
    // Padding lands in bin 15 (0xffff >> 12); subtract it.
    bins[15] -= static_cast<uint32_t>(tiles * l - data.size());
    return bins;
}

} // namespace

TEST(MultiCore, ShardedResultMatchesSequential)
{
    ApuDevice dev;
    Rng rng(90);
    std::vector<uint16_t> data(200000);
    std::array<uint32_t, 16> expect{};
    for (auto &v : data) {
        v = rng.nextU16();
        ++expect[v >> 12];
    }

    MultiCoreResult mc;
    auto bins = shardedHistogram(dev, data, mc);
    EXPECT_EQ(bins, expect);
    EXPECT_EQ(mc.perCore.size(), 4u);
}

TEST(MultiCore, LoadBalancedWithinShardGranularity)
{
    ApuDevice dev;
    Rng rng(91);
    // 8 tiles over 4 cores: perfectly divisible.
    std::vector<uint16_t> data(8 * dev.spec().vrLength);
    for (auto &v : data)
        v = rng.nextU16();
    MultiCoreResult mc;
    shardedHistogram(dev, data, mc);
    EXPECT_NEAR(mc.imbalance(), 1.0, 0.01);
    // Critical path ~= total / 4, the assumption behind the timed
    // kernels' coreShare accounting.
    EXPECT_NEAR(mc.maxCycles, mc.totalCycles / 4.0,
                mc.totalCycles * 0.01);
}

TEST(MultiCore, ShardCoversEverythingOnce)
{
    for (size_t total : {0u, 1u, 3u, 4u, 7u, 100u}) {
        size_t covered = 0;
        size_t last_end = 0;
        for (unsigned c = 0; c < 4; ++c) {
            Shard s = shardOf(total, c, 4);
            EXPECT_LE(s.begin, s.end);
            EXPECT_GE(s.begin, last_end);
            covered += s.end - s.begin;
            last_end = s.end;
        }
        EXPECT_EQ(covered, total);
        EXPECT_EQ(last_end, total);
    }
}

TEST(MultiCore, CoresIsolated)
{
    ApuDevice dev;
    runOnAllCores(dev, [](ApuCore &core, unsigned idx, unsigned) {
        core.vr()[0][0] = static_cast<uint16_t>(1000 + idx);
    });
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(dev.core(c).vr()[0][0], 1000 + c);
}
