/**
 * @file
 * APU power-rail model tests: additivity, shares, and the calibrated
 * 200 GB RAG breakdown target (paper Fig. 15).
 */

#include <gtest/gtest.h>

#include "energy/energy.hh"

using namespace cisram::energy;

TEST(ApuPower, RailsAdditive)
{
    ApuPowerModel model;
    ApuActivity a;
    a.totalSeconds = 0.1;
    a.computeSeconds = 0.08;
    a.dramBytes = 1e9;
    a.cacheBytes = 2e9;
    EnergyBreakdown e = model.energy(a);
    EXPECT_GT(e.staticJ, 0.0);
    EXPECT_GT(e.computeJ, 0.0);
    EXPECT_GT(e.dramJ, 0.0);
    EXPECT_GT(e.cacheJ, 0.0);
    EXPECT_GT(e.otherJ, 0.0);
    EXPECT_DOUBLE_EQ(e.totalJ(), e.staticJ + e.computeJ + e.dramJ +
                                     e.cacheJ + e.otherJ);
}

TEST(ApuPower, SharesSumToHundred)
{
    ApuPowerModel model;
    ApuActivity a{0.05, 0.04, 5e8, 1e9};
    EnergyBreakdown e = model.energy(a);
    double sum = e.share(e.staticJ) + e.share(e.computeJ) +
        e.share(e.dramJ) + e.share(e.cacheJ) + e.share(e.otherJ);
    EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(ApuPower, Fig15BreakdownAt200GB)
{
    // The calibration target: the 200 GB RAG retrieval (84.2 ms
    // window, 74.6 ms compute, 2.4 GB streamed, ~2.6 GB through the
    // on-chip hierarchy) must reproduce the paper's measured rail
    // shares: static 71.4%, compute 24.7%, DRAM 2.7%, other 1.1%,
    // cache ~0.005%.
    ApuPowerModel model;
    ApuActivity a;
    a.totalSeconds = 84.2e-3;
    a.computeSeconds = 74.6e-3;
    a.dramBytes = 2.4e9;
    a.cacheBytes = 2.6e9;
    EnergyBreakdown e = model.energy(a);
    EXPECT_NEAR(e.share(e.staticJ), 71.4, 1.5);
    EXPECT_NEAR(e.share(e.computeJ), 24.7, 1.5);
    EXPECT_NEAR(e.share(e.dramJ), 2.7, 0.5);
    EXPECT_NEAR(e.share(e.otherJ), 1.1, 0.3);
    EXPECT_LT(e.share(e.cacheJ), 0.05);
}

TEST(ApuPower, StaticScalesWithWindowOnly)
{
    ApuPowerModel model;
    ApuActivity a{0.1, 0.0, 0.0, 0.0};
    ApuActivity b{0.2, 0.0, 0.0, 0.0};
    EXPECT_NEAR(model.energy(b).staticJ / model.energy(a).staticJ,
                2.0, 1e-9);
}

TEST(GpuEnergy, GrowsWithBytes)
{
    GpuEnergyModel gpu;
    double e10 = gpu.retrievalEnergy(120e6);
    double e200 = gpu.retrievalEnergy(2400e6);
    EXPECT_GT(e200, e10);
    // Fixed overhead floors the small-corpus energy.
    EXPECT_GT(e10, gpu.config().sampledWatts *
                       gpu.config().overheadSeconds * 0.99);
}
