/**
 * @file
 * Observability layer tests: event tracer (span recording, nesting,
 * disabled no-op, Chrome-trace JSON round-trip), metrics registry
 * (label aggregation, zeroing, JSON snapshot), the JSON
 * reader/writer itself, log-level filtering, and the CycleStats
 * scope-hardening asserts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "apusim/apu.hh"
#include "apusim/cycle_stats.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

using namespace cisram;

namespace {

/** Arm the tracer with a throwaway path and a clean buffer. */
void
armTracer()
{
    trace::Tracer::get().enable("/tmp/cisram_test_trace.json");
}

void
disarmTracer()
{
    trace::Tracer::get().disable();
}

} // namespace

// --------------------------------------------------------------------
// JSON reader/writer
// --------------------------------------------------------------------

TEST(Json, ParseScalars)
{
    EXPECT_TRUE(json::parseOrDie("null").isNull());
    EXPECT_EQ(json::parseOrDie("true").asBool(), true);
    EXPECT_EQ(json::parseOrDie("false").asBool(), false);
    EXPECT_DOUBLE_EQ(json::parseOrDie("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(json::parseOrDie("-2.5e3").asNumber(), -2500.0);
    EXPECT_EQ(json::parseOrDie("\"hi\\nthere\"").asString(),
              "hi\nthere");
}

TEST(Json, ParseNested)
{
    auto v = json::parseOrDie(
        "{\"a\": [1, 2, {\"b\": \"x\"}], \"c\": {} }");
    ASSERT_TRUE(v.isObject());
    const auto &a = v.asObject().find("a")->asArray();
    ASSERT_EQ(a.size(), 3u);
    EXPECT_DOUBLE_EQ(a[1].asNumber(), 2.0);
    EXPECT_EQ(a[2].asObject().find("b")->asString(), "x");
    EXPECT_TRUE(v.asObject().find("c")->asObject().empty());
}

TEST(Json, ParseErrors)
{
    json::Value out;
    std::string err;
    EXPECT_FALSE(json::parse("{\"a\": }", out, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(json::parse("[1, 2", out, &err));
    EXPECT_FALSE(json::parse("", out, &err));
    EXPECT_FALSE(json::parse("{} trailing", out, &err));
}

TEST(Json, RoundTrip)
{
    json::Value doc;
    doc["name"] = "bench";
    doc["pi"] = 3.25;
    doc["n"] = 123456789;
    doc["esc"] = "a\"b\\c\t\x01";
    doc["flag"] = true;
    auto &arr = doc["list"].makeArray();
    arr.emplace_back(1);
    arr.emplace_back("two");
    arr.emplace_back(nullptr);

    for (int indent : {-1, 2}) {
        auto back = json::parseOrDie(doc.dump(indent));
        EXPECT_EQ(back.asObject().find("name")->asString(), "bench");
        EXPECT_DOUBLE_EQ(back.asObject().find("pi")->asNumber(),
                         3.25);
        EXPECT_DOUBLE_EQ(back.asObject().find("n")->asNumber(),
                         123456789.0);
        EXPECT_EQ(back.asObject().find("esc")->asString(),
                  "a\"b\\c\t\x01");
        EXPECT_EQ(back.asObject().find("list")->asArray().size(),
                  3u);
        EXPECT_TRUE(
            back.asObject().find("list")->asArray()[2].isNull());
    }
}

TEST(Json, NonFiniteNumbersSerializeAsNull)
{
    // A raw "inf"/"nan" token would corrupt the whole document for
    // any standards-conforming reader (BENCH_*.json consumers,
    // chrome://tracing), so the writer must degrade non-finite
    // numbers to null — and the written document must parse back.
    json::Value doc;
    doc["ok"] = 2.5;
    doc["pos_overflow"] = std::numeric_limits<double>::infinity();
    doc["neg_overflow"] = -std::numeric_limits<double>::infinity();
    doc["undefined"] = std::numeric_limits<double>::quiet_NaN();

    for (int indent : {-1, 2}) {
        std::string text = doc.dump(indent);
        EXPECT_EQ(text.find("inf"), std::string::npos);
        EXPECT_EQ(text.find("nan"), std::string::npos);

        auto back = json::parseOrDie(text);
        EXPECT_DOUBLE_EQ(back.asObject().find("ok")->asNumber(),
                         2.5);
        EXPECT_TRUE(back.asObject().find("pos_overflow")->isNull());
        EXPECT_TRUE(back.asObject().find("neg_overflow")->isNull());
        EXPECT_TRUE(back.asObject().find("undefined")->isNull());
    }
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    json::Value doc;
    doc["z"] = 1;
    doc["a"] = 2;
    doc["m"] = 3;
    std::string s = doc.dump();
    EXPECT_LT(s.find("\"z\""), s.find("\"a\""));
    EXPECT_LT(s.find("\"a\""), s.find("\"m\""));
}

// --------------------------------------------------------------------
// Metrics registry
// --------------------------------------------------------------------

TEST(Metrics, SeriesKeyAndLabelAggregation)
{
    EXPECT_EQ(metrics::Registry::seriesKey("x", {}), "x");
    EXPECT_EQ(metrics::Registry::seriesKey(
                  "x", {{"op", "add"}, {"core", "0"}}),
              "x{op=add,core=0}");

    auto &reg = metrics::Registry::get();
    auto &a = reg.counter("test.hits", {{"op", "add"}});
    auto &b = reg.counter("test.hits", {{"op", "mul"}});
    auto &a2 = reg.counter("test.hits", {{"op", "add"}});
    EXPECT_EQ(&a, &a2); // same labels -> same series
    EXPECT_NE(&a, &b);  // different labels -> distinct series

    a.zero();
    b.zero();
    a.inc(3);
    a2.inc(2);
    b.inc(7);
    EXPECT_DOUBLE_EQ(a.value(), 5.0);
    EXPECT_DOUBLE_EQ(b.value(), 7.0);
}

TEST(Metrics, HistogramSummary)
{
    auto &h = metrics::Registry::get().histogram("test.hist");
    h.zero();
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (double v : {1.0, 3.0, 8.0})
        h.observe(v);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 12.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 8.0);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Metrics, HistogramQuantiles)
{
    metrics::Histogram h;
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0); // empty

    // Quantiles are exact at the extremes and bucket-accurate in
    // between; the serving pipeline's latencies (milliseconds) must
    // land in resolved buckets, not a catch-all underflow bucket.
    for (int i = 1; i <= 100; ++i)
        h.observe(i * 1e-3); // 1..100 ms
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-3);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.1);

    double p50 = h.quantile(0.50);
    double p95 = h.quantile(0.95);
    double p99 = h.quantile(0.99);
    // Monotone and within the observed range.
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, 1e-3);
    EXPECT_LE(p99, 0.1);
    // Factor-of-two bucket accuracy around the true values.
    EXPECT_NEAR(p50, 0.050, 0.032);
    EXPECT_NEAR(p95, 0.095, 0.035);

    // A single observation pins every quantile.
    metrics::Histogram one;
    one.observe(0.007);
    EXPECT_DOUBLE_EQ(one.quantile(0.5), 0.007);
    EXPECT_DOUBLE_EQ(one.quantile(0.99), 0.007);

    // Sub-resolution values (below 2^minExp) fall into bucket 0 and
    // still produce clamped, finite quantiles.
    metrics::Histogram tiny;
    tiny.observe(0.0);
    tiny.observe(1e-12);
    EXPECT_GE(tiny.quantile(0.5), 0.0);
    EXPECT_LE(tiny.quantile(0.5), 1e-12);
}

TEST(Metrics, JsonSnapshot)
{
    auto &reg = metrics::Registry::get();
    reg.counter("test.snap", {{"k", "v"}}).zero();
    reg.counter("test.snap", {{"k", "v"}}).inc(9);
    reg.gauge("test.level").set(0.5);

    auto doc = json::parseOrDie(reg.toJson().dump());
    const auto &counters =
        doc.asObject().find("counters")->asObject();
    ASSERT_NE(counters.find("test.snap{k=v}"), nullptr);
    EXPECT_DOUBLE_EQ(counters.find("test.snap{k=v}")->asNumber(),
                     9.0);
    const auto &gauges = doc.asObject().find("gauges")->asObject();
    EXPECT_DOUBLE_EQ(gauges.find("test.level")->asNumber(), 0.5);
}

TEST(Metrics, PerOpCountersViaCharge)
{
    metrics::setEnabled(true);
    auto &oc = metrics::Registry::get().opCounters("test.charge.op");
    oc.issues.zero();
    oc.cycles.zero();
    oc.bytes.zero();

    apu::CycleStats stats;
    {
        trace::OpScope op("test.charge.op", 128.0);
        stats.pushRepeat(4.0);
        stats.charge(10);
        stats.popRepeat();
    }
    metrics::setEnabled(false);

    EXPECT_DOUBLE_EQ(oc.issues.value(), 1.0);
    EXPECT_DOUBLE_EQ(oc.cycles.value(), 40.0); // repeat-scaled
    EXPECT_DOUBLE_EQ(oc.bytes.value(), 128.0 * 4.0);
}

// --------------------------------------------------------------------
// Tracer
// --------------------------------------------------------------------

TEST(Trace, DisabledModeIsNoOp)
{
    disarmTracer();
    EXPECT_FALSE(trace::active());

    apu::CycleStats stats;
    stats.pushTag("ld_lhs");
    stats.charge(100);
    stats.popTag();
    EXPECT_DOUBLE_EQ(stats.cycles(), 100.0);
    EXPECT_EQ(trace::Tracer::get().eventCount(), 0u);
}

TEST(Trace, ChargesEmitCompleteSpans)
{
    armTracer();
    apu::CycleStats stats;
    stats.setTraceIds(7, 2);

    stats.pushTag("ld_lhs");
    stats.charge(50);
    stats.popTag();
    stats.charge(25); // untagged

    const auto &evs = trace::Tracer::get().events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].phase, 'X');
    EXPECT_EQ(evs[0].pid, 7u);
    EXPECT_EQ(evs[0].tid, 2u);
    EXPECT_EQ(evs[0].cat, "ld_lhs");
    EXPECT_DOUBLE_EQ(evs[0].ts, 0.0);
    EXPECT_DOUBLE_EQ(evs[0].dur, 50.0);
    EXPECT_EQ(evs[1].cat, "untagged");
    EXPECT_DOUBLE_EQ(evs[1].ts, 50.0); // starts where span 0 ended
    EXPECT_DOUBLE_EQ(evs[1].dur, 25.0);
    disarmTracer();
}

TEST(Trace, OpScopeNestingRestores)
{
    armTracer();
    apu::CycleStats stats;

    EXPECT_EQ(trace::currentOp(), nullptr);
    {
        trace::OpScope outer("outer.op", 64.0, 1);
        EXPECT_STREQ(trace::currentOp(), "outer.op");
        stats.charge(10);
        {
            trace::OpScope inner("inner.op", 32.0, 2);
            EXPECT_STREQ(trace::currentOp(), "inner.op");
            EXPECT_DOUBLE_EQ(trace::currentBytes(), 32.0);
            EXPECT_EQ(trace::currentEngines(), 2);
            stats.charge(20);
        }
        EXPECT_STREQ(trace::currentOp(), "outer.op");
        EXPECT_DOUBLE_EQ(trace::currentBytes(), 64.0);
        stats.charge(30);
    }
    EXPECT_EQ(trace::currentOp(), nullptr);

    const auto &evs = trace::Tracer::get().events();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].name, "outer.op");
    EXPECT_EQ(evs[1].name, "inner.op");
    EXPECT_DOUBLE_EQ(evs[1].bytes, 32.0);
    EXPECT_EQ(evs[1].engines, 2);
    EXPECT_EQ(evs[2].name, "outer.op");
    disarmTracer();
}

TEST(Trace, SpanTotalsMatchCycleStatsBreakdown)
{
    armTracer();
    apu::ApuDevice dev;
    auto &core = dev.core(0);
    core.setMode(apu::ExecMode::TimingOnly);

    core.stats().pushTag("ld_lhs");
    core.dmaL4ToL2(0, 0, 4096);
    core.stats().popTag();
    core.stats().pushTag("vr_ops");
    core.loadVr(0, 0);
    core.chargeRaw(100);
    core.stats().popTag();

    std::map<std::string, double> spanTotals;
    for (const auto &e : trace::Tracer::get().events())
        if (e.phase == 'X')
            spanTotals[e.cat] += e.dur;

    for (const auto &[tag, cycles] : core.stats().breakdown()) {
        ASSERT_NE(spanTotals.find(tag), spanTotals.end()) << tag;
        EXPECT_DOUBLE_EQ(spanTotals[tag], cycles) << tag;
    }
    disarmTracer();
}

TEST(Trace, RenderedJsonIsValidChromeTrace)
{
    armTracer();
    auto &tracer = trace::Tracer::get();
    uint32_t pid = tracer.registerProcess("apu");

    apu::CycleStats stats;
    stats.setTraceIds(pid, 1);
    {
        trace::OpScope op("apu.dmaL4ToL2", 2048.0, 1);
        stats.pushTag("ld_rhs");
        stats.charge(123);
        stats.popTag();
    }

    auto doc = json::parseOrDie(tracer.renderJson());
    const auto &root = doc.asObject();
    ASSERT_NE(root.find("traceEvents"), nullptr);
    const auto &evs = root.find("traceEvents")->asArray();

    bool sawMeta = false, sawSpan = false;
    for (const auto &ev : evs) {
        const auto &o = ev.asObject();
        const std::string &ph = o.find("ph")->asString();
        if (ph == "M")
            sawMeta = true;
        if (ph == "X" &&
            o.find("name")->asString() == "apu.dmaL4ToL2") {
            sawSpan = true;
            EXPECT_EQ(o.find("cat")->asString(), "ld_rhs");
            EXPECT_DOUBLE_EQ(o.find("dur")->asNumber(), 123.0);
            EXPECT_DOUBLE_EQ(o.find("pid")->asNumber(),
                             static_cast<double>(pid));
            const auto &args = o.find("args")->asObject();
            EXPECT_DOUBLE_EQ(args.find("bytes")->asNumber(), 2048.0);
        }
    }
    EXPECT_TRUE(sawMeta);
    EXPECT_TRUE(sawSpan);
    disarmTracer();
}

TEST(Trace, WriteProducesParsableFile)
{
    const char *path = "/tmp/cisram_test_trace_write.json";
    auto &tracer = trace::Tracer::get();
    tracer.enable(path);
    apu::CycleStats stats;
    stats.charge(11);
    tracer.write();
    trace::Tracer::get().disable();

    FILE *f = std::fopen(path, "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path);

    auto doc = json::parseOrDie(text);
    EXPECT_TRUE(doc.asObject().contains("traceEvents"));
}

// --------------------------------------------------------------------
// CycleStats scope hardening
// --------------------------------------------------------------------

TEST(CycleStatsHardening, PopWithoutPushPanics)
{
    apu::CycleStats stats;
    EXPECT_DEATH(stats.popTag(), "popTag without");
    EXPECT_DEATH(stats.popRepeat(), "popRepeat without");
}

TEST(CycleStatsHardening, ResetWithOpenScopesPanics)
{
    apu::CycleStats stats;
    stats.pushTag("ld_lhs");
    EXPECT_DEATH(stats.reset(), "open tag scope");
    stats.popTag();

    stats.pushRepeat(2.0);
    EXPECT_DEATH(stats.reset(), "open repeat scope");
    stats.popRepeat();
    stats.reset(); // balanced scopes: fine
}

// --------------------------------------------------------------------
// Log levels
// --------------------------------------------------------------------

TEST(LogLevels, FilteringFollowsLevel)
{
    LogLevel saved = logLevel();

    setLogLevel(LogLevel::Quiet);
    EXPECT_FALSE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));

    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));

    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(logEnabled(LogLevel::Info));
    EXPECT_TRUE(logEnabled(LogLevel::Debug));

    setLogLevel(saved);
}
