/**
 * @file
 * The observability layer's contracts: flight-recorder span trees
 * that reconcile *bit-exactly* with served latency across every
 * serving outcome (clean, retried, breaker-fallback, shed-rerouted,
 * reset-replayed), ledger identity for any CISRAM_SIM_THREADS under
 * an armed fault plan, the recorder's never-charges-time guarantee,
 * the windowed SLO monitor's burn-rate arithmetic, the histogram
 * quantile edge cases the bench snapshots pin, the bench_diff
 * regression-gate classifier, and the trace writer's atomic-write /
 * fail-loudly behavior.
 */

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include <gtest/gtest.h>

#include "apusim/apu.hh"
#include "apusim/multicore.hh"
#include "baseline/workloads.hh"
#include "common/json.hh"
#include "common/metrics.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"
#include "fault/fault.hh"
#include "gdl/gdl.hh"
#include "kernels/rag.hh"
#include "kernels/serving.hh"
#include "obs/bench_diff.hh"
#include "obs/flight.hh"
#include "obs/slo.hh"
#include "recovery/health.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;
using namespace cisram::obs;

namespace {

/** Disarm on scope exit so no test leaks an armed plan. */
struct PlanGuard
{
    explicit PlanGuard(const std::string &spec)
    {
        auto p = fault::FaultPlan::parse(spec);
        EXPECT_TRUE(p.ok()) << p.status().toString();
        fault::armPlan(*p);
    }
    ~PlanGuard() { fault::disarm(); }
};

/** Pin CISRAM_SIM_THREADS for one scope. */
struct ThreadSetting
{
    explicit ThreadSetting(unsigned n) { setSimThreads(n); }
    ~ThreadSetting() { setSimThreads(0); }
};

recovery::HealthPolicy
enabledPolicy(unsigned window, unsigned degrade, unsigned quarantine,
              unsigned sheds)
{
    recovery::HealthPolicy p;
    p.enabled = true;
    p.windowQueries = window;
    p.degradeThreshold = degrade;
    p.quarantineThreshold = quarantine;
    p.quarantineAdmissions = sheds;
    return p;
}

ServerConfig
recordingConfig(size_t batch)
{
    ServerConfig cfg;
    cfg.batch = BatchPolicy{batch, batch};
    cfg.flight.mode = FlightConfig::Mode::On;
    return cfg;
}

size_t
spanCount(const QueryFlight::Round &round, Stage stage)
{
    size_t n = 0;
    for (const Span &s : round.spans)
        if (s.stage == stage)
            ++n;
    return n;
}

/**
 * The reconciliation invariant, asserted per outcome: the recorder's
 * re-derived latency equals the server's — with ==, not a tolerance.
 */
void
expectReconciled(const FlightRecorder &fr, const ServeOutcome &out)
{
    const QueryFlight *fl = fr.flight(out.id);
    ASSERT_NE(fl, nullptr) << "query " << out.id;
    EXPECT_TRUE(fl->delivered) << "query " << out.id;
    EXPECT_EQ(fl->state, FlightState::Completed);
    EXPECT_EQ(fl->servedSeconds, out.servedSeconds())
        << "query " << out.id;
    EXPECT_EQ(fl->reconciledSeconds(), out.servedSeconds())
        << "query " << out.id;
    EXPECT_EQ(fl->fromDevice, out.fromDevice);
    EXPECT_EQ(fl->attempts, out.attempts);
    EXPECT_EQ(fl->batchSize, out.batchSize);
}

} // namespace

// ---- Reconciliation: clean batched serving -----------------------------

TEST(FlightReconcile, CleanBatchedServing)
{
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    DeviceServer server(dev, spec, 0, nullptr, 1,
                        recordingConfig(4));

    std::vector<ServeOutcome> outs;
    for (uint64_t q = 0; q < 8; ++q)
        ASSERT_TRUE(
            server.enqueue(q, genQuery(spec.dim, 10 + q)).ok());
    for (auto &o : server.drain())
        outs.push_back(std::move(o));
    ASSERT_EQ(outs.size(), 8u);

    const FlightRecorder &fr = server.flightRecorder();
    EXPECT_TRUE(fr.enabled());
    EXPECT_EQ(fr.completedCount(), 8u);
    EXPECT_EQ(fr.reconciledCount(), 8u);
    for (const auto &out : outs) {
        expectReconciled(fr, out);
        const QueryFlight *fl = fr.flight(out.id);
        ASSERT_EQ(fl->rounds.size(), 1u);
        const auto &round = fl->rounds.front();
        EXPECT_FALSE(round.abandoned);
        // One wait, one staging, one compute, no failures.
        EXPECT_EQ(spanCount(round, Stage::QueueWait), 1u);
        EXPECT_EQ(spanCount(round, Stage::PcieStage), 1u);
        EXPECT_EQ(spanCount(round, Stage::DeviceCompute), 1u);
        EXPECT_EQ(spanCount(round, Stage::DeviceAttempt), 0u);
        EXPECT_EQ(spanCount(round, Stage::CpuFallback), 0u);
        // Table 8 stage children ride under the compute span.
        EXPECT_GE(spanCount(round, Stage::ComputeDetail), 4u);
    }

    // Aggregate attribution reproduces the outcome components when
    // summed in the same (admission) order.
    auto attr = fr.attribution();
    double wait = 0, host = 0, compute = 0;
    for (const auto &out : outs) { // drain order == admission order
        wait += out.queueWaitSeconds;
        host += out.hostSeconds;
        compute += out.retrievalSeconds;
    }
    EXPECT_DOUBLE_EQ(attr["queue_wait"], wait);
    EXPECT_DOUBLE_EQ(attr["pcie_stage"], host); // clean: host = pcie
    EXPECT_DOUBLE_EQ(attr["device_compute"], compute);
    EXPECT_EQ(attr.count("cpu_fallback"), 0u);
    EXPECT_GT(attr["device_compute.calc_distance"], 0.0);
}

// ---- Reconciliation: a failed attempt, then device success -------------

TEST(FlightReconcile, RetriedAttemptStillBitExact)
{
    // The first task hangs once (not sticky): attempt 1 burns the
    // deadline, attempt 2 serves the batch. The failed attempt's
    // exact charge must appear as a DeviceAttempt span and the total
    // still reconcile.
    PlanGuard plan("task_hang:core=0,nth=1;seed:7");
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    DeviceServer server(dev, spec, 0, nullptr, 1,
                        recordingConfig(4));

    std::vector<ServeOutcome> outs;
    for (uint64_t q = 0; q < 4; ++q)
        ASSERT_TRUE(
            server.enqueue(q, genQuery(spec.dim, 20 + q)).ok());
    for (auto &o : server.drain())
        outs.push_back(std::move(o));
    ASSERT_EQ(outs.size(), 4u);

    const FlightRecorder &fr = server.flightRecorder();
    EXPECT_EQ(fr.reconciledCount(), 4u);
    bool saw_retry = false;
    for (const auto &out : outs) {
        expectReconciled(fr, out);
        if (out.attempts > 1) {
            saw_retry = true;
            EXPECT_TRUE(out.fromDevice);
            const auto *round = fr.flight(out.id)->finalRound();
            ASSERT_NE(round, nullptr);
            EXPECT_EQ(spanCount(*round, Stage::DeviceAttempt),
                      out.attempts - 1);
            EXPECT_EQ(spanCount(*round, Stage::DeviceCompute), 1u);
        }
    }
    EXPECT_TRUE(saw_retry) << "plan produced no retried batch";
}

// ---- Reconciliation: breaker / retry-exhausted CPU fallback ------------

TEST(FlightReconcile, BreakerFallbackBitExact)
{
    // Every task hangs: the first batch exhausts its retries and
    // falls back; the tripped breaker routes the second batch
    // straight to the CPU. Both shapes must reconcile.
    PlanGuard plan("task_hang:p=1;seed:5");
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    DeviceServer server(dev, spec, 0, nullptr, 1,
                        recordingConfig(2));

    std::vector<ServeOutcome> outs;
    for (uint64_t q = 0; q < 4; ++q)
        ASSERT_TRUE(
            server.enqueue(q, genQuery(spec.dim, 30 + q)).ok());
    for (auto &o : server.drain())
        outs.push_back(std::move(o));
    ASSERT_EQ(outs.size(), 4u);

    const FlightRecorder &fr = server.flightRecorder();
    EXPECT_EQ(fr.reconciledCount(), 4u);
    for (const auto &out : outs) {
        EXPECT_FALSE(out.fromDevice) << "query " << out.id;
        expectReconciled(fr, out);
        const auto *round = fr.flight(out.id)->finalRound();
        ASSERT_NE(round, nullptr);
        EXPECT_EQ(spanCount(*round, Stage::CpuFallback), 1u);
        EXPECT_EQ(spanCount(*round, Stage::DeviceCompute), 0u);
        EXPECT_EQ(spanCount(*round, Stage::DeviceAttempt),
                  out.attempts);
    }
    EXPECT_DOUBLE_EQ(fr.attribution()["device_compute"], 0.0);
    EXPECT_GT(fr.attribution()["cpu_fallback"], 0.0);
}

// ---- Reconciliation: shed at the door, then re-admitted ----------------

TEST(FlightReconcile, ShedThenReadmittedBitExact)
{
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    ServerConfig cfg = recordingConfig(2);
    cfg.admission.maxQueueDepth = 2;
    DeviceServer server(dev, spec, 0, nullptr, 1, cfg);

    ASSERT_TRUE(server.enqueue(0, genQuery(spec.dim, 40)).ok());
    ASSERT_TRUE(server.enqueue(1, genQuery(spec.dim, 41)).ok());
    // Queue full: the third admission sheds loudly...
    Status shed = server.enqueue(2, genQuery(spec.dim, 42));
    ASSERT_FALSE(shed.ok());

    // ...and the recorder saw it even though no flight is open yet.
    const FlightRecorder &fr = server.flightRecorder();
    {
        const QueryFlight *fl = fr.flight(2);
        ASSERT_NE(fl, nullptr);
        EXPECT_EQ(fl->state, FlightState::Shed);
        EXPECT_EQ(fl->sheds, 1u);
        EXPECT_EQ(fl->shedReason, "depth");
    }

    std::vector<ServeOutcome> outs;
    for (auto &o : server.drain())
        outs.push_back(std::move(o));
    ASSERT_TRUE(server.enqueue(2, genQuery(spec.dim, 42)).ok());
    for (auto &o : server.drain())
        outs.push_back(std::move(o));
    ASSERT_EQ(outs.size(), 3u);

    EXPECT_EQ(fr.completedCount(), 3u);
    EXPECT_EQ(fr.reconciledCount(), 3u);
    for (const auto &out : outs)
        expectReconciled(fr, out);
    // The rerouted query kept its shed history on the same flight.
    EXPECT_EQ(fr.flight(2)->sheds, 1u);
    EXPECT_EQ(fr.flight(2)->state, FlightState::Completed);
}

// ---- Reconciliation: park -> reset -> replay ---------------------------

TEST(FlightReconcile, ResetReplayBitExact)
{
    // A sticky hang wedges the core mid-stream: the batch parks, the
    // core resets, the journaled queries replay. The abandoned
    // round's charges stay visible in the trace but only the fresh
    // round reconciles — and it must, bit-exactly.
    PlanGuard plan("task_hang:core=0,nth=2,sticky=1;seed:7");
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    ServerConfig cfg = recordingConfig(2);
    cfg.health = enabledPolicy(16, 1, 1, 2);
    DeviceServer server(dev, spec, 0, nullptr, 1, cfg);

    std::vector<ServeOutcome> outs;
    for (uint64_t q = 0; q < 8; ++q)
        ASSERT_TRUE(
            server.enqueue(q, genQuery(spec.dim, 50 + q)).ok());
    for (auto &o : server.drain())
        outs.push_back(std::move(o));
    ASSERT_EQ(outs.size(), 8u);
    ASSERT_GE(server.resets(), 1u);
    ASSERT_GE(server.replayedQueries(), 1u);

    const FlightRecorder &fr = server.flightRecorder();
    EXPECT_EQ(fr.completedCount(), 8u);
    EXPECT_EQ(fr.reconciledCount(), 8u);
    size_t replayed_flights = 0, parked_flights = 0;
    for (const auto &out : outs) {
        expectReconciled(fr, out);
        const QueryFlight *fl = fr.flight(out.id);
        if (fl->replays > 0) {
            ++replayed_flights;
            EXPECT_FALSE(fl->rounds.back().abandoned);
            // A query parked mid-service keeps its abandoned round
            // for the timeline; one still waiting in the queue at
            // reset time replays with only the fresh round.
            if (fl->rounds.size() >= 2) {
                ++parked_flights;
                EXPECT_TRUE(fl->rounds.front().abandoned);
            }
        }
    }
    EXPECT_EQ(replayed_flights, server.replayedQueries());
    // The wedged batch itself was mid-service when it parked.
    EXPECT_GE(parked_flights, 2u);
}

// ---- Ledger determinism across thread counts ---------------------------

namespace {

struct LedgerSnapshot
{
    std::vector<std::string> ledgers; // per-core ledger JSON dumps
    std::vector<double> served;       // per-query, indexed by id
};

LedgerSnapshot
runRecordedPipeline()
{
    constexpr int kQ = 16;
    gdl::resetFaultStreams();
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    for (unsigned c = 0; c < dev.numCores(); ++c)
        dev.core(c).setMode(apu::ExecMode::TimingOnly);

    ServerConfig cfg = recordingConfig(2);
    cfg.health = enabledPolicy(16, 1, 2, 4);
    std::vector<std::unique_ptr<DeviceServer>> servers;
    for (unsigned c = 0; c < dev.numCores(); ++c)
        servers.push_back(std::make_unique<DeviceServer>(
            dev, spec, c, nullptr, 7, cfg));

    LedgerSnapshot snap;
    snap.served.resize(kQ);
    apu::runOnAllCores(dev, [&](apu::ApuCore &, unsigned c,
                                unsigned n) {
        auto shard = apu::shardOf(kQ, c, n);
        auto &server = *servers[c];
        for (size_t q = shard.begin; q < shard.end; ++q) {
            Status st = server.enqueue(
                q, genQuery(spec.dim, 70 + static_cast<int>(q)));
            cisram_assert(st.ok(), st.toString());
        }
        for (const auto &out : server.drain())
            snap.served[out.id] = out.servedSeconds();
    });
    for (auto &s : servers) {
        // Every journaled query reconciled, even mid-recovery.
        EXPECT_EQ(s->flightRecorder().reconciledCount(),
                  s->flightRecorder().completedCount());
        snap.ledgers.push_back(
            s->flightRecorder().ledgerJson().dump(2));
    }
    return snap;
}

} // namespace

TEST(FlightReconcile, LedgerBitIdenticalAcrossSimThreadCounts)
{
    // The hard case: quarantine -> reset -> replay on core 1 plus
    // transient PCIe corruption everywhere, recorded. The *entire
    // serialized ledger* — every span timestamp, duration, round
    // structure, and reconciliation verdict — must be byte-identical
    // between a serial and a 4-thread run.
    PlanGuard plan(
        "task_hang:core=1,nth=2,sticky=1;pcie_corrupt:p=0.02;"
        "seed:11");
    LedgerSnapshot serial, threaded;
    {
        ThreadSetting one(1);
        serial = runRecordedPipeline();
    }
    {
        ThreadSetting four(4);
        threaded = runRecordedPipeline();
    }
    ASSERT_EQ(serial.ledgers.size(), threaded.ledgers.size());
    for (size_t c = 0; c < serial.ledgers.size(); ++c)
        EXPECT_EQ(serial.ledgers[c], threaded.ledgers[c])
            << "core " << c;
    for (size_t q = 0; q < serial.served.size(); ++q)
        EXPECT_EQ(serial.served[q], threaded.served[q])
            << "q=" << q;
}

// ---- The recorder never charges simulated time -------------------------

TEST(FlightRecorderCost, RecordingNeverChangesTiming)
{
    const auto &spec = ragCorpora()[0];
    auto run = [&](FlightConfig::Mode mode) {
        gdl::resetFaultStreams();
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        ServerConfig cfg = recordingConfig(4);
        cfg.flight.mode = mode;
        DeviceServer server(dev, spec, 0, nullptr, 1, cfg);
        std::vector<double> served;
        for (uint64_t q = 0; q < 8; ++q)
            EXPECT_TRUE(
                server.enqueue(q, genQuery(spec.dim, 80 + q)).ok());
        for (const auto &o : server.drain())
            served.push_back(o.servedSeconds());
        served.push_back(server.busySeconds());
        return served;
    };
    auto off = run(FlightConfig::Mode::Off);
    auto on = run(FlightConfig::Mode::On);
    ASSERT_EQ(off.size(), on.size());
    for (size_t i = 0; i < off.size(); ++i)
        EXPECT_EQ(off[i], on[i]) << "i=" << i;
}

TEST(FlightRecorderCost, DisabledRecorderIsInert)
{
    FlightRecorder fr(0, FlightConfig{FlightConfig::Mode::Off});
    EXPECT_FALSE(fr.enabled());
    fr.recordAdmit(1, 0.0);
    fr.recordShed(2, 0.0, "depth");
    fr.beginRound(1, 0.0);
    fr.span(1, Stage::QueueWait, 0, 0.0, 1.0);
    fr.complete(1, FlightCompletion{});
    EXPECT_TRUE(fr.flights().empty());
    EXPECT_EQ(fr.completedCount(), 0u);
    EXPECT_EQ(fr.flight(1), nullptr);
}

TEST(FlightRecorderCost, ServeBypassIsNotRecorded)
{
    // serve() bypasses the admission journal; the recorder tracks
    // journaled queries only, by contract.
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    DeviceServer server(dev, spec, 0, nullptr, 1,
                        recordingConfig(4));
    ServeOutcome out = server.serve(genQuery(spec.dim, 90));
    EXPECT_TRUE(out.ok);
    EXPECT_TRUE(server.flightRecorder().flights().empty());
}

// ---- Ledger JSON -------------------------------------------------------

TEST(FlightLedger, JsonCarriesPerQueryVerdicts)
{
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    DeviceServer server(dev, spec, 0, nullptr, 1,
                        recordingConfig(4));
    for (uint64_t q = 0; q < 4; ++q)
        ASSERT_TRUE(
            server.enqueue(q, genQuery(spec.dim, 95 + q)).ok());
    server.drain();

    json::Value ledger = server.flightRecorder().ledgerJson();
    const auto &root = ledger.asObject();
    ASSERT_TRUE(root.contains("queries"));
    const auto &queries = root.find("queries")->asArray();
    ASSERT_EQ(queries.size(), 4u);
    for (const auto &q : queries) {
        const auto &obj = q.asObject();
        EXPECT_TRUE(obj.find("exact")->asBool());
        EXPECT_EQ(obj.find("served_seconds")->asNumber(),
                  obj.find("reconciled_seconds")->asNumber());
        EXPECT_FALSE(obj.find("rounds")->asArray().empty());
    }

    // The dump is valid JSON end to end.
    json::Value reparsed;
    std::string err;
    EXPECT_TRUE(json::parse(ledger.dump(2), reparsed, &err)) << err;
}

// ---- SLO monitor -------------------------------------------------------

TEST(SloMonitor, WindowingAndBurnRate)
{
    SloPolicy policy;
    policy.windowQueries = 4;
    policy.classes.push_back(SloClass{"c", 0.1, 0.9});
    obs::SloMonitor slo(policy);

    // Window 0: one violation in four -> fraction 0.25, burn
    // 0.25 / (1 - 0.9) = 2.5, breached.
    slo.observe("c", 0.05);
    slo.observe("c", 0.20); // violation
    slo.observe("c", 0.05);
    EXPECT_TRUE(slo.windows().empty()); // window still open
    slo.observe("c", 0.05);
    ASSERT_EQ(slo.windows().size(), 1u);
    const SloWindow &w0 = slo.windows()[0];
    EXPECT_EQ(w0.index, 0u);
    EXPECT_EQ(w0.queries, 4u);
    EXPECT_EQ(w0.violations, 1u);
    EXPECT_DOUBLE_EQ(w0.violationFraction, 0.25);
    EXPECT_DOUBLE_EQ(w0.burnRate, 2.5);
    EXPECT_TRUE(w0.breached);
    EXPECT_FALSE(w0.partial);
    EXPECT_EQ(w0.max, 0.20);

    // Window 1: clean -> burn 0.
    for (int i = 0; i < 4; ++i)
        slo.observe("c", 0.05);
    ASSERT_EQ(slo.windows().size(), 2u);
    EXPECT_DOUBLE_EQ(slo.windows()[1].burnRate, 0.0);
    EXPECT_FALSE(slo.windows()[1].breached);

    EXPECT_EQ(slo.observed("c"), 8u);
    EXPECT_EQ(slo.violations("c"), 1u);
    EXPECT_DOUBLE_EQ(slo.worstBurnRate(), 2.5);
    EXPECT_EQ(slo.breachedWindows(), 1u);
}

TEST(SloMonitor, ExactlyOnTargetIsNotAViolation)
{
    SloPolicy policy;
    policy.windowQueries = 1;
    policy.classes.push_back(SloClass{"c", 0.1, 0.5});
    obs::SloMonitor slo(policy);
    slo.observe("c", 0.1); // == target: meets the SLO
    ASSERT_EQ(slo.windows().size(), 1u);
    EXPECT_EQ(slo.windows()[0].violations, 0u);
}

TEST(SloMonitor, FlushClosesPartialWindowsOnce)
{
    SloPolicy policy;
    policy.windowQueries = 4;
    policy.classes.push_back(SloClass{"a", 1.0, 0.99});
    policy.classes.push_back(SloClass{"b", 1.0, 0.99});
    obs::SloMonitor slo(policy);
    slo.observe("a", 0.5);
    slo.observe("a", 2.0); // violation
    slo.observe("b", 0.5);
    slo.flush();
    ASSERT_EQ(slo.windows().size(), 2u); // map order: a then b
    EXPECT_TRUE(slo.windows()[0].partial);
    EXPECT_EQ(slo.windows()[0].queries, 2u);
    EXPECT_EQ(slo.windows()[0].violations, 1u);
    EXPECT_TRUE(slo.windows()[1].partial);
    slo.flush(); // idempotent: nothing new to close
    EXPECT_EQ(slo.windows().size(), 2u);
}

TEST(SloMonitor, ZeroQueryWindowIsDefinedAndHarmless)
{
    // Epoch boundaries close a window for EVERY class, including one
    // that saw no traffic. The contract for a zero-query window:
    // violation fraction 0, burn rate 0, never breached, quantiles 0
    // (an empty histogram's quantile is 0 by pin), marked partial.
    SloPolicy policy;
    policy.windowQueries = 8;
    policy.classes.push_back(SloClass{"busy", 0.1, 0.9});
    policy.classes.push_back(SloClass{"silent", 0.1, 0.9});
    obs::SloMonitor slo(policy);
    slo.observe("busy", 0.05);
    slo.flushAll();
    ASSERT_EQ(slo.windows().size(), 2u); // map order: busy, silent
    const SloWindow &quiet = slo.windows()[1];
    EXPECT_EQ(quiet.cls, "silent");
    EXPECT_EQ(quiet.queries, 0u);
    EXPECT_EQ(quiet.violations, 0u);
    EXPECT_DOUBLE_EQ(quiet.violationFraction, 0.0);
    EXPECT_DOUBLE_EQ(quiet.burnRate, 0.0);
    EXPECT_FALSE(quiet.breached);
    EXPECT_TRUE(quiet.partial);
    EXPECT_DOUBLE_EQ(quiet.p50, 0.0);
    EXPECT_DOUBLE_EQ(quiet.p99, 0.0);
    EXPECT_DOUBLE_EQ(quiet.max, 0.0);
    EXPECT_EQ(slo.breachedWindows(), 0u);
}

TEST(SloMonitor, FlushAllTilesWindowsOneToOneWithEpochs)
{
    // flushAll() at every epoch boundary gives every class the same
    // number of windows — the SLO curve tiles the run 1:1 with
    // epochs regardless of which classes saw traffic when. Plain
    // flush() still skips the empty windows.
    SloPolicy policy;
    policy.windowQueries = 8;
    policy.classes.push_back(SloClass{"a", 0.1, 0.9});
    policy.classes.push_back(SloClass{"b", 0.1, 0.9});
    obs::SloMonitor slo(policy);

    slo.observe("a", 0.05); // epoch 0: only a sees traffic
    slo.flushAll();
    slo.observe("b", 0.05); // epoch 1: only b sees traffic
    slo.flushAll();
    ASSERT_EQ(slo.windows().size(), 4u);
    size_t a_windows = 0, b_windows = 0;
    for (const SloWindow &w : slo.windows()) {
        EXPECT_TRUE(w.partial);
        (w.cls == "a" ? a_windows : b_windows) += 1;
    }
    EXPECT_EQ(a_windows, 2u);
    EXPECT_EQ(b_windows, 2u);

    // Final flush(): both windows are empty, nothing new closes.
    slo.flush();
    EXPECT_EQ(slo.windows().size(), 4u);
    // But another flushAll() does emit two more empty windows.
    slo.flushAll();
    EXPECT_EQ(slo.windows().size(), 6u);
}

TEST(SloMonitor, ToJsonSummarizes)
{
    SloPolicy policy;
    policy.windowQueries = 2;
    policy.classes.push_back(SloClass{"c", 0.1, 0.9});
    obs::SloMonitor slo(policy);
    slo.observe("c", 0.2);
    slo.observe("c", 0.2);
    json::Value doc = slo.toJson();
    const auto &root = doc.asObject();
    EXPECT_EQ(root.find("window_queries")->asNumber(), 2.0);
    EXPECT_EQ(root.find("windows")->asArray().size(), 1u);
    EXPECT_EQ(root.find("breached_windows")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(root.find("worst_burn_rate")->asNumber(), 10.0);
}

TEST(SloMonitorDeathTest, MisuseDies)
{
    SloPolicy good;
    good.windowQueries = 4;
    good.classes.push_back(SloClass{"c", 0.1, 0.9});

    EXPECT_DEATH(
        {
            obs::SloMonitor slo(good);
            slo.observe("typo", 0.1);
        },
        "unconfigured class");

    SloPolicy zero = good;
    zero.windowQueries = 0;
    EXPECT_DEATH(obs::SloMonitor{zero}, "windowQueries");

    SloPolicy unnamed = good;
    unnamed.classes.push_back(SloClass{"", 0.1, 0.9});
    EXPECT_DEATH(obs::SloMonitor{unnamed}, "unnamed");

    SloPolicy badObjective = good;
    badObjective.classes[0].objective = 1.0;
    EXPECT_DEATH(obs::SloMonitor{badObjective}, "objective");

    SloPolicy dup = good;
    dup.classes.push_back(SloClass{"c", 0.2, 0.9});
    EXPECT_DEATH(obs::SloMonitor{dup}, "duplicate");
}

// ---- Histogram quantile pins (bench snapshots depend on these) ---------

TEST(HistogramPins, EmptyQuantileIsZero)
{
    metrics::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(h.quantile(q), 0.0) << "q=" << q;
}

TEST(HistogramPins, SingleSampleQuantileIsThatSample)
{
    metrics::Histogram h;
    h.observe(0.42);
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(h.quantile(q), 0.42) << "q=" << q;
}

TEST(HistogramPins, MergedQuantilesEqualPooledObservation)
{
    // The fleet router rolls per-device latency histograms into one
    // fleet series with Histogram::merge. Buckets add and moments
    // combine, so merging shards must be *identical* — count, sum,
    // min/max, and every quantile, bit-for-bit — to having observed
    // the pooled samples into a single histogram.
    metrics::Histogram shard[4];
    metrics::Histogram pooled;
    uint64_t x = 0x2545f4914f6cdd1dull;
    for (int i = 0; i < 4096; ++i) {
        // xorshift64*: deterministic, spans many buckets.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        double v = 1e-6 *
            (1.0 + static_cast<double>(x % 100000) / 100.0);
        shard[i % 4].observe(v);
        pooled.observe(v);
    }

    metrics::Histogram merged;
    for (const auto &s : shard)
        merged.merge(s);

    EXPECT_EQ(merged.count(), pooled.count());
    EXPECT_EQ(merged.sum(), pooled.sum());
    EXPECT_EQ(merged.min(), pooled.min());
    EXPECT_EQ(merged.max(), pooled.max());
    for (int b = 0; b < metrics::Histogram::numBuckets; ++b)
        ASSERT_EQ(merged.bucketCount(b), pooled.bucketCount(b))
            << "bucket " << b;
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0})
        EXPECT_EQ(merged.quantile(q), pooled.quantile(q))
            << "q=" << q;

    // Merging an empty histogram is a no-op.
    metrics::Histogram empty;
    double p99 = merged.quantile(0.99);
    merged.merge(empty);
    EXPECT_EQ(merged.quantile(0.99), p99);
    EXPECT_EQ(merged.count(), pooled.count());
}

TEST(HistogramPins, SnapshotExportsCountAndSum)
{
    auto &h = metrics::Registry::get().histogram(
        "test_obs.pin_series");
    h.observe(1.0);
    h.observe(3.0);
    json::Value doc = metrics::Registry::get().toJson();
    const json::Value *hists =
        doc.asObject().find("histograms");
    ASSERT_NE(hists, nullptr);
    const json::Value *series =
        hists->asObject().find("test_obs.pin_series");
    ASSERT_NE(series, nullptr);
    const auto &obj = series->asObject();
    EXPECT_EQ(obj.find("count")->asNumber(), 2.0);
    EXPECT_EQ(obj.find("sum")->asNumber(), 4.0);
    for (const char *key : {"min", "max", "mean", "p50", "p95",
                            "p99"})
        EXPECT_TRUE(obj.contains(key)) << key;
}

// ---- bench_diff: the regression-gate classifier ------------------------

namespace {

json::Value
miniReport()
{
    json::Value doc;
    doc["bench"] = "mini";
    doc["schema"] = 1;
    doc["scalars"]["qps"] = 100.0;
    doc["scalars"]["served_p99_seconds"] = 0.5;
    doc["scalars"]["wall_seconds"] = 3.0;
    doc["scalars"]["exactly_once"] = 1.0;
    json::Value hist;
    hist["count"] = 32;
    hist["sum"] = 16.0;
    hist["min"] = 0.25;
    hist["max"] = 1.0;
    hist["mean"] = 0.5;
    hist["p50"] = 0.5;
    hist["p95"] = 0.9;
    hist["p99"] = 1.0;
    doc["metrics"]["histograms"]["rag.served_seconds"] =
        std::move(hist);
    return doc;
}

} // namespace

TEST(BenchDiff, DirectionClassification)
{
    using obs::MetricDirection;
    EXPECT_EQ(scalarDirection("qps"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(scalarDirection("speedup_b8_overlap_vs_seq"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(scalarDirection("served_p99_seconds"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(scalarDirection("task_timeouts"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(scalarDirection("slo_worst_burn_rate"),
              MetricDirection::LowerIsBetter);
    // Degradation ratios gate lower even though "ratio" alone would
    // not: the "degradation" token wins.
    EXPECT_EQ(scalarDirection("p99_degradation_ratio"),
              MetricDirection::LowerIsBetter);
    // Host wall time is machine-dependent: never gate on it.
    EXPECT_EQ(scalarDirection("wall_seconds"),
              MetricDirection::Informational);
    EXPECT_EQ(scalarDirection("host_cpus"),
              MetricDirection::Informational);
    EXPECT_EQ(scalarDirection("mystery_knob"),
              MetricDirection::Informational);
    EXPECT_EQ(histogramDirection("rag.served_seconds"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(histogramDirection("some.count_series"),
              MetricDirection::Informational);
}

TEST(BenchDiff, IdenticalSnapshotsPass)
{
    json::Value doc = miniReport();
    obs::BenchDiffResult res = diffBenchReports(doc, doc);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.regressions, 0u);
    EXPECT_EQ(res.improvements, 0u);
    EXPECT_GT(res.compared, 0u);
    EXPECT_EQ(res.bench, "mini");
}

TEST(BenchDiff, GatesPastThresholdInBadDirectionOnly)
{
    json::Value base = miniReport();

    // 12% worse latency: regression at the default 10% gate.
    json::Value cur = miniReport();
    cur["scalars"]["served_p99_seconds"] = 0.56;
    EXPECT_FALSE(diffBenchReports(base, cur).ok());

    // 8% worse: under threshold, passes.
    cur["scalars"]["served_p99_seconds"] = 0.54;
    EXPECT_TRUE(diffBenchReports(base, cur).ok());

    // 12% *better* latency: improvement, not regression.
    cur["scalars"]["served_p99_seconds"] = 0.44;
    obs::BenchDiffResult res = diffBenchReports(base, cur);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.improvements, 1u);

    // Throughput collapse gates in the other direction.
    cur = miniReport();
    cur["scalars"]["qps"] = 85.0;
    EXPECT_FALSE(diffBenchReports(base, cur).ok());

    // Wall clock may drift arbitrarily: informational.
    cur = miniReport();
    cur["scalars"]["wall_seconds"] = 30.0;
    EXPECT_TRUE(diffBenchReports(base, cur).ok());

    // A tighter threshold catches what the default lets through.
    cur = miniReport();
    cur["scalars"]["served_p99_seconds"] = 0.54;
    obs::BenchDiffOptions tight;
    tight.thresholdPct = 5.0;
    EXPECT_FALSE(diffBenchReports(base, cur, tight).ok());
}

TEST(BenchDiff, MissingKeysReportButNeverGate)
{
    json::Value base = miniReport();
    base["scalars"]["retired_metric"] = 7.0;
    json::Value cur = miniReport();
    cur["scalars"]["brand_new_metric"] = 9.0;

    obs::BenchDiffResult res = diffBenchReports(base, cur);
    EXPECT_TRUE(res.ok());
    bool saw_only_base = false, saw_only_current = false;
    for (const auto &d : res.deltas) {
        saw_only_base |= d.onlyBase && d.key == "retired_metric";
        saw_only_current |=
            d.onlyCurrent && d.key == "brand_new_metric";
    }
    EXPECT_TRUE(saw_only_base);
    EXPECT_TRUE(saw_only_current);
}

TEST(BenchDiff, HistogramPercentilesGateByCount)
{
    json::Value base = miniReport();
    json::Value cur = miniReport();
    cur["metrics"]["histograms"]["rag.served_seconds"]["p99"] = 1.2;
    EXPECT_FALSE(diffBenchReports(base, cur).ok());

    // Below the sample floor the percentile is noise: skipped.
    obs::BenchDiffOptions sparse;
    sparse.minHistogramCount = 64;
    EXPECT_TRUE(diffBenchReports(base, cur, sparse).ok());
}

TEST(BenchDiff, DegradedFixtureFiresTheGate)
{
    // The self-test bench_compare's ctest gate relies on: a snapshot
    // degraded 12% in every gated direction must fail a 10% gate and
    // pass a 20% one.
    json::Value base = miniReport();
    json::Value worse = degradeBenchReport(base, 12.0);

    obs::BenchDiffResult res = diffBenchReports(base, worse);
    EXPECT_FALSE(res.ok());
    EXPECT_GT(res.regressions, 1u); // scalars AND histogram p99s

    obs::BenchDiffOptions loose;
    loose.thresholdPct = 20.0;
    EXPECT_TRUE(diffBenchReports(base, worse, loose).ok());

    // Informational keys and histogram counts pass through
    // untouched — degrading must not fake a coverage change.
    const auto &scal = worse.asObject()
                           .find("scalars")->asObject();
    EXPECT_EQ(scal.find("wall_seconds")->asNumber(), 3.0);
    const auto &hist = worse.asObject()
                           .find("metrics")->asObject()
                           .find("histograms")->asObject()
                           .find("rag.served_seconds")->asObject();
    EXPECT_EQ(hist.find("count")->asNumber(), 32.0);
    EXPECT_GT(hist.find("p99")->asNumber(), 1.0);
    // Higher-is-better scalars degrade downward.
    EXPECT_LT(scal.find("qps")->asNumber(), 100.0);
}

// ---- Trace writer: atomic, and loud on a bad path ----------------------

TEST(TraceWriter, WriteIsAtomicAndParsable)
{
    const char *path = "/tmp/cisram_test_obs_trace.json";
    std::remove(path);
    std::remove((std::string(path) + ".tmp").c_str());

    auto &tracer = trace::Tracer::get();
    tracer.enable(path);
    tracer.async('b', 1, 0, "query", "serving.query", 1.0, 42);
    tracer.async('e', 1, 0, "query", "serving.query", 2.0, 42);
    tracer.async('s', 1, 0, "flow", "serving.flow", 1.5, 7);
    tracer.async('f', 1, 0, "flow", "serving.flow", 1.8, 7);
    tracer.write();

    std::string text;
    {
        std::FILE *f = std::fopen(path, "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(text, doc, &err)) << err;
    EXPECT_FALSE(
        doc.asObject().find("traceEvents")->asArray().empty());

    // No temp file survives a successful write.
    struct stat st;
    EXPECT_NE(stat((std::string(path) + ".tmp").c_str(), &st), 0);
    std::remove(path);
}

TEST(TraceWriterDeathTest, UnwritablePathDiesLoudly)
{
    // A CISRAM_TRACE pointing into a directory that does not exist
    // must kill the run at write time, not silently drop the
    // timeline the user asked for.
    EXPECT_EXIT(
        {
            auto &tracer = trace::Tracer::get();
            tracer.enable(
                "/nonexistent_cisram_dir/subdir/trace.json");
            tracer.instant(0, 0, "x", 1.0);
            tracer.write();
        },
        testing::ExitedWithCode(1), "CISRAM_TRACE");
}
