/**
 * @file
 * Cross-module integration through the umbrella header: the planning
 * layer's decisions agree with the simulator's measured outcomes,
 * and the full host -> device -> host pipeline composes.
 */

#include <gtest/gtest.h>

#include "cisram.hh"
#include "common/rng.hh"

using namespace cisram;

TEST(Integration, PlannerDecisionsMatchMeasuredKernels)
{
    // Calibrate the framework from the device, as a user would.
    apu::ApuDevice dev;
    model::SubgroupReductionModel sg;
    sg.calibrate(dev.core(0));
    model::CostTable table;

    // The reduction planner says temporal mapping wins for the
    // paper's BMM reduction length (K = 64 words).
    core::ReductionPlan red = core::planReduction(table, sg, 64);
    EXPECT_EQ(red.best, core::ReductionMapping::Temporal);

    // The coalescing planner says the RHS rows should coalesce.
    core::CoalescePlan co = core::planDmaCoalescing(table, 2048, 64);
    EXPECT_TRUE(co.coalesce);

    // And the simulator agrees: the variant embodying those choices
    // beats the one that ignores them.
    core::BmmShape shape{1024, 1024, 1024};
    auto measure = [&](core::BmmVariant v) {
        apu::ApuDevice d;
        d.core(0).setMode(apu::ExecMode::TimingOnly);
        return kernels::runBmmApu(d, shape, v, nullptr)
            .cycles.total();
    };
    EXPECT_LT(measure(core::BmmVariant::Opt1Opt2),
              measure(core::BmmVariant::Baseline));
    EXPECT_LT(measure(core::BmmVariant::AllOpts),
              measure(core::BmmVariant::Opt1));
}

TEST(Integration, LayoutPlanFeedsDmaEngineFeedsKernel)
{
    // Broadcast-friendly layout -> smaller lookup window -> cheaper
    // measured LHS stage, end to end.
    std::vector<size_t> tile_shape = {32, 64};
    core::BroadcastSweep sweep{0, 32};
    size_t span_rm = core::maxLookupSpan(
        core::Layout::rowMajor(tile_shape), sweep);
    size_t span_bf = core::maxLookupSpan(
        core::broadcastFriendly(tile_shape, 0), sweep);
    EXPECT_GT(span_rm, 10 * span_bf);

    core::BmmShape shape{1024, 1024, 1024};
    auto lhs = [&](core::BmmVariant v) {
        apu::ApuDevice d;
        d.core(0).setMode(apu::ExecMode::TimingOnly);
        return kernels::runBmmApu(d, shape, v, nullptr)
            .cycles.ldLhs;
    };
    EXPECT_GT(lhs(core::BmmVariant::Opt1),
              5.0 * lhs(core::BmmVariant::Opt1Opt3));
}

TEST(Integration, HostPipelineWithGdlAndRvv)
{
    // Host stages two vectors over PCIe, a GDL task computes with
    // the RVV abstraction, the host reads the result back.
    apu::ApuDevice dev;
    gdl::GdlContext host(dev);
    size_t n = dev.spec().vrLength;

    Rng rng(2024);
    std::vector<uint16_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = rng.nextU16();
        b[i] = rng.nextU16();
    }
    gdl::MemHandle ha = host.memAllocAligned(n * 2);
    gdl::MemHandle hb = host.memAllocAligned(n * 2);
    gdl::MemHandle hc = host.memAllocAligned(n * 2);
    host.memCpyToDev(ha, a.data(), n * 2);
    host.memCpyToDev(hb, b.data(), n * 2);

    int rc = host.runTask([&](apu::ApuCore &core) {
        core.dmaL4ToL1(0, ha.addr);
        core.dmaL4ToL1(1, hb.addr);
        rvv::RvvUnit v(core);
        v.vle16(1, 0);
        v.vle16(2, 1);
        v.vmsltu_vv(3, 1, 2);
        v.vmerge_vvm(4, 2, 1, 3); // max(a, b)
        v.vse16(2, 4);
        core.dmaL1ToL4(hc.addr, 2);
        return 0;
    });
    ASSERT_EQ(rc, 0);

    std::vector<uint16_t> c(n);
    host.memCpyFromDev(c.data(), hc, n * 2);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(c[i], std::max(a[i], b[i])) << i;
    host.memFree(ha);
    host.memFree(hb);
    host.memFree(hc);
}

TEST(Integration, FrameworkEndToEndOnForeignDevice)
{
    // Port the framework to a "different" device (a hypothetical
    // half-clock, double-VR part): recalibrate Eq. 1 by profiling,
    // as Section 3.1 prescribes, and validate predictions there.
    apu::ApuSpec spec;
    spec.clockHz = 250.0e6;
    apu::TimingParams timing;
    timing.compute.sgStageBase = 200; // a slower reduction unit
    apu::ApuDevice dev(spec, timing);

    model::SubgroupReductionModel sg;
    sg.calibrate(dev.core(0));
    EXPECT_LT(sg.fitError(), 0.05);

    gvml::Gvml g(dev.core(0));
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    dev.core(0).stats().reset();
    g.addSubgrpS16(gvml::Vr(0), gvml::Vr(1), 4096, 2);
    double meas = dev.core(0).stats().cycles();
    EXPECT_NEAR(sg.predict(4096, 2), meas, meas * 0.10);
}
