/**
 * @file
 * Analytical-framework tests: cost table fidelity against the
 * simulator, Eq. 1 calibration quality, the latency estimator,
 * roofline geometry, and design-space sweeps.
 */

#include <gtest/gtest.h>

#include "apusim/apu.hh"
#include "gvml/gvml.hh"
#include "model/dse.hh"
#include "model/latency_estimator.hh"
#include "model/roofline.hh"
#include "model/sg_model.hh"

using namespace cisram;
using namespace cisram::model;

TEST(CostTable, MatchesPaperFits)
{
    CostTable t;
    // Table 4 spot checks.
    EXPECT_DOUBLE_EQ(t.dmaL4L2(0), 548);
    EXPECT_NEAR(t.dmaL4L2(65536), 0.63 * 65536 + 548, 1e-9);
    EXPECT_NEAR(t.dmaL4L3(1 << 20), 0.19 * (1 << 20) + 41164, 1e-9);
    EXPECT_DOUBLE_EQ(t.pioLd(100), 5700);
    EXPECT_DOUBLE_EQ(t.pioSt(100), 6100);
    EXPECT_NEAR(t.lookup(1000), 7779, 1e-9);
    EXPECT_DOUBLE_EQ(t.shiftE(3), 373 * 3);
    EXPECT_DOUBLE_EQ(t.shiftE(400), 8 + 100);
    EXPECT_DOUBLE_EQ(t.shiftE(0), t.cpy);
}

TEST(CostTable, SecondsAtClock)
{
    CostTable t;
    EXPECT_DOUBLE_EQ(t.seconds(5e8), 1.0);
}

class FrameworkVsSimulator : public ::testing::Test
{
  protected:
    FrameworkVsSimulator() : g(dev.core(0))
    {
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
    }

    /** Simulator cycles for `fn`, from a clean ledger. */
    double
    simCycles(const std::function<void()> &fn)
    {
        dev.core(0).stats().reset();
        fn();
        return dev.core(0).stats().cycles();
    }

    apu::ApuDevice dev;
    gvml::Gvml g;
    LatencyEstimator est;
};

TEST_F(FrameworkVsSimulator, DmaPredictionsWithinTwoPercent)
{
    using gvml::Vmr;
    struct Case
    {
        const char *name;
        std::function<void()> sim;
        std::function<void(LatencyEstimator &)> mod;
    } cases[] = {
        {"dma_l4_l1",
         [&] { g.directDmaL4ToL1_32k(Vmr(0), 0); },
         [](LatencyEstimator &e) { e.directDmaL4ToL1_32k(); }},
        {"dma_l1_l4",
         [&] { g.directDmaL1ToL4_32k(0, Vmr(0)); },
         [](LatencyEstimator &e) { e.directDmaL1ToL4_32k(); }},
        {"dma_l4_l2_64k",
         [&] { g.fastDmaL4ToL2(0, 0, 65536); },
         [](LatencyEstimator &e) { e.fastDmaL4ToL2(65536); }},
        {"dma_l2_l1",
         [&] { g.directDmaL2ToL1_32k(Vmr(0)); },
         [](LatencyEstimator &e) { e.directDmaL2ToL1_32k(); }},
    };
    for (auto &c : cases) {
        double sim = simCycles(c.sim);
        est.reset();
        c.mod(est);
        EXPECT_NEAR(est.cycles(), sim, sim * 0.02) << c.name;
    }
}

TEST_F(FrameworkVsSimulator, ComputePredictionsTight)
{
    using gvml::Vr;
    double sim = simCycles([&] {
        for (int i = 0; i < 100; ++i)
            g.addU16(Vr(0), Vr(1), Vr(2));
    });
    est.reset();
    est.repeat(100, [&] { est.gvmlAddU16(); });
    // The simulator adds VCU decode; the framework's constant folds
    // it approximately. Within 20% per the op family.
    EXPECT_NEAR(est.cycles(), sim, sim * 0.2);
}

TEST(SgModel, CalibratesBelowFivePercent)
{
    apu::ApuDevice dev;
    SubgroupReductionModel sg;
    sg.calibrate(dev.core(0));
    EXPECT_TRUE(sg.fitted());
    EXPECT_LT(sg.fitError(), 0.05);
}

TEST(SgModel, PredictionsTrackSimulator)
{
    apu::ApuDevice dev;
    auto &core = dev.core(0);
    SubgroupReductionModel sg;
    sg.calibrate(core);

    gvml::Gvml g(core);
    core.setMode(apu::ExecMode::TimingOnly);
    // Points off the calibration grid.
    struct
    {
        size_t grp, subgrp;
    } points[] = {{32, 1}, {128, 8}, {2048, 2}, {8192, 512},
                  {32768, 4}};
    for (auto p : points) {
        core.stats().reset();
        g.addSubgrpS16(gvml::Vr(0), gvml::Vr(1), p.grp, p.subgrp);
        double sim = core.stats().cycles();
        EXPECT_NEAR(sg.predict(p.grp, p.subgrp), sim, sim * 0.10)
            << p.grp << "/" << p.subgrp;
    }
}

TEST(SgModel, CostGrowsWithGroupSize)
{
    apu::ApuDevice dev;
    SubgroupReductionModel sg;
    sg.calibrate(dev.core(0));
    EXPECT_GT(sg.predict(1024, 1), sg.predict(64, 1));
    EXPECT_GT(sg.predict(32768, 1), sg.predict(1024, 1));
}

TEST(LatencyEstimator, RepeatScopesScaleAndNest)
{
    LatencyEstimator est;
    est.gvmlAddU16();
    double one = est.cycles();
    est.reset();
    est.repeat(10, [&] {
        est.gvmlAddU16();
        est.repeat(5, [&] { est.gvmlAddU16(); });
    });
    EXPECT_DOUBLE_EQ(est.cycles(), 10 * one + 50 * one);
}

TEST(LatencyEstimator, Fig6HistogramStructure)
{
    // Transliteration of the paper's Fig. 6 modeling example
    // (Histogram from Phoenix): the estimator must accept the same
    // call sequence and report a positive latency in microseconds.
    LatencyEstimator fw;
    double total_data = 1024.0 * 1024 * 256 * 3;
    double tile_data = 8.0 * 1024 * 48;
    double tiles = total_data / tile_data;
    fw.repeat(tiles, [&] {
        fw.repeat(48, [&] {
            fw.repeat(2, [&] { fw.fastDmaL4ToL2(32 * 512); });
            fw.directDmaL2ToL1_32k();
        });
        fw.repeat(48, [&] {
            fw.gvmlLoad16();
            fw.repeat(8, [&] {
                fw.gvmlCpySubgrp16Grp();
                fw.gvmlCreateGrpIndexU16();
                fw.gvmlCpyImm16();
                fw.repeat(8, [&] {
                    fw.gvmlCpy16Msk();
                    fw.gvmlSrImm16();
                    fw.gvmlEq16();
                    fw.gvmlCpy16Msk();
                });
            });
        });
        fw.repeat(8, [&] {
            fw.gvmlStore16();
            fw.directDmaL1ToL4_32k();
        });
    });
    EXPECT_GT(fw.microseconds(), 0.0);
    // Dominated by the L4->L2 DMA of the 768 MB input: 48 x 2
    // half-tile transfers of 16 KiB per tile across 2048 tiles is
    // ~4.3 s of DMA (sanity band, not a golden value).
    EXPECT_GT(fw.seconds(), 2.0);
    EXPECT_LT(fw.seconds(), 8.0);
}

TEST(Roofline, GeometryAndRidge)
{
    Roofline r(1.0e12, 25.0e9);
    EXPECT_DOUBLE_EQ(r.attainable(1.0), 25.0e9);
    EXPECT_DOUBLE_EQ(r.attainable(1.0e6), 1.0e12);
    EXPECT_DOUBLE_EQ(r.ridge(), 40.0);
    // Attainable is monotone and capped.
    EXPECT_LE(r.attainable(39.9), r.attainable(40.1));
    EXPECT_DOUBLE_EQ(r.attainable(r.ridge()), 1.0e12);
}

TEST(Roofline, U16MacPeakFromCostTable)
{
    CostTable t;
    Roofline r = Roofline::u16MacRoofline(t, 23.8e9);
    // 2 ops * 32768 lanes * 4 cores * 500 MHz / 127 cycles ~= 1 Tops.
    EXPECT_NEAR(r.peakOpsPerSec(), 1.03e12, 0.05e12);
    Roofline rb = Roofline::binaryMacRoofline(t, 23.8e9);
    EXPECT_GT(rb.peakOpsPerSec(), 10.0e12); // binary ops much higher
}

TEST(Dse, SweepImprovesWithBandwidth)
{
    DesignSpaceExplorer dse;
    auto knob = DesignSpaceExplorer::dmaBandwidthScale({1, 2, 4, 8});
    auto objective = [](const CostTable &t) {
        return t.dmaL4L2(1 << 20); // latency of a 1 MiB transfer
    };
    auto results = dse.sweep(knob, objective);
    ASSERT_EQ(results.size(), 4u);
    for (size_t i = 1; i < results.size(); ++i)
        EXPECT_LT(results[i].objective, results[i - 1].objective);
}

TEST(Dse, TwoDimensionalSweepCoversGrid)
{
    DesignSpaceExplorer dse;
    auto a = DesignSpaceExplorer::dmaBandwidthScale({1, 2});
    auto b = DesignSpaceExplorer::lookupCostScale({0.5, 1, 2});
    auto results = dse.sweep2D(a, b, [](const CostTable &t) {
        return t.dmaL4L2(65536) + t.lookup(1024);
    });
    EXPECT_EQ(results.size(), 6u);
}
