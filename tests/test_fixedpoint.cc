/**
 * @file
 * Fixed-point trigonometry tests: accuracy against libm, symmetry,
 * quadrant identities.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/fixedpoint.hh"

using namespace cisram;

TEST(FixedPoint, KnownAngles)
{
    EXPECT_EQ(sinFx(0x0000), 0);
    EXPECT_EQ(sinFx(0x4000), 32767);  // pi/2
    EXPECT_EQ(sinFx(0x8000), 0);      // pi
    EXPECT_EQ(sinFx(0xc000), -32767); // 3*pi/2
    EXPECT_EQ(cosFx(0x0000), 32767);
    EXPECT_EQ(cosFx(0x8000), -32767);
}

TEST(FixedPoint, AccuracyAgainstLibm)
{
    for (uint32_t p = 0; p < 0x10000; p += 13) {
        uint16_t phase = static_cast<uint16_t>(p);
        double angle = (p / 65536.0) * 2.0 * M_PI;
        double got = q15ToDouble(sinFx(phase));
        EXPECT_NEAR(got, std::sin(angle), 3e-4) << "phase=" << p;
        double got_c = q15ToDouble(cosFx(phase));
        EXPECT_NEAR(got_c, std::cos(angle), 3e-4) << "phase=" << p;
    }
}

TEST(FixedPoint, OddSymmetry)
{
    for (uint32_t p = 1; p < 0x8000; p += 97) {
        uint16_t phase = static_cast<uint16_t>(p);
        uint16_t neg = static_cast<uint16_t>(0x10000 - p);
        EXPECT_EQ(sinFx(phase), -sinFx(neg)) << p;
    }
}

TEST(FixedPoint, PythagoreanWithinTolerance)
{
    for (uint32_t p = 0; p < 0x10000; p += 251) {
        uint16_t phase = static_cast<uint16_t>(p);
        double s = q15ToDouble(sinFx(phase));
        double c = q15ToDouble(cosFx(phase));
        EXPECT_NEAR(s * s + c * c, 1.0, 2e-3) << p;
    }
}

TEST(FixedPoint, RadiansToPhase)
{
    EXPECT_EQ(radiansToPhase(0.0), 0);
    EXPECT_EQ(radiansToPhase(M_PI), 0x8000);
    EXPECT_EQ(radiansToPhase(M_PI / 2.0), 0x4000);
    // Wraps full turns.
    EXPECT_EQ(radiansToPhase(2.0 * M_PI + M_PI), 0x8000);
    EXPECT_EQ(radiansToPhase(-M_PI / 2.0), 0xc000);
}
