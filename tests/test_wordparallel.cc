/**
 * @file
 * Equivalence gates for the word-parallel evaluation paths: the
 * bit-processor array's word-parallel op bodies against the retained
 * per-bit scalar reference (randomized op-sequence sweep over all
 * latch sources, boolean ops, and slice masks, on word-aligned and
 * ragged bank geometries), the VrFile multi-plane extract/insert fast
 * paths, replayed microcode plans against direct emission, the fused
 * retrieval MAC against the unfused op triple (VR state and
 * CycleStats identical), the single-pass associative max/min against
 * brute force, the memoized DRAM range-trace cache (timing, counter,
 * and fault-draw identity between cold and warm calls), the serving
 * admission boundary contracts of DESIGN.md section 7, and the
 * histogram quantile bucket-boundary pin.
 */

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "apusim/apu.hh"
#include "apusim/bitproc.hh"
#include "apusim/vr_file.hh"
#include "baseline/workloads.hh"
#include "common/gsifloat.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/status.hh"
#include "dramsim/dram_sim.hh"
#include "fault/fault.hh"
#include "gvml/gvml.hh"
#include "gvml/microcode.hh"
#include "kernels/bmm.hh"
#include "kernels/serving.hh"

using namespace cisram;
using namespace cisram::apu;
using namespace cisram::gvml;

namespace {

/** Disarm on scope exit so no test leaks an armed plan. */
struct PlanGuard
{
    explicit PlanGuard(const std::string &spec)
    {
        auto p = fault::FaultPlan::parse(spec);
        EXPECT_TRUE(p.ok()) << p.status().toString();
        fault::armPlan(*p);
    }
    ~PlanGuard() { fault::disarm(); }
};

constexpr LatchSrc kLatchSrcs[] = {
    LatchSrc::RL,   LatchSrc::GHL,  LatchSrc::GVL, LatchSrc::RL_N,
    LatchSrc::RL_S, LatchSrc::RL_E, LatchSrc::RL_W};

constexpr BoolOp kBoolOps[] = {BoolOp::And, BoolOp::Or, BoolOp::Xor};

/**
 * Two identically seeded engines — one on the word-parallel fast
 * path, one routed through the retained scalar reference — driven
 * with the same op sequence and compared state-for-state.
 */
struct BpPair
{
    BpPair(unsigned nvr, size_t len, unsigned banks, uint64_t seed)
        : vrsWord(nvr, len, banks), vrsScalar(nvr, len, banks),
          word(vrsWord), scalar(vrsScalar)
    {
        scalar.setScalarReference(true);
        Rng rng(seed);
        for (unsigned vr = 0; vr < nvr; ++vr)
            for (size_t i = 0; i < len; ++i) {
                uint16_t v = rng.nextU16();
                vrsWord[vr][i] = v;
                vrsScalar[vr][i] = v;
            }
    }

    void
    expectIdentical(const char *where) const
    {
        ASSERT_EQ(word.uopCount(), scalar.uopCount()) << where;
        for (unsigned s = 0; s < 16; ++s)
            ASSERT_TRUE(word.rlPlane(s) == scalar.rlPlane(s))
                << where << ": RL slice " << s;
        for (unsigned b = 0; b < vrsWord.numBanks(); ++b)
            for (unsigned s = 0; s < 16; ++s)
                ASSERT_EQ(word.ghlBit(b, s), scalar.ghlBit(b, s))
                    << where << ": GHL bank " << b << " slice " << s;
        ASSERT_TRUE(word.gvl() == scalar.gvl()) << where << ": GVL";
        for (unsigned vr = 0; vr < vrsWord.numVrs(); ++vr)
            for (size_t i = 0; i < vrsWord.length(); ++i)
                ASSERT_EQ(vrsWord[vr][i], vrsScalar[vr][i])
                    << where << ": VR " << vr << " elem " << i;
    }

    VrFile vrsWord;
    VrFile vrsScalar;
    BitProcArray word;
    BitProcArray scalar;
};

/**
 * Drive both engines of `p` through `steps` random micro-ops drawn
 * from the full Table 2 surface: every op kind, every latch source
 * (including the bank-edge E/W shifts), every boolean op, and a mix
 * of full, single-slice, and random slice masks.
 */
void
runRandomOps(BpPair &p, uint64_t seed, int steps)
{
    Rng rng(seed);
    auto mask = [&]() -> uint16_t {
        switch (rng.nextU16() % 3) {
          case 0:
            return BitProcArray::fullMask;
          case 1:
            return static_cast<uint16_t>(1u << (rng.nextU16() % 16));
          default: {
            uint16_t m = rng.nextU16();
            return m ? m : BitProcArray::fullMask;
          }
        }
    };
    auto vr = [&] { return rng.nextU16() % p.vrsWord.numVrs(); };
    auto src = [&] { return kLatchSrcs[rng.nextU16() % 7]; };
    auto bop = [&] { return kBoolOps[rng.nextU16() % 3]; };

    for (int step = 0; step < steps; ++step) {
        switch (rng.nextU16() % 11) {
          case 0: {
            uint16_t m = mask();
            unsigned v = vr();
            p.word.rlFromVr(m, v);
            p.scalar.rlFromVr(m, v);
            break;
          }
          case 1: {
            uint16_t m = mask();
            unsigned v0 = vr(), v1 = vr();
            p.word.rlFromVrAndVr(m, v0, v1);
            p.scalar.rlFromVrAndVr(m, v0, v1);
            break;
          }
          case 2: {
            uint16_t m = mask();
            LatchSrc s = src();
            p.word.rlFromLatch(m, s);
            p.scalar.rlFromLatch(m, s);
            break;
          }
          case 3: {
            uint16_t m = mask();
            unsigned v = vr();
            BoolOp o = bop();
            LatchSrc s = src();
            p.word.rlFromVrOpLatch(m, v, o, s);
            p.scalar.rlFromVrOpLatch(m, v, o, s);
            break;
          }
          case 4: {
            uint16_t m = mask();
            BoolOp o = bop();
            unsigned v = vr();
            p.word.rlOpVr(m, o, v);
            p.scalar.rlOpVr(m, o, v);
            break;
          }
          case 5: {
            uint16_t m = mask();
            BoolOp o = bop();
            LatchSrc s = src();
            p.word.rlOpLatch(m, o, s);
            p.scalar.rlOpLatch(m, o, s);
            break;
          }
          case 6: {
            uint16_t m = mask();
            BoolOp o = bop(), o2 = bop();
            unsigned v = vr();
            LatchSrc s = src();
            p.word.rlOpVrOpLatch(m, o, v, o2, s);
            p.scalar.rlOpVrOpLatch(m, o, v, o2, s);
            break;
          }
          case 7: {
            uint16_t m = mask();
            unsigned v = vr();
            bool neg = (rng.nextU16() & 1) != 0;
            p.word.writeVrFromRl(m, v, neg);
            p.scalar.writeVrFromRl(m, v, neg);
            break;
          }
          case 8: {
            uint16_t m = mask();
            bool val = (rng.nextU16() & 1) != 0;
            p.word.rlFromImmediate(m, val);
            p.scalar.rlFromImmediate(m, val);
            break;
          }
          case 9: {
            uint16_t m = mask();
            p.word.loadGhlFromRl(m);
            p.scalar.loadGhlFromRl(m);
            break;
          }
          default: {
            uint16_t m = mask();
            p.word.loadGvlFromRl(m);
            p.scalar.loadGvlFromRl(m);
            break;
          }
        }
        if (step % 16 == 0)
            p.expectIdentical("mid-sequence");
        if (::testing::Test::HasFatalFailure())
            return;
    }
    p.expectIdentical("final");
}

} // namespace

// ---- BitProcArray: word path == scalar reference ------------------------

TEST(WordParallelBitProc, RandomOpsWordAligned)
{
    // 256 elems / 4 banks: 64 columns per bank, bank edges exactly
    // on 64-bit word boundaries.
    BpPair p(8, 256, 4, /*seed=*/101);
    runRandomOps(p, 202, 400);
}

TEST(WordParallelBitProc, RandomOpsRaggedMidWordBanks)
{
    // 100 elems / 4 banks: 25 columns per bank — every bank edge
    // falls mid-word and the plane has a 36-bit ragged tail word.
    BpPair p(8, 100, 4, 303);
    runRandomOps(p, 404, 400);
}

TEST(WordParallelBitProc, RandomOpsBankSpanningWords)
{
    // 130 elems / 2 banks: 65 columns per bank — banks span a word
    // boundary, exercising cross-word E/W shift carries.
    BpPair p(8, 130, 2, 505);
    runRandomOps(p, 606, 400);
}

TEST(WordParallelBitProc, AllSingleSliceMasksAllLatchSrcs)
{
    // Directed sweep: every single-slice mask crossed with every
    // latch source, on the ragged geometry.
    BpPair p(8, 100, 4, 707);
    for (unsigned s = 0; s < 16; ++s) {
        uint16_t m = static_cast<uint16_t>(1u << s);
        p.word.rlFromVr(m, s % 8);
        p.scalar.rlFromVr(m, s % 8);
        p.word.loadGhlFromRl(m);
        p.scalar.loadGhlFromRl(m);
        p.word.loadGvlFromRl(m);
        p.scalar.loadGvlFromRl(m);
        for (LatchSrc src : kLatchSrcs) {
            p.word.rlOpLatch(m, BoolOp::Or, src);
            p.scalar.rlOpLatch(m, BoolOp::Or, src);
        }
        p.word.writeVrFromRl(m, (s + 1) % 8, s % 2 == 0);
        p.scalar.writeVrFromRl(m, (s + 1) % 8, s % 2 == 0);
        p.expectIdentical("slice sweep");
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

TEST(WordParallelBitProc, GhlBroadcastRaggedTail)
{
    // GHL semantics on a ragged geometry: a single set column in
    // bank 2 must broadcast to exactly bank 2's 25 columns (50..74)
    // and nowhere else — the word-granular broadcast must not bleed
    // across the mid-word bank edges.
    VrFile vrs(8, 100, 4);
    BitProcArray bp(vrs);
    vrs[0][60] = 0x0001; // slice 0, bank 2 only
    bp.rlFromVr(1, 0);
    bp.loadGhlFromRl(1);
    for (unsigned b = 0; b < 4; ++b)
        EXPECT_EQ(bp.ghlBit(b, 0), b == 2) << "bank " << b;
    bp.rlFromLatch(1, LatchSrc::GHL);
    const BitVector &rl = bp.rlPlane(0);
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(rl.get(i), i >= 50 && i < 75) << "col " << i;
}

TEST(WordParallelBitProc, BankEdgeShiftsZeroFill)
{
    // E/W neighbour reads must zero-fill at every bank's edge
    // columns, including mid-word edges (cols 0/25/50/75 for W,
    // 24/49/74/99 for E).
    VrFile vrs(8, 100, 4);
    BitProcArray bp(vrs);
    for (size_t i = 0; i < 100; ++i)
        vrs[0][i] = 0x0001;
    bp.rlFromVr(1, 0);
    bp.rlFromLatch(1, LatchSrc::RL_W);
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(bp.rlPlane(0).get(i), i % 25 != 0) << "W col " << i;
    bp.rlFromVr(1, 0);
    bp.rlFromLatch(1, LatchSrc::RL_E);
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(bp.rlPlane(0).get(i), i % 25 != 24)
            << "E col " << i;
}

TEST(WordParallelBitProcDeath, NonDividingLengthRefused)
{
    // The word-parallel bank-edge masks rely on every bank owning a
    // full complement of columns; a non-dividing length must be
    // refused at construction, not silently mis-masked.
    EXPECT_DEATH(VrFile(8, 101, 4), "");
}

// ---- VrFile: multi-plane fast paths == per-slice reference --------------

TEST(WordParallelVrFile, SlicePlanesMatchPerSliceExtraction)
{
    for (size_t len : {256u, 100u, 130u}) {
        VrFile vrs(4, len, 2);
        Rng rng(42 + len);
        for (auto &v : vrs[1])
            v = rng.nextU16();
        for (uint16_t mask :
             {uint16_t{0xffff}, uint16_t{0x0001}, uint16_t{0x8000},
              uint16_t{0x5a5a}, uint16_t{0x0300}}) {
            std::array<BitVector, 16> fast;
            for (auto &p : fast)
                p = BitVector(len);
            vrs.slicePlanes(1, mask, fast);
            for (unsigned s = 0; s < 16; ++s) {
                if (!(mask & (1u << s)))
                    continue;
                ASSERT_TRUE(fast[s] == vrs.slicePlane(1, s))
                    << "len " << len << " mask " << mask
                    << " slice " << s;
            }
        }
    }
}

TEST(WordParallelVrFile, SlicePlanesAndMatchesPlaneAnd)
{
    VrFile vrs(4, 130, 2);
    Rng rng(77);
    for (auto &v : vrs[0])
        v = rng.nextU16();
    for (auto &v : vrs[1])
        v = rng.nextU16();
    std::array<BitVector, 16> fused;
    for (auto &p : fused)
        p = BitVector(vrs.length());
    vrs.slicePlanesAnd(0, 1, 0xffff, fused);
    for (unsigned s = 0; s < 16; ++s) {
        BitVector ref = vrs.slicePlane(0, s);
        ref &= vrs.slicePlane(1, s);
        ASSERT_TRUE(fused[s] == ref) << "slice " << s;
    }
}

TEST(WordParallelVrFile, SetSlicePlanesMatchesPerSliceInsertion)
{
    for (bool negate : {false, true}) {
        VrFile fast(4, 100, 4), ref(4, 100, 4);
        Rng rng(negate ? 88 : 99);
        for (size_t i = 0; i < 100; ++i) {
            uint16_t v = rng.nextU16();
            fast[2][i] = v;
            ref[2][i] = v;
        }
        std::array<BitVector, 16> planes;
        for (auto &p : planes) {
            p = BitVector(100);
            for (size_t i = 0; i < 100; ++i)
                p.set(i, (rng.nextU16() & 1) != 0);
        }
        const uint16_t mask = 0x7e81; // mixed set/clear slices
        fast.setSlicePlanes(2, mask, planes, negate);
        for (unsigned s = 0; s < 16; ++s) {
            if (!(mask & (1u << s)))
                continue;
            BitVector p = planes[s];
            if (negate)
                p.invert();
            ref.setSlicePlane(2, s, p);
        }
        for (size_t i = 0; i < 100; ++i)
            ASSERT_EQ(fast[2][i], ref[2][i])
                << "negate " << negate << " elem " << i;
    }
}

// ---- Microcode plan cache: replay == direct emission --------------------

namespace {

struct McFixture
{
    McFixture() : vrs(8, 512, 4), bp(vrs) {}

    void
    randomize(unsigned vr, uint64_t seed)
    {
        Rng rng(seed);
        for (auto &v : vrs[vr])
            v = rng.nextU16();
    }

    VrFile vrs;
    BitProcArray bp;
};

} // namespace

TEST(McPlanCache, ReplayedPlansAreBitIdentical)
{
    mcPlanCacheClear();
    auto stats0 = mcPlanCacheStats();
    EXPECT_EQ(stats0.hits, 0u);
    EXPECT_EQ(stats0.misses, 0u);

    // Cold run records each plan; a second identically seeded
    // fixture replays it. VR state and uop counts must match
    // exactly, for every routine.
    struct Case
    {
        const char *name;
        uint64_t (*run)(BitProcArray &);
    };
    const Case cases[] = {
        {"add", [](BitProcArray &bp) {
             return mcAddU16(bp, 2, 0, 1, 5, 6, 7);
         }},
        {"xor", [](BitProcArray &bp) {
             return mcXor16(bp, 3, 0, 1, 5);
         }},
        {"allbits", [](BitProcArray &bp) {
             return mcAllBitsSet(bp, 4, 0);
         }},
        {"sub", [](BitProcArray &bp) {
             return mcSubU16(bp, 2, 0, 1, 4, 5, 6, 7);
         }},
        {"mul", [](BitProcArray &bp) {
             return mcMulU16(bp, 2, 0, 1, 3, 4, 5, 6, 7);
         }},
    };
    uint64_t expectedMisses = 0;
    for (const auto &c : cases) {
        McFixture cold, warm;
        for (unsigned vr : {0u, 1u}) {
            cold.randomize(vr, 1000 + vr);
            warm.randomize(vr, 1000 + vr);
        }
        uint64_t uopsCold = c.run(cold.bp);
        // mcMulU16's emitter inlines the adder, so one plan covers
        // the whole routine: exactly one miss per distinct key.
        ++expectedMisses;
        uint64_t uopsWarm = c.run(warm.bp);
        EXPECT_EQ(uopsCold, uopsWarm) << c.name;
        EXPECT_EQ(cold.bp.uopCount(), warm.bp.uopCount()) << c.name;
        for (unsigned vr = 0; vr < 8; ++vr)
            for (size_t i = 0; i < cold.vrs.length(); ++i)
                ASSERT_EQ(cold.vrs[vr][i], warm.vrs[vr][i])
                    << c.name << " VR " << vr << " elem " << i;
    }
    auto stats1 = mcPlanCacheStats();
    EXPECT_EQ(stats1.misses, expectedMisses);
    EXPECT_EQ(stats1.hits, expectedMisses);
}

TEST(McPlanCache, DistinctArgsGetDistinctPlans)
{
    mcPlanCacheClear();
    McFixture f;
    f.randomize(0, 7);
    f.randomize(1, 8);
    mcAddU16(f.bp, 2, 0, 1, 5, 6, 7);
    mcAddU16(f.bp, 3, 0, 1, 5, 6, 7); // different dst -> new plan
    auto stats = mcPlanCacheStats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 0u);
    // Both plans still compute a + b.
    for (size_t i = 0; i < f.vrs.length(); ++i) {
        uint16_t want =
            static_cast<uint16_t>(f.vrs[0][i] + f.vrs[1][i]);
        ASSERT_EQ(f.vrs[2][i], want) << i;
        ASSERT_EQ(f.vrs[3][i], want) << i;
    }
}

// ---- Associative max/min: single-pass scan == brute force ---------------

TEST(WordParallelReduce, MaxMinIndexMatchBruteForce)
{
    ApuDevice dev;
    Gvml g(dev.core(0));
    auto &v = g.data(Vr(1));
    for (uint64_t seed : {1u, 2u, 3u}) {
        Rng rng(seed);
        for (auto &e : v)
            e = rng.nextU16() & 0x0fff; // force duplicate extrema
        auto mx = g.maxIndexU16(Vr(1));
        auto mn = g.minIndexU16(Vr(1));
        uint16_t wantMax = v[0], wantMin = v[0];
        size_t wantMaxIdx = 0, wantMinIdx = 0;
        for (size_t i = 1; i < v.size(); ++i) {
            if (v[i] > wantMax) {
                wantMax = v[i];
                wantMaxIdx = i;
            }
            if (v[i] < wantMin) {
                wantMin = v[i];
                wantMinIdx = i;
            }
        }
        EXPECT_EQ(mx.value, wantMax) << "seed " << seed;
        EXPECT_EQ(mx.index, wantMaxIdx) << "seed " << seed;
        EXPECT_EQ(mn.value, wantMin) << "seed " << seed;
        EXPECT_EQ(mn.index, wantMinIdx) << "seed " << seed;
    }
    // All-equal vector: first index wins.
    std::fill(v.begin(), v.end(), uint16_t{0x1234});
    EXPECT_EQ(g.maxIndexU16(Vr(1)).index, 0u);
    EXPECT_EQ(g.minIndexU16(Vr(1)).index, 0u);
}

TEST(WordParallelReduce, MaxIndexChargeIsDataIndependent)
{
    // The associative search always walks all 16 bit planes; the
    // single-pass functional scan must charge exactly the same
    // cycles whatever the data.
    ApuDevice dev;
    auto run = [&](unsigned core, uint16_t fill) {
        Gvml g(dev.core(core));
        auto &v = g.data(Vr(1));
        std::fill(v.begin(), v.end(), fill);
        double before = dev.core(core).stats().cycles();
        g.maxIndexU16(Vr(1));
        return dev.core(core).stats().cycles() - before;
    };
    double a = run(0, 0x0000);
    double b = run(1, 0xffff);
    EXPECT_GT(a, 0.0);
    EXPECT_DOUBLE_EQ(a, b);
}

// ---- Fused MAC: one pass == the unfused op triple -----------------------

namespace {

/** Copy core 0's VR contents onto core `dst` of the same device. */
void
mirrorVrs(ApuDevice &dev, unsigned dst)
{
    for (unsigned vr = 0; vr < dev.core(0).vr().numVrs(); ++vr)
        dev.core(dst).vr()[vr] = dev.core(0).vr()[vr];
}

} // namespace

TEST(FusedMac, S16MatchesUnfusedTriple)
{
    for (ExecMode mode :
         {ExecMode::Functional, ExecMode::TimingOnly}) {
        ApuDevice dev;
        dev.core(0).setMode(mode);
        dev.core(1).setMode(mode);
        Gvml fused(dev.core(0));
        Gvml plain(dev.core(1));
        Rng rng(314);
        for (unsigned vr : {0u, 8u, 9u, 10u})
            for (auto &e : fused.data(Vr(vr)))
                e = rng.nextU16();
        mirrorVrs(dev, 1);

        const Vr emb{0}, q{1}, t{2};
        const Vr accs[3] = {Vr(8), Vr(9), Vr(10)};
        const uint16_t imms[3] = {0x0003, 0xfffe, 0x7f01};

        double c0 = dev.core(0).stats().cycles();
        double u0 = dev.core(0).stats().uops();
        fused.macImmS16(emb, q, t, accs, imms, 3);
        double fusedCycles = dev.core(0).stats().cycles() - c0;
        double fusedUops = dev.core(0).stats().uops() - u0;

        double c1 = dev.core(1).stats().cycles();
        double u1 = dev.core(1).stats().uops();
        for (size_t i = 0; i < 3; ++i) {
            plain.cpyImm16(q, imms[i]);
            plain.mulS16(t, emb, q);
            plain.addS16(accs[i], accs[i], t);
        }
        double plainCycles = dev.core(1).stats().cycles() - c1;
        double plainUops = dev.core(1).stats().uops() - u1;

        EXPECT_DOUBLE_EQ(fusedCycles, plainCycles)
            << "mode " << static_cast<int>(mode);
        EXPECT_DOUBLE_EQ(fusedUops, plainUops)
            << "mode " << static_cast<int>(mode);
        for (unsigned vr = 0; vr < dev.core(0).vr().numVrs(); ++vr)
            ASSERT_EQ(fused.data(Vr(vr)), plain.data(Vr(vr)))
                << "mode " << static_cast<int>(mode) << " VR " << vr;
    }
}

TEST(FusedMac, Gf16MatchesUnfusedTriple)
{
    ApuDevice dev;
    Gvml fused(dev.core(0));
    Gvml plain(dev.core(1));
    Rng rng(2718);
    for (unsigned vr : {0u, 8u})
        for (auto &e : fused.data(Vr(vr)))
            e = rng.nextU16();
    mirrorVrs(dev, 1);

    const Vr emb{0}, q{1}, t{2}, acc{8};
    const uint16_t imm =
        GsiFloat16::fromFloat(-1.75f).bits();

    double c0 = dev.core(0).stats().cycles();
    fused.macImmGf16(emb, q, t, acc, imm);
    double fusedCycles = dev.core(0).stats().cycles() - c0;

    double c1 = dev.core(1).stats().cycles();
    plain.cpyImm16(q, imm);
    plain.mulGf16(t, emb, q);
    plain.addGf16(acc, acc, t);
    double plainCycles = dev.core(1).stats().cycles() - c1;

    EXPECT_DOUBLE_EQ(fusedCycles, plainCycles);
    for (unsigned vr = 0; vr < dev.core(0).vr().numVrs(); ++vr)
        ASSERT_EQ(fused.data(Vr(vr)), plain.data(Vr(vr)))
            << "VR " << vr;
}

// ---- DRAM range-trace cache: warm replay == cold simulation -------------

TEST(DramTraceCache, WarmCallsReplayIdenticalTiming)
{
    // Same call on the same system, then on a fresh system (the
    // cache is process-global): seconds, bandwidth, and counter
    // deltas must all be identical to the first simulation.
    const uint64_t base = 0x1720000, bytes = 3 << 19;
    dram::DramSystem a(dram::hbm2eConfig());
    double t1 = a.streamReadSeconds(base, bytes);
    dram::DramStats d1 = a.stats();
    double bw1 = a.lastEffectiveBandwidth();
    EXPECT_GT(t1, 0.0);

    double t2 = a.streamReadSeconds(base, bytes);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(a.stats().reads, 2 * d1.reads);
    EXPECT_EQ(a.stats().activates, 2 * d1.activates);
    EXPECT_EQ(a.stats().rowHits, 2 * d1.rowHits);
    EXPECT_EQ(a.stats().refreshes, 2 * d1.refreshes);
    EXPECT_EQ(a.lastEffectiveBandwidth(), bw1);

    dram::DramSystem b(dram::hbm2eConfig());
    EXPECT_EQ(b.streamReadSeconds(base, bytes), t1);
    EXPECT_EQ(b.stats().reads, d1.reads);
    EXPECT_EQ(b.stats().rowMisses, d1.rowMisses);
    EXPECT_EQ(b.lastEffectiveBandwidth(), bw1);

    // Writes and strided gathers replay the same way.
    double w1 = a.streamWriteSeconds(base, bytes);
    EXPECT_EQ(a.streamWriteSeconds(base, bytes), w1);
    double s1 = a.stridedReadSeconds(base, 256, 4096, 512);
    EXPECT_EQ(a.stridedReadSeconds(base, 256, 4096, 512), s1);
}

TEST(DramTraceCache, DistinctGeometriesDistinctTimings)
{
    dram::DramSystem sys(dram::hbm2eConfig());
    double t64k = sys.streamReadSeconds(0, 64 * 1024);
    double t128k = sys.streamReadSeconds(0, 128 * 1024);
    EXPECT_GT(t128k, t64k);
    double strided = sys.stridedReadSeconds(0, 256, 8192, 256);
    double dense = sys.streamReadSeconds(0, 256 * 256);
    EXPECT_NE(strided, dense);
}

TEST(DramTraceCache, WarmCallsStillAdvanceFaultState)
{
    // dram_flip:p=1 flips every read burst deterministically, so the
    // ECC ledger's progression is a pure function of the request
    // sequence: first pass corrects one single per burst, second
    // pass over the now-latent codewords detects one uncorrectable
    // double per burst. The second pass is a guaranteed timing-cache
    // hit — if a hit skipped fault injection, the doubles would
    // vanish.
    PlanGuard plan("dram_flip:p=1;seed:5");
    dram::DramSystem sys(dram::hbm2eConfig());
    const uint64_t bytes = 64 * 1024;
    const uint64_t bursts = bytes / sys.config().burstBytes();
    const uint64_t words = sys.config().burstBytes() / 8;

    sys.streamReadSeconds(0, bytes);
    EXPECT_EQ(sys.eccStats().wordsChecked, bursts * words);
    EXPECT_EQ(sys.eccStats().singleCorrected, bursts);
    EXPECT_EQ(sys.eccStats().doubleDetected, 0u);
    EXPECT_EQ(sys.latentSingles(), bursts);
    EXPECT_TRUE(sys.takeFaultStatus().ok());

    sys.streamReadSeconds(0, bytes); // warm in the global cache
    EXPECT_EQ(sys.eccStats().wordsChecked, 2 * bursts * words);
    EXPECT_EQ(sys.eccStats().singleCorrected, bursts);
    EXPECT_EQ(sys.eccStats().doubleDetected, bursts);
    EXPECT_EQ(sys.latentSingles(), 0u);
    EXPECT_FALSE(sys.takeFaultStatus().ok());
}

// ---- Serving admission boundaries (DESIGN.md section 7) -----------------

namespace {

using baseline::genQuery;
using baseline::ragCorpora;
using kernels::BatchPolicy;
using kernels::DeviceServer;
using kernels::ServerConfig;

} // namespace

TEST(ServingAdmissionBoundary, DepthCapShedsAtExactlyTheCap)
{
    const auto &spec = ragCorpora()[0];
    ApuDevice dev;
    ServerConfig cfg;
    cfg.batch = BatchPolicy{4, 100};
    cfg.admission.maxQueueDepth = 3;
    DeviceServer server(dev, spec, 0, nullptr, 1, cfg);
    // depth 0, 1, 2 admit (filling to the cap)...
    for (uint64_t q = 0; q < 3; ++q)
        EXPECT_TRUE(
            server.enqueue(q, genQuery(spec.dim, 10 + q)).ok())
            << "q " << q;
    // ...and the admission that would exceed it is shed, loudly.
    Status st = server.enqueue(3, genQuery(spec.dim, 13));
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::ResourceExhausted);
    server.drain();
}

TEST(ServingAdmissionBoundary, PredictedDelayUsesCeilOfQueuedBatches)
{
    const auto &spec = ragCorpora()[0];
    BatchPolicy batching{2, 100};

    // Measure one batch's deterministic service time (which seeds
    // the EWMA) on an unconstrained server.
    double ewma = 0;
    {
        ApuDevice dev;
        ServerConfig cfg;
        cfg.batch = batching;
        DeviceServer probe(dev, spec, 0, nullptr, 1, cfg);
        ASSERT_TRUE(probe.enqueue(0, genQuery(spec.dim, 50)).ok());
        ASSERT_TRUE(probe.enqueue(1, genQuery(spec.dim, 51)).ok());
        auto outs = probe.pump();
        ASSERT_EQ(outs.size(), 2u);
        ewma = outs[0].hostSeconds + outs[0].retrievalSeconds;
        probe.drain();
    }
    ASSERT_GT(ewma, 0.0);

    // Budget below one batch time: an *idle* server (depth 0, zero
    // queued batches, so zero predicted wait) must still admit. The
    // pre-fix floor(depth/maxBatch)+1 form predicted a full batch of
    // wait at depth 0 and shed here. With one query queued, the
    // predicted wait is one EWMA and the budget is exceeded: shed.
    {
        ApuDevice dev;
        ServerConfig cfg;
        cfg.batch = batching;
        cfg.admission.maxQueueDelaySeconds = 0.5 * ewma;
        DeviceServer server(dev, spec, 0, nullptr, 1, cfg);
        ASSERT_TRUE(server.enqueue(0, genQuery(spec.dim, 50)).ok());
        ASSERT_TRUE(server.enqueue(1, genQuery(spec.dim, 51)).ok());
        ASSERT_EQ(server.pump().size(), 2u); // EWMA now = ewma
        EXPECT_TRUE(server.enqueue(2, genQuery(spec.dim, 52)).ok())
            << "idle server must admit: zero batches queued";
        Status st = server.enqueue(3, genQuery(spec.dim, 53));
        EXPECT_FALSE(st.ok())
            << "one queued query = one predicted batch over budget";
        EXPECT_EQ(st.code(), StatusCode::ResourceExhausted);
        server.drain();
    }

    // Budget of 1.5 batch times: a depth exactly equal to maxBatch
    // is still ceil(2/2) = 1 queued batch (one EWMA, under budget).
    // The pre-fix form counted floor(2/2)+1 = 2 batches and shed at
    // this exact-multiple boundary. Depth 3 genuinely needs two
    // batches and is over budget.
    {
        ApuDevice dev;
        ServerConfig cfg;
        cfg.batch = batching;
        cfg.admission.maxQueueDelaySeconds = 1.5 * ewma;
        DeviceServer server(dev, spec, 0, nullptr, 1, cfg);
        ASSERT_TRUE(server.enqueue(0, genQuery(spec.dim, 50)).ok());
        ASSERT_TRUE(server.enqueue(1, genQuery(spec.dim, 51)).ok());
        ASSERT_EQ(server.pump().size(), 2u); // EWMA now = ewma
        for (uint64_t q = 2; q < 4; ++q)
            ASSERT_TRUE(
                server.enqueue(q, genQuery(spec.dim, 50 + q)).ok())
                << "q " << q;
        EXPECT_TRUE(server.enqueue(4, genQuery(spec.dim, 54)).ok())
            << "depth == maxBatch is one queued batch, not two";
        Status st = server.enqueue(5, genQuery(spec.dim, 55));
        EXPECT_FALSE(st.ok()) << "depth 3 = two queued batches";
        server.drain();
    }
}

// ---- Histogram quantile: exact bucket-boundary pin ----------------------

TEST(HistogramQuantileBoundary, ExactBoundaryBelongsToLowerBucket)
{
    // Two samples in the [1, 2) bucket, two in [4, 8). q = 0.5 puts
    // the target exactly on the lower bucket's cumulative count:
    // the quantile must resolve inside the *lower* bucket with
    // interpolation fraction 1 — its upper edge, 2.0 — never a value
    // from the next occupied bucket's [4, 6] range.
    metrics::Histogram h;
    h.observe(1.5);
    h.observe(1.5);
    h.observe(6.0);
    h.observe(6.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
    // Infinitesimally past the boundary the quantile jumps into the
    // next bucket (clamped below by its 4.0 lower edge).
    EXPECT_GE(h.quantile(0.500001), 4.0);
    // Interior interpolation still works on both sides.
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.75);
    EXPECT_EQ(h.quantile(1.0), 6.0);
    EXPECT_EQ(h.quantile(0.0), 1.5);
}

TEST(HistogramQuantileBoundary, BoundaryClampsToObservedMax)
{
    // When the lower bucket's upper edge exceeds the observed max,
    // the boundary quantile clamps to the max rather than inventing
    // a value never observed.
    metrics::Histogram h;
    h.observe(1.25);
    h.observe(1.25); // max = 1.25 < bucket edge 2.0
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.25);
}

// ---- CycleStats identity on the Fig. 12 BMM inputs ---------------------

TEST(WordParallelCycles, BmmFunctionalMatchesTimingOnlyOnFig12Inputs)
{
    // Vectorizing functional evaluation may not move a single
    // modeled cycle: on the bench_fig12_bmm_breakdown shape, a full
    // functional run (word-parallel paths engaged) must charge
    // exactly the per-stage cycles and uops the timing-only run
    // charges (fig12 itself runs TimingOnly).
    const core::BmmShape shape{1024, 1024, 1024};
    for (auto v : {core::BmmVariant::Opt1, core::BmmVariant::AllOpts}) {
        kernels::BmmData data = kernels::genBmmData(shape, 77);

        apu::ApuDevice fdev;
        auto fr = kernels::runBmmApu(fdev, shape, v, &data);

        apu::ApuDevice tdev;
        tdev.core(0).setMode(apu::ExecMode::TimingOnly);
        auto tr = kernels::runBmmApu(tdev, shape, v, nullptr);

        EXPECT_DOUBLE_EQ(fr.cycles.ldLhs, tr.cycles.ldLhs)
            << core::bmmVariantName(v);
        EXPECT_DOUBLE_EQ(fr.cycles.ldRhs, tr.cycles.ldRhs)
            << core::bmmVariantName(v);
        EXPECT_DOUBLE_EQ(fr.cycles.vrOps, tr.cycles.vrOps)
            << core::bmmVariantName(v);
        EXPECT_DOUBLE_EQ(fr.cycles.store, tr.cycles.store)
            << core::bmmVariantName(v);
        EXPECT_DOUBLE_EQ(fr.uops, tr.uops) << core::bmmVariantName(v);

        // And the functional answer is still the right one.
        auto expect = kernels::bmmReference(shape, data);
        ASSERT_EQ(fr.c.size(), expect.size());
        EXPECT_TRUE(std::equal(fr.c.begin(), fr.c.end(),
                               expect.begin()))
            << core::bmmVariantName(v);
    }
}
