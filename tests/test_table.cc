/**
 * @file
 * Tests for the bench-output helpers: table rendering and the
 * numeric formatters.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

using namespace cisram;

TEST(AsciiTableTest, RendersAlignedColumns)
{
    AsciiTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "12345"});
    std::string out = t.render();
    // Header and both rows present.
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
    // Every line has equal width.
    size_t width = out.find('\n');
    size_t pos = 0;
    while (pos < out.size()) {
        size_t next = out.find('\n', pos);
        EXPECT_EQ(next - pos, width);
        pos = next + 1;
    }
}

TEST(AsciiTableTest, SeparatorsAndColumnCountEnforced)
{
    AsciiTable t({"a", "b"});
    t.addRow({"1", "2"});
    t.addSeparator();
    t.addRow({"3", "4"});
    std::string out = t.render();
    // 4 separator lines: top, under header, mid, bottom.
    size_t count = 0;
    size_t pos = 0;
    while (pos < out.size()) {
        if (out[pos] == '+')
            ++count;
        pos = out.find('\n', pos);
        if (pos == std::string::npos)
            break;
        ++pos;
    }
    EXPECT_EQ(count, 4u);
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(Formatters, Doubles)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(3.0, 0), "3");
    EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(Formatters, Times)
{
    EXPECT_EQ(formatTime(2.5), "2.500 s");
    EXPECT_EQ(formatTime(2.5e-3), "2.500 ms");
    EXPECT_EQ(formatTime(2.5e-6), "2.500 us");
    EXPECT_EQ(formatTime(2.5e-9), "2.500 ns");
}

TEST(Formatters, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(3.5 * 1024 * 1024), "3.50 MiB");
    EXPECT_EQ(formatBytes(2.0 * 1024 * 1024 * 1024), "2.00 GiB");
}
