/**
 * @file
 * Optimization-framework tests: layouts and broadcast spans
 * (Fig. 11), reduction-mapping and DMA-coalescing planners, and the
 * BMM analytical model (Fig. 12 shape).
 */

#include <gtest/gtest.h>

#include "apusim/apu.hh"
#include "core/bmm_model.hh"
#include "core/layout.hh"
#include "core/planner.hh"
#include "model/sg_model.hh"

using namespace cisram;
using namespace cisram::core;

TEST(Layout, RowMajorOffsets)
{
    Layout l = Layout::rowMajor({3, 6});
    EXPECT_EQ(l.totalElems(), 18u);
    EXPECT_EQ(l.offsetOf({0, 0}), 0);
    EXPECT_EQ(l.offsetOf({0, 5}), 5);
    EXPECT_EQ(l.offsetOf({1, 0}), 6);
    EXPECT_EQ(l.offsetOf({2, 5}), 17);
    EXPECT_TRUE(l.isContiguous());
}

TEST(Layout, ColumnMajorOffsets)
{
    Layout l = Layout::columnMajor({3, 6});
    EXPECT_EQ(l.offsetOf({0, 0}), 0);
    EXPECT_EQ(l.offsetOf({1, 0}), 1);
    EXPECT_EQ(l.offsetOf({0, 1}), 3);
    EXPECT_TRUE(l.isContiguous());
}

TEST(Layout, TransposePreservesElements)
{
    Layout l = Layout::rowMajor({4, 8}).transposed(0, 1);
    EXPECT_EQ(l.totalElems(), 32u);
    // Transposed row-major == column-major of the transposed shape.
    EXPECT_EQ(l.offsetOf({1, 0}), 1);
    EXPECT_EQ(l.offsetOf({0, 1}), 8);
}

TEST(Layout, NonContiguousDetected)
{
    // Stride-2 layout leaves holes.
    Layout l({{4, 2}});
    EXPECT_FALSE(l.isContiguous());
}

TEST(Layout, Fig11LookupSpans)
{
    // Paper Fig. 11: a 3x6 matrix, broadcasting a window of 3
    // scalars down the row axis. Row-major needs an 18-entry shared
    // table; the broadcast-friendly layout needs only 3 per step.
    std::vector<size_t> shape = {3, 6};
    BroadcastSweep sweep{0, 3};

    Layout row_major = Layout::rowMajor(shape);
    EXPECT_EQ(maxLookupSpan(row_major, sweep), 13u);
    EXPECT_EQ(sharedLookupSpan(row_major, sweep), 18u);

    Layout bf = broadcastFriendly(shape, 0);
    EXPECT_EQ(maxLookupSpan(bf, sweep), 3u);
    EXPECT_TRUE(bf.isContiguous());
}

TEST(Layout, BroadcastFriendlyScalesWithShape)
{
    std::vector<size_t> shape = {32, 64};
    BroadcastSweep sweep{0, 32};
    Layout rm = Layout::rowMajor(shape);
    Layout bf = broadcastFriendly(shape, 0);
    EXPECT_EQ(maxLookupSpan(rm, sweep), 31u * 64 + 1);
    EXPECT_EQ(maxLookupSpan(bf, sweep), 32u);
}

namespace {

model::SubgroupReductionModel
calibratedSg()
{
    apu::ApuDevice dev;
    model::SubgroupReductionModel sg;
    sg.calibrate(dev.core(0));
    return sg;
}

} // namespace

TEST(Planner, TemporalReductionWinsForLargeGroups)
{
    model::CostTable t;
    auto sg = calibratedSg();
    // The paper's core observation: temporal (inter-VR) mapping beats
    // spatial (intra-VR) reduction, driven by PIO store costs.
    for (size_t r : {64u, 256u, 1024u, 8192u}) {
        ReductionPlan plan = planReduction(t, sg, r);
        EXPECT_EQ(plan.best, ReductionMapping::Temporal) << r;
        EXPECT_GT(plan.speedup(), 1.0) << r;
    }
}

TEST(Planner, CoalescingWinsForRepeatedChunks)
{
    model::CostTable t;
    // A 2 KiB row reused 64 times across full-VR duplications.
    CoalescePlan plan = planDmaCoalescing(t, 2048, 64);
    EXPECT_TRUE(plan.coalesce);
    EXPECT_GT(plan.speedup(), 10.0);
}

TEST(Planner, CoalescingNotWorthItForSingleUse)
{
    model::CostTable t;
    CoalescePlan plan = planDmaCoalescing(t, 65536, 1);
    // One use of a full-VR chunk: both paths are one bulk move; the
    // coalesced path must not be dramatically better.
    EXPECT_LT(plan.naiveCycles / plan.coalescedCycles, 2.5);
}

TEST(Planner, BroadcastCostTracksSpan)
{
    model::CostTable t;
    EXPECT_LT(broadcastCost(t, 3, 100), broadcastCost(t, 18, 100));
}

class BmmModelTest : public ::testing::Test
{
  protected:
    BmmModelTest() : model(model::CostTable{}, calibratedSg()) {}

    BmmAnalyticalModel model;
    BmmShape paper{1024, 1024, 1024};
};

TEST_F(BmmModelTest, Fig12BaselineStoreDominated)
{
    StageBreakdown b = model.predict(paper, BmmVariant::Baseline);
    // Baseline is bottlenecked by PIO stores of scattered results.
    EXPECT_GT(b.store, b.ldLhs);
    EXPECT_GT(b.store, b.ldRhs);
    EXPECT_GT(b.store, b.vrOps);
    // Paper: baseline ~226 ms. Same order of magnitude.
    double ms = model.table().seconds(b.total()) * 1e3;
    EXPECT_GT(ms, 150.0);
    EXPECT_LT(ms, 300.0);
}

TEST_F(BmmModelTest, Fig12Opt1ShiftsBottleneckToRhs)
{
    StageBreakdown b = model.predict(paper, BmmVariant::Opt1);
    // "it increases RHS matrix loading time due to data duplication"
    EXPECT_GT(b.ldRhs, b.ldLhs);
    EXPECT_GT(b.ldRhs, b.store);
    // Store collapses: contiguous DMA instead of PIO.
    StageBreakdown base = model.predict(paper, BmmVariant::Baseline);
    EXPECT_LT(b.store, base.store / 10.0);
}

TEST_F(BmmModelTest, Fig12CombinedSpeedupInPaperRange)
{
    double base =
        model.predict(paper, BmmVariant::Baseline).total();
    double all = model.predict(paper, BmmVariant::AllOpts).total();
    // Paper: 18.9x end to end. Same shape: >10x and <50x.
    EXPECT_GT(base / all, 10.0);
    EXPECT_LT(base / all, 50.0);
    // All-opts latency ~12 ms in the paper; ours must be single-digit
    // to tens of ms.
    double ms = model.table().seconds(all) * 1e3;
    EXPECT_GT(ms, 2.0);
    EXPECT_LT(ms, 30.0);
}

TEST_F(BmmModelTest, IndividualOptsCompose)
{
    double o1 = model.predict(paper, BmmVariant::Opt1).total();
    double o12 = model.predict(paper, BmmVariant::Opt1Opt2).total();
    double o13 = model.predict(paper, BmmVariant::Opt1Opt3).total();
    double all = model.predict(paper, BmmVariant::AllOpts).total();
    // Adding an optimization never hurts, and all < each pair.
    EXPECT_LT(o12, o1);
    EXPECT_LT(o13, o1);
    EXPECT_LT(all, o12);
    EXPECT_LT(all, o13);
}

TEST_F(BmmModelTest, OperationalIntensityImproves)
{
    double oi_base =
        model.operationalIntensity(paper, BmmVariant::Baseline);
    double oi_opt1 =
        model.operationalIntensity(paper, BmmVariant::Opt1);
    double oi_all =
        model.operationalIntensity(paper, BmmVariant::AllOpts);
    // Eq. 2 < Eq. 9 < Eq. 13 for the paper's shape.
    EXPECT_LT(oi_base, oi_opt1);
    EXPECT_LT(oi_opt1, oi_all);
}

TEST_F(BmmModelTest, ThroughputBelowBinaryRoof)
{
    model::CostTable t;
    double roof = 2.0 * 16.0 * t.vrLength * t.numCores * t.clockHz /
        (t.xor16 + t.popcnt16 + t.ashift + t.subS16);
    for (auto v : {BmmVariant::Baseline, BmmVariant::AllOpts}) {
        EXPECT_LT(model.opsPerSecond(paper, v), roof)
            << bmmVariantName(v);
    }
}
