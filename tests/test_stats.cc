/**
 * @file
 * Tests for statistics helpers: means, least squares, R^2.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"

using namespace cisram;

TEST(Stats, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1, 4}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2, 8, 4}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(maxOf({3, 9, 1}), 9.0);
    EXPECT_DOUBLE_EQ(minOf({3, 9, 1}), 1.0);
}

TEST(Stats, LeastSquaresRecoversLine)
{
    // y = 3 + 2x fit with intercept column.
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 10; ++i) {
        x.push_back({1.0, static_cast<double>(i)});
        y.push_back(3.0 + 2.0 * i);
    }
    auto beta = leastSquares(x, y);
    ASSERT_EQ(beta.size(), 2u);
    EXPECT_NEAR(beta[0], 3.0, 1e-9);
    EXPECT_NEAR(beta[1], 2.0, 1e-9);
}

TEST(Stats, LeastSquaresCubicWithNoise)
{
    Rng rng(5);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        double t = rng.nextDouble() * 10.0;
        x.push_back({1.0, t, t * t, t * t * t});
        double noise = (rng.nextDouble() - 0.5) * 1e-3;
        y.push_back(1.0 - 2.0 * t + 0.5 * t * t + 0.25 * t * t * t +
                    noise);
    }
    auto beta = leastSquares(x, y);
    ASSERT_EQ(beta.size(), 4u);
    EXPECT_NEAR(beta[0], 1.0, 1e-2);
    EXPECT_NEAR(beta[1], -2.0, 1e-2);
    EXPECT_NEAR(beta[2], 0.5, 1e-2);
    EXPECT_NEAR(beta[3], 0.25, 1e-3);
}

TEST(Stats, RSquared)
{
    std::vector<double> obs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(rSquared(obs, obs), 1.0);
    std::vector<double> flat(5, 3.0);
    EXPECT_DOUBLE_EQ(rSquared(flat, obs), 0.0);
}

TEST(Stats, RngDeterminism)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng c(124);
    EXPECT_NE(a.next(), c.next());
}

TEST(Stats, RngBounds)
{
    Rng rng(77);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.nextBelow(17), 17u);
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}
