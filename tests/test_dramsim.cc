/**
 * @file
 * DRAM simulator tests: bandwidth bounds, row-buffer behaviour,
 * refresh derating, strided access, and the power model.
 */

#include <gtest/gtest.h>

#include "dramsim/dram_sim.hh"

using namespace cisram::dram;

TEST(DramConfig, PeakBandwidthMatchesPaper)
{
    DramConfig hbm = hbm2eConfig();
    // Paper: 380-420 GB/s peak for the simulated HBM2e.
    EXPECT_GE(hbm.peakBandwidth(), 380.0e9);
    EXPECT_LE(hbm.peakBandwidth(), 420.0e9);

    DramConfig ddr = ddr4DeviceConfig();
    // Paper: 23.8 GB/s device DDR bandwidth.
    EXPECT_NEAR(ddr.peakBandwidth(), 23.8e9, 0.3e9);
}

TEST(DramSim, StreamingReachesHighEfficiency)
{
    DramSystem sys(hbm2eConfig());
    double secs = sys.streamReadSeconds(0, 64ull * 1024 * 1024);
    EXPECT_GT(secs, 0.0);
    double eff =
        sys.lastEffectiveBandwidth() / sys.config().peakBandwidth();
    // Streaming with open rows should land between 70% and 100%.
    EXPECT_GT(eff, 0.70) << "efficiency " << eff;
    EXPECT_LT(eff, 1.0) << "efficiency " << eff;
}

TEST(DramSim, LongStreamScalesLinearly)
{
    DramSystem sys(hbm2eConfig());
    double t1 = sys.streamReadSeconds(0, 256ull * 1024 * 1024);
    double t2 = sys.streamReadSeconds(0, 512ull * 1024 * 1024);
    EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(DramSim, EmbeddingLoadTimesMatchTable8Scale)
{
    // Paper Table 8 (all opts): loading 120 MB / 600 MB / 2.4 GB of
    // embeddings from the simulated HBM takes ~0.3 / 1.5 / 6.1 ms.
    DramSystem sys(hbm2eConfig());
    double t10 = sys.streamReadSeconds(0, 120ull * 1000 * 1000);
    double t50 = sys.streamReadSeconds(0, 600ull * 1000 * 1000);
    double t200 = sys.streamReadSeconds(0, 2400ull * 1000 * 1000);
    EXPECT_NEAR(t10 * 1e3, 0.3, 0.1);
    EXPECT_NEAR(t50 * 1e3, 1.5, 0.5);
    EXPECT_NEAR(t200 * 1e3, 6.1, 2.0);
}

TEST(DramSim, RandomRowsSlowerThanStreaming)
{
    DramConfig cfg = hbm2eConfig();
    DramSystem sys(cfg);
    // Strided reads hitting a new row every chunk.
    uint64_t chunk = cfg.burstBytes();
    uint64_t stride = cfg.rowBytes * cfg.channels * 64 + 4096;
    double t_rand = sys.stridedReadSeconds(0, chunk, stride, 10000);
    double t_seq = sys.streamReadSeconds(0, chunk * 10000);
    EXPECT_GT(t_rand, 2.0 * t_seq);
}

TEST(DramSim, RowHitsDominateForStreams)
{
    DramSystem sys(hbm2eConfig());
    sys.resetStats();
    sys.streamReadSeconds(0, 16ull * 1024 * 1024);
    const DramStats &s = sys.stats();
    EXPECT_GT(s.rowHits, 10 * s.rowMisses);
    EXPECT_EQ(s.writes, 0u);
    EXPECT_GT(s.reads, 0u);
}

TEST(DramSim, WritesAreCounted)
{
    DramSystem sys(hbm2eConfig());
    sys.resetStats();
    sys.streamWriteSeconds(0, 1 << 20);
    EXPECT_GT(sys.stats().writes, 0u);
    EXPECT_EQ(sys.stats().reads, 0u);
}

TEST(DramSim, Ddr4SlowerThanHbm)
{
    DramSystem hbm(hbm2eConfig());
    DramSystem ddr(ddr4DeviceConfig());
    uint64_t bytes = 64ull * 1024 * 1024;
    double t_hbm = hbm.streamReadSeconds(0, bytes);
    double t_ddr = ddr.streamReadSeconds(0, bytes);
    // ~410 / 23.8 ~= 17x peak ratio; allow efficiency wiggle.
    EXPECT_GT(t_ddr / t_hbm, 10.0);
    EXPECT_LT(t_ddr / t_hbm, 25.0);
}

TEST(DramSim, ProcessTraceCountsRequests)
{
    DramSystem sys(hbm2eConfig());
    std::vector<Request> reqs;
    for (int i = 0; i < 100; ++i)
        reqs.push_back({static_cast<uint64_t>(i) *
                            sys.config().burstBytes(),
                        false});
    sys.resetStats();
    double secs = sys.processTrace(reqs);
    EXPECT_GT(secs, 0.0);
    EXPECT_EQ(sys.stats().reads, 100u);
}

TEST(DramPower, EnergyComponentsPositiveAndAdditive)
{
    DramSystem sys(hbm2eConfig());
    sys.resetStats();
    double secs = sys.streamReadSeconds(0, 32ull * 1024 * 1024);
    DramPowerModel power(hbm2eEnergyConfig());
    double dyn = power.dynamicEnergy(sys.stats());
    double bg = power.backgroundEnergy(secs);
    EXPECT_GT(dyn, 0.0);
    EXPECT_GT(bg, 0.0);
    EXPECT_DOUBLE_EQ(power.totalEnergy(sys.stats(), secs), dyn + bg);
}

TEST(DramPower, EnergyPerBitIsReasonable)
{
    // HBM2e dynamic energy should land in the 2-8 pJ/bit window.
    DramSystem sys(hbm2eConfig());
    sys.resetStats();
    uint64_t bytes = 32ull * 1024 * 1024;
    sys.streamReadSeconds(0, bytes);
    DramPowerModel power(hbm2eEnergyConfig());
    double pj_per_bit = power.dynamicEnergy(sys.stats()) * 1e12 /
        (static_cast<double>(bytes) * 8.0);
    EXPECT_GT(pj_per_bit, 2.0);
    EXPECT_LT(pj_per_bit, 8.0);
}
