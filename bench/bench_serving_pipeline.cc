/**
 * @file
 * Serving-pipeline sweep (extension): batch size x overlapped
 * streaming. Each configuration drives one core's DeviceServer —
 * admission queue, batch former, one retrieveBatch call per formed
 * batch — over the same query stream at paper scale (200 GB corpus,
 * TimingOnly), and reports aggregate QPS plus served-latency
 * percentiles with queue wait included.
 *
 * The acceptance bar for the pipeline: batched (B=8) + overlapped
 * streaming must clear 2x the QPS of sequential single-query serving
 * on identical queries, with bit-identical functional top-k (checked
 * here on a small corpus).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/workloads.hh"
#include "bench_report.hh"
#include "common/metrics.hh"
#include "common/table.hh"
#include "kernels/rag.hh"
#include "kernels/serving.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

constexpr int kQueries = 32;
constexpr uint64_t kSeed = 2026;

struct SweepPoint
{
    size_t batch;
    bool overlap;
    double qps = 0;
    double p50 = 0, p95 = 0, p99 = 0;
};

SweepPoint
runPoint(const RagCorpusSpec &spec, size_t batch, bool overlap)
{
    SweepPoint pt{batch, overlap};

    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);

    ServerConfig cfg;
    cfg.topK = 5;
    cfg.batch = BatchPolicy{batch, batch};
    cfg.overlapStream = overlap;
    DeviceServer server(dev, spec, 0, nullptr, kSeed, cfg);

    metrics::Histogram served;
    for (int q = 0; q < kQueries; ++q)
        server.enqueue(static_cast<uint64_t>(q),
                       genQuery(spec.dim, 1000 + q));
    for (const ServeOutcome &out : server.drain())
        served.observe(out.servedSeconds());

    pt.qps = kQueries / server.busySeconds();
    pt.p50 = served.quantile(0.50);
    pt.p95 = served.quantile(0.95);
    pt.p99 = served.quantile(0.99);
    return pt;
}

/**
 * Functional bit-identity: the batched, overlapped pass must return
 * exactly the top-k the sequential single-query path returns — the
 * overlap is a timing-ledger change, never a result change.
 */
bool
identityCheck()
{
    RagCorpusSpec corpus{"check", 0, 6000, 368};
    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, corpus, 5);

    std::vector<std::vector<int16_t>> queries;
    for (int q = 0; q < 8; ++q)
        queries.push_back(genQuery(corpus.dim, 1000 + q));

    auto batched =
        retriever.retrieveBatch(queries, kSeed, RagBatchOptions{true});
    for (size_t q = 0; q < queries.size(); ++q) {
        auto single = retriever.retrieve(
            queries[q], RagVariant::AllOpts, kSeed);
        if (single.hits.size() != batched[q].hits.size())
            return false;
        for (size_t i = 0; i < single.hits.size(); ++i)
            if (single.hits[i].id != batched[q].hits[i].id)
                return false;
    }
    return true;
}

} // namespace

int
main()
{
    std::printf("== Serving pipeline: batch size x overlapped "
                "streaming ==\n");
    const auto &spec = ragCorpora()[2]; // 200 GB
    std::printf("corpus: %s (%zu chunks), %d queries through one "
                "core's pipeline per point\n\n",
                spec.label, spec.numChunks, kQueries);

    bool identical = identityCheck();
    std::printf("functional top-k identity (batched+overlapped vs "
                "sequential): %s\n\n",
                identical ? "PASS" : "FAIL");

    AsciiTable table({"batch", "overlap", "QPS", "served p50 (ms)",
                      "served p95 (ms)", "served p99 (ms)",
                      "speedup vs seq"});
    std::vector<SweepPoint> points;
    double base_qps = 0;
    for (size_t batch : {1u, 2u, 4u, 8u}) {
        for (bool overlap : {false, true}) {
            SweepPoint pt = runPoint(spec, batch, overlap);
            if (batch == 1 && !overlap)
                base_qps = pt.qps;
            table.addRow({std::to_string(batch),
                          overlap ? "on" : "off",
                          formatDouble(pt.qps, 1),
                          formatDouble(pt.p50 * 1e3, 1),
                          formatDouble(pt.p95 * 1e3, 1),
                          formatDouble(pt.p99 * 1e3, 1),
                          formatDouble(pt.qps / base_qps, 2) + "x"});
            points.push_back(pt);
        }
    }
    table.print();

    const SweepPoint &best = points.back(); // batch 8, overlap on
    double speedup = best.qps / base_qps;
    std::printf("\nbatched (B=8) + overlapped streaming: %.2fx the "
                "sequential single-query QPS (target >= 2x): %s\n",
                speedup, speedup >= 2.0 ? "PASS" : "FAIL");
    std::printf("the embedding stream amortizes across the batch "
                "and then hides behind the batch's MAC work; queue "
                "wait (included in served latency) is the price of "
                "batching.\n");

    bench::BenchReport report("serving_pipeline");
    report.scalar("queries_per_point", kQueries);
    report.scalar("functional_identity", identical ? 1 : 0);
    for (const SweepPoint &pt : points) {
        std::string key = "b" + std::to_string(pt.batch) +
            (pt.overlap ? "_overlap" : "_seq");
        report.scalar("qps_" + key, pt.qps);
        report.scalar("served_p50_" + key, pt.p50);
        report.scalar("served_p95_" + key, pt.p95);
        report.scalar("served_p99_" + key, pt.p99);
    }
    report.scalar("speedup_b8_overlap_vs_seq", speedup);
    report.write();

    return (identical && speedup >= 2.0) ? 0 : 1;
}
