/**
 * @file
 * Serving-pipeline sweep (extension): batch size x overlapped
 * streaming. Each configuration drives one core's DeviceServer —
 * admission queue, batch former, one retrieveBatch call per formed
 * batch — over the same query stream at paper scale (200 GB corpus,
 * TimingOnly), and reports aggregate QPS plus served-latency
 * percentiles with queue wait included.
 *
 * The acceptance bar for the pipeline: batched (B=8) + overlapped
 * streaming must clear 2x the QPS of sequential single-query serving
 * on identical queries, with bit-identical functional top-k (checked
 * here on a small corpus).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/workloads.hh"
#include "bench_report.hh"
#include "common/metrics.hh"
#include "common/table.hh"
#include "kernels/rag.hh"
#include "kernels/serving.hh"
#include "obs/flight.hh"
#include "obs/slo.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

constexpr int kQueries = 32;
constexpr uint64_t kSeed = 2026;

struct SweepPoint
{
    size_t batch;
    bool overlap;
    double qps = 0;
    double p50 = 0, p95 = 0, p99 = 0;
    size_t flightsCompleted = 0;
    size_t flightsReconciled = 0;
};

/**
 * @param slo Fed this point's served latencies (completion order)
 *     under class `sloClass` when non-null — the sweep's endpoints
 *     (sequential B=1 and batched B=8 + overlap) each get a windowed
 *     SLO verdict against their own budget.
 */
SweepPoint
runPoint(const RagCorpusSpec &spec, size_t batch, bool overlap,
         obs::SloMonitor *slo = nullptr,
         const char *sloClass = nullptr)
{
    SweepPoint pt{batch, overlap};

    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);

    ServerConfig cfg;
    cfg.topK = 5;
    cfg.batch = BatchPolicy{batch, batch};
    cfg.overlapStream = overlap;
    // Span trees for every query; the sweep doubles as a
    // reconciliation check over the clean batched path.
    cfg.flight.mode = obs::FlightConfig::Mode::On;
    DeviceServer server(dev, spec, 0, nullptr, kSeed, cfg);

    metrics::Histogram served;
    for (int q = 0; q < kQueries; ++q)
        server.enqueue(static_cast<uint64_t>(q),
                       genQuery(spec.dim, 1000 + q));
    for (const ServeOutcome &out : server.drain()) {
        served.observe(out.servedSeconds());
        if (slo)
            slo->observe(sloClass, out.servedSeconds());
    }

    pt.qps = kQueries / server.busySeconds();
    pt.p50 = served.quantile(0.50);
    pt.p95 = served.quantile(0.95);
    pt.p99 = served.quantile(0.99);
    pt.flightsCompleted = server.flightRecorder().completedCount();
    pt.flightsReconciled = server.flightRecorder().reconciledCount();
    return pt;
}

/**
 * Functional bit-identity: the batched, overlapped pass must return
 * exactly the top-k the sequential single-query path returns — the
 * overlap is a timing-ledger change, never a result change.
 */
bool
identityCheck()
{
    RagCorpusSpec corpus{"check", 0, 6000, 368};
    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, corpus, 5);

    std::vector<std::vector<int16_t>> queries;
    for (int q = 0; q < 8; ++q)
        queries.push_back(genQuery(corpus.dim, 1000 + q));

    auto batched =
        retriever.retrieveBatch(queries, kSeed, RagBatchOptions{true});
    for (size_t q = 0; q < queries.size(); ++q) {
        auto single = retriever.retrieve(
            queries[q], RagVariant::AllOpts, kSeed);
        if (single.hits.size() != batched[q].hits.size())
            return false;
        for (size_t i = 0; i < single.hits.size(); ++i)
            if (single.hits[i].id != batched[q].hits[i].id)
                return false;
    }
    return true;
}

} // namespace

int
main()
{
    std::printf("== Serving pipeline: batch size x overlapped "
                "streaming ==\n");
    const auto &spec = ragCorpora()[2]; // 200 GB
    std::printf("corpus: %s (%zu chunks), %d queries through one "
                "core's pipeline per point\n\n",
                spec.label, spec.numChunks, kQueries);

    bool identical = identityCheck();
    std::printf("functional top-k identity (batched+overlapped vs "
                "sequential): %s\n\n",
                identical ? "PASS" : "FAIL");

    // Windowed SLO verdicts at the sweep's endpoints: sequential
    // serving pays head-of-line blocking for the whole stream (its
    // budget is wide), the batched+overlapped pipeline is held to a
    // tight one. Targets sit just above each mode's steady p99 so a
    // pipeline regression shows up as burn, not noise.
    obs::SloPolicy sloPolicy;
    sloPolicy.windowQueries = 8;
    sloPolicy.classes.push_back(
        obs::SloClass{"sequential", 3.0, 0.99});
    sloPolicy.classes.push_back(obs::SloClass{"batched", 1.0, 0.99});
    obs::SloMonitor slo(sloPolicy);

    AsciiTable table({"batch", "overlap", "QPS", "served p50 (ms)",
                      "served p95 (ms)", "served p99 (ms)",
                      "speedup vs seq"});
    std::vector<SweepPoint> points;
    double base_qps = 0;
    for (size_t batch : {1u, 2u, 4u, 8u}) {
        for (bool overlap : {false, true}) {
            bool seq_point = batch == 1 && !overlap;
            bool best_point = batch == 8 && overlap;
            SweepPoint pt = runPoint(
                spec, batch, overlap,
                seq_point || best_point ? &slo : nullptr,
                seq_point ? "sequential" : "batched");
            if (batch == 1 && !overlap)
                base_qps = pt.qps;
            table.addRow({std::to_string(batch),
                          overlap ? "on" : "off",
                          formatDouble(pt.qps, 1),
                          formatDouble(pt.p50 * 1e3, 1),
                          formatDouble(pt.p95 * 1e3, 1),
                          formatDouble(pt.p99 * 1e3, 1),
                          formatDouble(pt.qps / base_qps, 2) + "x"});
            points.push_back(pt);
        }
    }
    table.print();

    const SweepPoint &best = points.back(); // batch 8, overlap on
    double speedup = best.qps / base_qps;
    std::printf("\nbatched (B=8) + overlapped streaming: %.2fx the "
                "sequential single-query QPS (target >= 2x): %s\n",
                speedup, speedup >= 2.0 ? "PASS" : "FAIL");

    size_t completed = 0, reconciled = 0;
    for (const SweepPoint &pt : points) {
        completed += pt.flightsCompleted;
        reconciled += pt.flightsReconciled;
    }
    bool reconciled_ok =
        completed == points.size() * kQueries &&
        reconciled == completed;
    std::printf("flight-recorder reconciliation (%zu/%zu queries "
                "across all %zu sweep points): %s\n",
                reconciled, completed, points.size(),
                reconciled_ok ? "PASS" : "FAIL");

    slo.flush();
    double worst_burn = slo.worstBurnRate();
    std::printf("SLO burn (seq target 3.0 s, batched target 1.0 s, "
                "%zu-query windows): worst %.2f, breached windows "
                "%llu\n",
                static_cast<size_t>(sloPolicy.windowQueries),
                worst_burn,
                static_cast<unsigned long long>(
                    slo.breachedWindows()));
    std::printf("the embedding stream amortizes across the batch "
                "and then hides behind the batch's MAC work; queue "
                "wait (included in served latency) is the price of "
                "batching.\n");

    bench::BenchReport report("serving_pipeline");
    report.scalar("queries_per_point", kQueries);
    report.scalar("functional_identity", identical ? 1 : 0);
    for (const SweepPoint &pt : points) {
        std::string key = "b" + std::to_string(pt.batch) +
            (pt.overlap ? "_overlap" : "_seq");
        report.scalar("qps_" + key, pt.qps);
        report.scalar("served_p50_" + key, pt.p50);
        report.scalar("served_p95_" + key, pt.p95);
        report.scalar("served_p99_" + key, pt.p99);
    }
    report.scalar("speedup_b8_overlap_vs_seq", speedup);
    report.scalar("flights_completed",
                  static_cast<double>(completed));
    report.scalar("flights_reconciled",
                  static_cast<double>(reconciled));
    report.scalar("slo_worst_burn_rate", worst_burn);
    report.scalar("slo_breached_windows",
                  static_cast<double>(slo.breachedWindows()));
    report.write();

    return (identical && speedup >= 2.0 && reconciled_ok) ? 0 : 1;
}
