/**
 * @file
 * IVF-lite recall-vs-scan trade-off on the paper's 200 GB corpus
 * (DESIGN.md section 11, EXPERIMENTS.md "IVF recall curve").
 *
 * The paper's ENNS loop scans every chunk; this bench measures what
 * the clustered index buys on the same 3.3 M-chunk corpus under the
 * clustered corpus model (topics > 0): for each nprobe it reports
 *  - recall@10 against the exhaustive CPU answer (exact, so the
 *    number is deterministic and gates),
 *  - the scan reduction (exhaustive streamed bytes / IVF streamed
 *    bytes, from the device's simulated HBM ledger),
 *  - the simulated device retrieval latency, and
 *  - the nprobe = K identity check (probing every list must
 *    reproduce the exhaustive top-k bit-for-bit).
 * It also times a metadata-filtered pass at the operating point: the
 * predicate plane adds one u16 per probed chunk to the stream and
 * one masked select per score VR, so the overhead should be ~0.3%.
 *
 * Everything gated is exact CPU arithmetic or simulated time, so the
 * snapshot diffs clean on any machine (BenchGate.IvfRecall*).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/ivf.hh"
#include "baseline/timing_models.hh"
#include "baseline/workloads.hh"
#include "bench_report.hh"
#include "common/table.hh"
#include "kernels/rag.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

constexpr uint64_t kSeed = 97;
constexpr size_t kTopK = 10;
constexpr size_t kQueries = 8; ///< one full device batch

/** One TimingOnly device batch; returns per-query result [0]. */
RagRunResult
timedBatch(const RagCorpusSpec &spec,
           const std::vector<std::vector<int16_t>> &queries,
           RagSearchParams search, const IvfClustering *ivf)
{
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, kTopK);
    RagBatchOptions opts;
    opts.overlapStream = true;
    opts.search = search;
    opts.ivf = ivf;
    return retriever.retrieveBatch(queries, kSeed, opts)[0];
}

double
recallAt10(const std::vector<Hit> &got,
           const std::vector<Hit> &truth)
{
    size_t inter = 0;
    for (const Hit &h : got)
        for (const Hit &t : truth)
            if (h.id == t.id) {
                ++inter;
                break;
            }
    return static_cast<double>(inter) /
        static_cast<double>(truth.size());
}

} // namespace

int
main()
{
    std::printf("== IVF-lite recall vs scan reduction (200 GB "
                "corpus) ==\n");
    bench::BenchReport report("ivf_recall");
    report.note("units",
                "latency ms simulated; recall exact vs exhaustive "
                "CPU top-10; scan reduction = exhaustive HBM bytes "
                "/ IVF HBM bytes");

    // The paper's 200 GB corpus under the clustered model: 32
    // topics give the coarse quantizer real structure to find.
    RagCorpusSpec spec = ragCorpora()[2];
    spec.topics = 32;
    IvfBuildConfig build{32, 16384, 4};

    std::printf("training coarse quantizer (K=%zu) over %zu chunks "
                "...\n",
                build.numLists, spec.numChunks);
    auto cl = IvfClustering::build(spec, kSeed, build);

    std::printf("materializing the flat CPU golden (%.1f GB) ...\n",
                spec.embeddingBytes() / 1e9);
    IndexFlatI16 flat(spec.dim);
    {
        auto emb = genEmbeddings(spec, spec.firstChunk,
                                 spec.numChunks, kSeed);
        flat.add(emb.data(), spec.numChunks);
    }
    IndexIvfI16 ivf(flat, cl, spec, kSeed);

    std::vector<std::vector<int16_t>> queries;
    std::vector<std::vector<Hit>> truth;
    for (size_t q = 0; q < kQueries; ++q) {
        queries.push_back(genQueryForTopic(
            spec, (q * 5) % spec.topics, 500 + q, kSeed));
        truth.push_back(flat.search(queries[q].data(), kTopK));
    }

    // Per-query (batch = 1) timing is the headline: a batch unions
    // its queries' probe lists, so batching *across topics* dilutes
    // the scan reduction — reported separately below as the
    // amortization caveat.
    RagRunResult exhaustive = timedBatch(
        spec, {queries[0]}, RagSearchParams{}, nullptr);
    RagRunResult exhaustive8 =
        timedBatch(spec, queries, RagSearchParams{}, nullptr);
    double ex_ms = exhaustive.stages.total() * 1e3;
    report.scalar("exhaustive_retrieval_ms", ex_ms);
    report.scalar("exhaustive_hbm_bytes", exhaustive.dramBytes);

    AsciiTable table({"nprobe", "recall@10", "scan reduction",
                      "retrieval (ms)", "vs exhaustive",
                      "batch-8 reduction"});
    const size_t sweep[] = {1, 2, 4, 8, build.numLists};
    size_t operating_nprobe = 0;
    double operating_reduction = 0, operating_recall = 0;
    for (size_t nprobe : sweep) {
        double recall = 0;
        for (size_t q = 0; q < kQueries; ++q)
            recall += recallAt10(ivf.search(queries[q].data(),
                                            kTopK, nprobe),
                                 truth[q]);
        recall /= static_cast<double>(kQueries);

        // Average the per-query stream over every query (probe
        // sets differ per topic, so one query is not the corpus).
        double ms = 0, bytes = 0;
        for (size_t q = 0; q < kQueries; ++q) {
            RagRunResult r = timedBatch(
                spec, {queries[q]},
                RagSearchParams{nprobe, kFilterAll}, &cl);
            ms += r.stages.total() * 1e3;
            bytes += r.dramBytes;
        }
        ms /= static_cast<double>(kQueries);
        bytes /= static_cast<double>(kQueries);
        double reduction = exhaustive.dramBytes / bytes;

        RagRunResult r8 =
            timedBatch(spec, queries,
                       RagSearchParams{nprobe, kFilterAll}, &cl);
        double reduction8 = exhaustive8.dramBytes / r8.dramBytes;

        std::string tag = "nprobe=" + std::to_string(nprobe);
        report.scalar("recall_at_10/" + tag, recall);
        report.scalar("scan_reduction_speedup/" + tag, reduction);
        report.scalar("ivf_retrieval_ms/" + tag, ms);
        report.scalar("batch8_scan_reduction_speedup/" + tag,
                      reduction8);
        table.addRow({std::to_string(nprobe),
                      formatDouble(recall, 3),
                      formatDouble(reduction, 1) + "x",
                      formatDouble(ms, 2),
                      formatDouble(ex_ms / ms, 1) + "x",
                      formatDouble(reduction8, 1) + "x"});

        // Operating point: the smallest probe budget that clears
        // 0.95 recall@10 (the acceptance bar this bench gates).
        if (operating_nprobe == 0 && recall >= 0.95) {
            operating_nprobe = nprobe;
            operating_reduction = reduction;
            operating_recall = recall;
        }
    }
    table.print();
    std::printf("(batch-8 reduction unions eight topics' probe "
                "lists — the amortization trade-off of batching "
                "across topics)\n");

    // nprobe = K identity: probing every list is the exhaustive
    // scan, bit-for-bit (scored hits compare exactly).
    bool identity = true;
    for (size_t q = 0; q < kQueries; ++q) {
        auto probed =
            ivf.search(queries[q].data(), kTopK, build.numLists);
        if (probed.size() != truth[q].size()) {
            identity = false;
            break;
        }
        for (size_t i = 0; i < probed.size(); ++i)
            if (probed[i].id != truth[q][i].id ||
                probed[i].score != truth[q][i].score)
                identity = false;
    }
    report.scalar("nprobe_k_identity", identity ? 1.0 : 0.0);
    std::printf("\nnprobe=K identity vs exhaustive: %s\n",
                identity ? "exact" : "MISMATCH");

    if (operating_nprobe == 0) {
        std::fprintf(stderr, "no nprobe reached 0.95 recall@10\n");
        return 1;
    }
    report.scalar("operating_nprobe",
                  static_cast<double>(operating_nprobe));
    report.scalar("recall_at_operating_point", operating_recall);
    report.scalar("scan_reduction_at_recall95_speedup",
                  operating_reduction);
    std::printf("operating point: nprobe=%zu -> recall@10 %.3f at "
                "%.1fx scan reduction (acceptance: >=0.95 recall, "
                ">=10x reduction)\n",
                operating_nprobe, operating_recall,
                operating_reduction);

    // Filtered pass at the operating point: the predicate plane
    // streams one u16 per probed chunk next to dim u16s of
    // embedding, so the overhead should be ~1/dim.
    RagRunResult unf = timedBatch(
        spec, queries, RagSearchParams{operating_nprobe, kFilterAll},
        &cl);
    RagRunResult fil = timedBatch(
        spec, queries,
        RagSearchParams{operating_nprobe, uint16_t(0x000f)}, &cl);
    double overhead_pct = (fil.stages.total() / unf.stages.total() -
                           1.0) *
        100.0;
    report.scalar("filter_overhead_pct", overhead_pct);
    report.scalar("filter_extra_hbm_bytes",
                  fil.dramBytes - unf.dramBytes);
    std::printf("metadata filter overhead at nprobe=%zu: %.2f%% "
                "latency, %.0f extra HBM bytes/query\n",
                operating_nprobe, overhead_pct,
                fil.dramBytes - unf.dramBytes);

    bool ok = identity && operating_reduction >= 10.0;
    std::printf("%s\n", ok ? "ACCEPTANCE MET" : "ACCEPTANCE FAILED");
    return ok ? 0 : 1;
}
