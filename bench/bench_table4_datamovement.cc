/**
 * @file
 * Paper Table 4: data-movement operation latencies. "Meas." is the
 * simulator (ground truth of this reproduction), "Analytical" is the
 * framework's cost-table fit -- the same two columns the paper
 * reports, plus the paper's own measured value for reference.
 */

#include <cstdio>
#include <functional>

#include "apusim/apu.hh"
#include "common/table.hh"
#include "gvml/gvml.hh"
#include "model/cost_table.hh"

using namespace cisram;
using namespace cisram::apu;
using namespace cisram::gvml;

namespace {

double
simCycles(ApuDevice &dev, const std::function<void(ApuCore &)> &fn)
{
    ApuCore &core = dev.core(0);
    core.setMode(ExecMode::TimingOnly);
    core.stats().reset();
    fn(core);
    return core.stats().cycles();
}

} // namespace

int
main()
{
    std::printf("== Table 4: data movement latencies (cycles) ==\n");
    ApuDevice dev;
    model::CostTable t;

    AsciiTable table({"Operation", "Description", "Analytical",
                      "Simulator", "Paper meas."});

    auto row = [&](const char *name, const char *desc,
                   double analytical,
                   const std::function<void(ApuCore &)> &fn,
                   const char *paper) {
        table.addRow({name, desc, formatDouble(analytical, 0),
                      formatDouble(simCycles(dev, fn), 0), paper});
    };

    row("dma_l4_l3", "L4->L3 DMA, 64 KiB", t.dmaL4L3(65536),
        [](ApuCore &c) { c.dmaL4ToL3(0, 0, 65536); },
        "0.19d+41164 -> 53618");
    row("dma_l4_l2", "L4->L2 DMA, 64 KiB", t.dmaL4L2(65536),
        [](ApuCore &c) { c.dmaL4ToL2(0, 0, 65536); },
        "0.63d+548 -> 41836");
    row("dma_l2_l1", "L2->L1, 16-bit x 32K", t.dmaL2L1,
        [](ApuCore &c) { c.dmaL2ToL1(0); }, "386");
    row("dma_l4_l1", "L4->L1, 16-bit x 32K", t.dmaL4L1,
        [](ApuCore &c) { c.dmaL4ToL1(0, 0); }, "22272");
    row("dma_l1_l4", "L1->L4, 16-bit x 32K", t.dmaL1L4,
        [](ApuCore &c) { c.dmaL1ToL4(0, 0); }, "22186");
    row("pio_ld(1k)", "PIO load, L4->VR, n=1024", t.pioLd(1024),
        [](ApuCore &c) { c.pioLoad(0, 0, 1, 0, 2, 1024); },
        "57n -> 58368");
    row("pio_st(1k)", "PIO store, VR->L4, n=1024", t.pioSt(1024),
        [](ApuCore &c) { c.pioStore(0, 2, 0, 0, 1, 1024); },
        "61n -> 62464");
    row("lookup(1k)", "Lookup L3 w/ index VR, 1024 entries",
        t.lookup(1024),
        [](ApuCore &c) { c.lookup(0, 1, 0, 1024); },
        "7.15s+629 -> 7951");
    row("load/store", "VR<->L1 load", t.loadStore,
        [](ApuCore &c) { c.loadVr(0, 0); }, "29");

    auto grow = [&](const char *name, const char *desc,
                    double analytical,
                    const std::function<void(Gvml &)> &fn,
                    const char *paper) {
        ApuCore &core = dev.core(0);
        core.setMode(ExecMode::TimingOnly);
        core.stats().reset();
        Gvml g(core);
        fn(g);
        table.addRow({name, desc, formatDouble(analytical, 0),
                      formatDouble(core.stats().cycles(), 0),
                      paper});
    };

    grow("cpy", "VR<->VR element-wise copy", t.cpy,
         [](Gvml &g) { g.cpy16(Vr(0), Vr(1)); }, "29");
    grow("cpy_subgrp", "Copy VR subgroup to group", t.cpySubgrp,
         [](Gvml &g) { g.cpySubgrp16Grp(Vr(0), Vr(1), 1024, 128); },
         "82");
    grow("cpy_imm", "Broadcast immediate to VR", t.cpyImm,
         [](Gvml &g) { g.cpyImm16(Vr(0), 7); }, "13");
    grow("shift_e(3)", "Shift VR entries by 3", t.shiftE(3),
         [](Gvml &g) { g.shiftE(Vr(0), Vr(1), 3); }, "373k -> 1119");
    grow("shift_e(4*64)", "Intra-bank shift by 4*64",
         t.shiftE(256),
         [](Gvml &g) { g.shiftE(Vr(0), Vr(1), 256); }, "8+k -> 72");

    table.print();
    std::printf("\nSimulator values include second-order effects "
                "(chunk rounding, descriptors, VCU decode) the "
                "analytical fits abstract away.\n");
    return 0;
}
