/**
 * @file
 * Ablation (extension): top-k selection strategy and scoring
 * precision. Compares the iterative associative-max extraction
 * against threshold counting across k, and int16 vs native GSI-float
 * scoring for the 200 GB retrieval.
 */

#include <cstdio>

#include "common/table.hh"
#include "kernels/rag.hh"
#include "kernels/topk.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::gvml;
using namespace cisram::kernels;

namespace {

double
topkCycles(bool threshold, size_t k)
{
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    Gvml g(dev.core(0));
    dev.core(0).stats().reset();
    if (threshold)
        (void)topKThreshold(g, Vr(0), k, Vr(1), Vr(2), Vr(3));
    else
        (void)topKIterative(g, Vr(0), k);
    return dev.core(0).stats().cycles();
}

} // namespace

int
main()
{
    std::printf("== Ablation: top-k strategy (cycles per 32K-score "
                "VR) ==\n");
    AsciiTable table({"k", "iterative max-extract",
                      "threshold counting", "winner"});
    for (size_t k : {1u, 2u, 5u, 8u, 16u, 32u, 64u}) {
        double it = topkCycles(false, k);
        double th = topkCycles(true, k);
        table.addRow({std::to_string(k), formatDouble(it, 0),
                      formatDouble(th, 0),
                      it < th ? "iterative" : "threshold"});
    }
    table.print();
    std::printf("The threshold search costs ~16 count_m probes "
                "regardless of k; iterative extraction pays per "
                "winner. The paper's top-5 sits on the iterative "
                "side of the crossover.\n");

    std::printf("\n== Ablation: scoring precision (200 GB "
                "retrieval) ==\n");
    const auto &spec = ragCorpora()[2];
    auto q = genQuery(spec.dim, 1);
    AsciiTable prec({"scoring", "calc distance (ms)",
                     "retrieval total (ms)", "exactness"});
    {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        dram::DramSystem hbm(dram::hbm2eConfig());
        RagRetriever r(dev, hbm, spec, 5);
        auto res = r.retrieve(q, RagVariant::AllOpts, 1);
        prec.addRow({"int16 (exact)",
                     formatDouble(res.stages.calcDistance * 1e3, 1),
                     formatDouble(res.stages.total() * 1e3, 1),
                     "exact ENNS"});
    }
    {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        dram::DramSystem hbm(dram::hbm2eConfig());
        RagRetriever r(dev, hbm, spec, 5);
        auto res = r.retrieveGf16(q, 1);
        prec.addRow({"gf16 (native float)",
                     formatDouble(res.stages.calcDistance * 1e3, 1),
                     formatDouble(res.stages.total() * 1e3, 1),
                     "9-bit mantissa rounding"});
    }
    prec.print();
    std::printf("mul_gf16 (77 cycles) undercuts mul_s16 (201), so "
                "the device's custom float format buys distance "
                "time at a small, quantified accuracy cost.\n");
    return 0;
}
