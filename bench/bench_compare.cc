/**
 * @file
 * Bench regression gate: diff two BENCH_<name>.json snapshots.
 *
 * Usage:
 *   bench_compare [opts] BASE.json CURRENT.json
 *   bench_compare [opts] BASE_DIR CURRENT_DIR
 *   bench_compare --degrade PCT IN.json OUT.json
 *
 * Options:
 *   --threshold PCT   Regression gate, percent (default 10).
 *   --min-count N     Skip histogram percentiles below N samples
 *                     (default 2).
 *   --only PREFIX     Compare only keys/series starting with PREFIX
 *                     (e.g. `--only sat.` gates one phase of a
 *                     multi-phase bench).
 *   --all             Print unchanged rows too.
 *
 * Directory mode diffs every BENCH_*.json present in both
 * directories; a snapshot missing from CURRENT_DIR fails the gate (a
 * bench that stopped reporting is a regression of the trajectory
 * itself), one missing from BASE_DIR is reported but passes (new
 * benches appear as the repo grows).
 *
 * --degrade writes a copy of IN.json uniformly PCT percent worse in
 * every gated direction — the fixture tests/CMakeLists.txt uses to
 * prove this gate actually fires.
 *
 * Exit status: 0 clean, 1 regression detected, 2 usage/IO error.
 * Only simulated quantities gate (wall-clock keys are informational),
 * so the gate is deterministic for any machine and thread count.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "common/json.hh"
#include "common/table.hh"
#include "obs/bench_diff.hh"

using namespace cisram;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_compare [--threshold PCT] [--min-count N] "
        "[--only PREFIX] [--all] BASE CURRENT\n"
        "       bench_compare --degrade PCT IN.json OUT.json\n"
        "BASE/CURRENT are BENCH_*.json files or directories of "
        "them.\n");
    return 2;
}

/**
 * Consume `flag`'s numeric value from argv[i + 1]. Fails loudly,
 * naming the flag, when the value is missing or non-numeric —
 * `--min-count --all` must not silently eat the next flag as a zero
 * (atoll("--all") == 0 disabled the histogram floor and dropped
 * --all on the floor with it).
 */
bool
numericFlagValue(const char *flag, int argc, char **argv, int &i,
                 double &out)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "bench_compare: %s requires a numeric value\n",
                     flag);
        return false;
    }
    const char *text = argv[++i];
    char *end = nullptr;
    out = std::strtod(text, &end);
    if (end == text || *end != '\0') {
        std::fprintf(stderr,
                     "bench_compare: %s requires a numeric value, "
                     "got '%s'\n",
                     flag, text);
        return false;
    }
    return true;
}

/**
 * Consume `flag`'s string value from argv[i + 1]. Same contract as
 * numericFlagValue: a missing value or a following flag fails
 * loudly, naming the flag — `--only --all` must not silently treat
 * "--all" as a key prefix that matches nothing.
 */
bool
stringFlagValue(const char *flag, int argc, char **argv, int &i,
                std::string &out)
{
    if (i + 1 >= argc) {
        std::fprintf(
            stderr,
            "bench_compare: %s requires a key-prefix value\n", flag);
        return false;
    }
    const char *text = argv[++i];
    if (text[0] == '-') {
        std::fprintf(stderr,
                     "bench_compare: %s requires a key-prefix "
                     "value, got '%s'\n",
                     flag, text);
        return false;
    }
    out = text;
    return true;
}

bool
isDirectory(const std::string &path)
{
    struct stat st;
    return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

bool
loadJson(const std::string &path, json::Value &out)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "bench_compare: cannot read '%s'\n",
                     path.c_str());
        return false;
    }
    std::string err;
    if (!json::parse(text, out, &err)) {
        std::fprintf(stderr,
                     "bench_compare: '%s' is not valid JSON: %s\n",
                     path.c_str(), err.c_str());
        return false;
    }
    return true;
}

std::vector<std::string>
listBenchFiles(const std::string &dir)
{
    std::vector<std::string> out;
    DIR *d = opendir(dir.c_str());
    if (!d)
        return out;
    while (struct dirent *e = readdir(d)) {
        std::string name = e->d_name;
        if (name.rfind("BENCH_", 0) == 0 &&
            name.size() > 5 + 6 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            out.push_back(name);
    }
    closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

std::string
formatPct(double pct)
{
    if (pct == 0)
        return "0.00%";
    if (!(pct < 1e9) && !(pct > -1e9)) // inf either way
        return pct > 0 ? "+inf%" : "-inf%";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f%%", pct);
    return buf;
}

std::string
formatValue(double v)
{
    char buf[32];
    if (v == 0)
        return "0";
    double m = std::fabs(v);
    if (m >= 1e6 || m < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.4g", v);
    else
        std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
}

/** Diff one snapshot pair; prints the delta table. */
bool
diffOne(const std::string &label, const json::Value &base,
        const json::Value &cur, const obs::BenchDiffOptions &opt,
        bool show_all)
{
    obs::BenchDiffResult res =
        obs::diffBenchReports(base, cur, opt);

    std::printf("== %s ==\n",
                res.bench.empty() ? label.c_str()
                                  : res.bench.c_str());
    AsciiTable table({"metric", "base", "current", "delta", "dir",
                      "verdict"});
    size_t hidden = 0;
    for (const obs::BenchDelta &d : res.deltas) {
        const char *verdict = "";
        if (d.regression)
            verdict = "REGRESSION";
        else if (d.improvement)
            verdict = "improved";
        else if (d.onlyBase)
            verdict = "missing now";
        else if (d.onlyCurrent)
            verdict = "new";
        bool interesting = d.regression || d.improvement ||
            d.onlyBase || d.onlyCurrent || d.deltaPct != 0;
        if (!show_all && !interesting) {
            ++hidden;
            continue;
        }
        table.addRow({d.key, formatValue(d.base),
                      formatValue(d.current),
                      d.onlyBase || d.onlyCurrent
                          ? "-"
                          : formatPct(d.deltaPct),
                      obs::directionName(d.direction), verdict});
    }
    table.print();
    std::printf("%zu keys compared, %zu regression(s), %zu "
                "improvement(s)%s\n\n",
                res.compared, res.regressions, res.improvements,
                hidden ? (" (" + std::to_string(hidden) +
                          " unchanged rows hidden; --all shows "
                          "them)")
                             .c_str()
                       : "");
    return res.ok();
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchDiffOptions opt;
    bool show_all = false;
    double degrade = 0;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--threshold") {
            double v;
            if (!numericFlagValue("--threshold", argc, argv, i, v))
                return usage();
            if (v <= 0) {
                std::fprintf(stderr, "bench_compare: --threshold "
                                     "must be > 0\n");
                return usage();
            }
            opt.thresholdPct = v;
        } else if (arg == "--min-count") {
            double v;
            if (!numericFlagValue("--min-count", argc, argv, i, v))
                return usage();
            if (v < 0) {
                std::fprintf(stderr, "bench_compare: --min-count "
                                     "must be >= 0\n");
                return usage();
            }
            opt.minHistogramCount = static_cast<uint64_t>(v);
        } else if (arg == "--degrade") {
            double v;
            if (!numericFlagValue("--degrade", argc, argv, i, v))
                return usage();
            if (v <= 0) {
                std::fprintf(stderr, "bench_compare: --degrade "
                                     "must be > 0\n");
                return usage();
            }
            degrade = v;
        } else if (arg == "--only") {
            std::string v;
            if (!stringFlagValue("--only", argc, argv, i, v))
                return usage();
            if (v.empty()) {
                std::fprintf(stderr, "bench_compare: --only "
                                     "requires a non-empty "
                                     "prefix\n");
                return usage();
            }
            opt.onlyPrefix = v;
        } else if (arg == "--all") {
            show_all = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2)
        return usage();

    if (degrade > 0) {
        json::Value in;
        if (!loadJson(paths[0], in))
            return 2;
        json::Value out = obs::degradeBenchReport(in, degrade);
        std::string doc = out.dump(2);
        doc += '\n';
        std::FILE *f = std::fopen(paths[1].c_str(), "w");
        if (!f) {
            std::fprintf(stderr,
                         "bench_compare: cannot write '%s'\n",
                         paths[1].c_str());
            return 2;
        }
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        std::printf("wrote %s: %s degraded by %.1f%%\n",
                    paths[1].c_str(), paths[0].c_str(), degrade);
        return 0;
    }

    bool ok = true;
    if (isDirectory(paths[0]) && isDirectory(paths[1])) {
        auto baseFiles = listBenchFiles(paths[0]);
        auto curFiles = listBenchFiles(paths[1]);
        if (baseFiles.empty()) {
            std::fprintf(stderr,
                         "bench_compare: no BENCH_*.json in '%s'\n",
                         paths[0].c_str());
            return 2;
        }
        for (const std::string &name : baseFiles) {
            if (std::find(curFiles.begin(), curFiles.end(), name) ==
                curFiles.end()) {
                std::printf("== %s ==\nmissing from %s: a bench "
                            "that stopped reporting fails the "
                            "gate\n\n",
                            name.c_str(), paths[1].c_str());
                ok = false;
                continue;
            }
            json::Value base, cur;
            if (!loadJson(paths[0] + "/" + name, base) ||
                !loadJson(paths[1] + "/" + name, cur))
                return 2;
            ok = diffOne(name, base, cur, opt, show_all) && ok;
        }
        for (const std::string &name : curFiles)
            if (std::find(baseFiles.begin(), baseFiles.end(),
                          name) == baseFiles.end())
                std::printf("note: %s present only in %s (new "
                            "bench, not gated)\n",
                            name.c_str(), paths[1].c_str());
    } else if (!isDirectory(paths[0]) && !isDirectory(paths[1])) {
        json::Value base, cur;
        if (!loadJson(paths[0], base) || !loadJson(paths[1], cur))
            return 2;
        ok = diffOne(paths[0], base, cur, opt, show_all);
    } else {
        std::fprintf(stderr,
                     "bench_compare: BASE and CURRENT must both be "
                     "files or both be directories\n");
        return 2;
    }

    if (!ok) {
        std::printf("bench_compare: REGRESSION past the %.1f%% "
                    "threshold\n",
                    opt.thresholdPct);
        return 1;
    }
    std::printf("bench_compare: OK (no regression past %.1f%%)\n",
                opt.thresholdPct);
    return 0;
}
