/**
 * @file
 * Paper Fig. 2: roofline of matrix-multiplication kernels on the
 * APU. The compute roof is the profiled binary-MAC peak, the memory
 * roof is the device DDR bandwidth; the kernels move toward the
 * compute roof as the data optimizations raise operational
 * intensity.
 */

#include <cstdio>

#include "bench_report.hh"
#include "common/table.hh"
#include "core/bmm_model.hh"
#include "dramsim/dram_sim.hh"
#include "kernels/bmm.hh"
#include "model/roofline.hh"
#include "model/sg_model.hh"

using namespace cisram;
using namespace cisram::core;
using namespace cisram::kernels;

int
main()
{
    std::printf("== Fig. 2: matmul kernels on the roofline ==\n");
    bench::BenchReport report("fig2_roofline");
    model::CostTable t;
    dram::DramSystem ddr(dram::ddr4DeviceConfig());
    double mem_bw = ddr.config().peakBandwidth();

    model::Roofline roof =
        model::Roofline::binaryMacRoofline(t, mem_bw);
    std::printf("compute roof: %.2f Tops (binary MAC), memory "
                "roof: %.1f GB/s, ridge OI: %.0f op/B\n\n",
                roof.peakOpsPerSec() / 1e12, mem_bw / 1e9,
                roof.ridge());

    apu::ApuDevice calib_dev;
    model::SubgroupReductionModel sg;
    sg.calibrate(calib_dev.core(0));
    BmmAnalyticalModel analytical(t, sg);

    const BmmShape shape{1024, 1024, 1024};
    double ops = static_cast<double>(shape.m) * shape.n *
        shape.kWords() * 2.0 * 16.0;

    AsciiTable table({"kernel", "OI (op/B)", "achieved (Gops)",
                      "attainable (Gops)", "% of attainable"});
    for (auto v : {BmmVariant::Baseline, BmmVariant::Opt1,
                   BmmVariant::Opt1Opt2, BmmVariant::Opt1Opt3,
                   BmmVariant::AllOpts}) {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        auto r = runBmmApu(dev, shape, v, nullptr);
        double secs = r.cycles.total() / t.clockHz;
        double achieved = ops / secs;
        double oi = analytical.operationalIntensity(shape, v);
        double attain = roof.attainable(oi);
        table.addRow({bmmVariantName(v), formatDouble(oi, 1),
                      formatDouble(achieved / 1e9, 1),
                      formatDouble(attain / 1e9, 1),
                      formatDouble(achieved / attain * 100.0, 1)});
        report.breakdown(bmmVariantName(v),
                         {{"oi_ops_per_byte", oi},
                          {"achieved_ops_per_sec", achieved},
                          {"attainable_ops_per_sec", attain}});
    }
    table.print();
    report.scalar("compute_roof_ops_per_sec", roof.peakOpsPerSec());
    report.scalar("memory_roof_bytes_per_sec", mem_bw);
    report.scalar("ridge_oi", roof.ridge());

    std::printf("\nRoofline curve (OI -> attainable Gops):\n");
    for (double oi : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
        std::printf("  OI %7.0f : %9.1f Gops%s\n", oi,
                    roof.attainable(oi) / 1e9,
                    oi >= roof.ridge() ? "  (compute bound)" : "");
    }
    return 0;
}
