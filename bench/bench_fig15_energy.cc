/**
 * @file
 * Paper Fig. 15: top-5 retrieval energy, compute-in-SRAM vs GPU.
 * APU energy comes from the rail-based power model driven by the
 * retrieval kernel's activity; GPU energy from the nvidia-smi-style
 * sampling model. The paper reports a 54.4x-117.9x reduction and a
 * static-dominated APU breakdown.
 */

#include <cstdio>

#include "bench_report.hh"
#include "common/table.hh"
#include "dramsim/dram_sim.hh"
#include "energy/energy.hh"
#include "kernels/rag.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::energy;
using namespace cisram::kernels;

int
main()
{
    std::printf("== Fig. 15: top-5 retrieval energy vs GPU ==\n");
    bench::BenchReport report("fig15_energy");
    report.note("units", "breakdown values are joules");
    ApuPowerModel apu_power;
    GpuEnergyModel gpu_energy;

    AsciiTable table({"Corpus", "APU energy (J)", "GPU energy (J)",
                      "reduction", "static %", "compute %",
                      "DRAM %", "cache %", "other %"});
    for (const auto &spec : ragCorpora()) {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        dram::DramSystem hbm(dram::hbm2eConfig());
        RagRetriever retriever(dev, hbm, spec, 5);
        auto q = genQuery(spec.dim, 1);
        auto r = retriever.retrieve(q, RagVariant::AllOpts, 1);

        ApuActivity act;
        act.totalSeconds = r.stages.total();
        act.computeSeconds = r.computeSeconds;
        act.dramBytes = r.dramBytes;
        act.cacheBytes = r.cacheBytes;
        EnergyBreakdown e = apu_power.energy(act);
        double gpu_j = gpu_energy.retrievalEnergy(
            spec.embeddingBytes());

        table.addRow({spec.label, formatDouble(e.totalJ(), 3),
                      formatDouble(gpu_j, 2),
                      formatDouble(gpu_j / e.totalJ(), 1) + "x",
                      formatDouble(e.share(e.staticJ), 1),
                      formatDouble(e.share(e.computeJ), 1),
                      formatDouble(e.share(e.dramJ), 1),
                      formatDouble(e.share(e.cacheJ), 3),
                      formatDouble(e.share(e.otherJ), 1)});
        report.breakdown(spec.label, {{"static", e.staticJ},
                                      {"compute", e.computeJ},
                                      {"dram", e.dramJ},
                                      {"cache", e.cacheJ},
                                      {"other", e.otherJ},
                                      {"total", e.totalJ()},
                                      {"gpu_total", gpu_j}});
    }
    table.print();

    std::printf("\nPaper: 54.4x-117.9x energy reduction; at 200 GB "
                "the APU breakdown is static 71.4%%, compute "
                "24.7%%, DRAM 2.7%%, other 1.1%%, cache 0.005%%.\n");
    std::printf("The simulated-HBM stack's own energy (excluded "
                "above, as in the paper's on-board telemetry):\n");
    for (const auto &spec : ragCorpora()) {
        dram::DramSystem hbm(dram::hbm2eConfig());
        hbm.resetStats();
        double secs = hbm.streamReadSeconds(
            0, static_cast<uint64_t>(spec.embeddingBytes()));
        dram::DramPowerModel pm(dram::hbm2eEnergyConfig());
        std::printf("  %-5s %.3f J dynamic + %.3f J background\n",
                    spec.label, pm.dynamicEnergy(hbm.stats()),
                    pm.backgroundEnergy(secs));
    }
    return 0;
}
