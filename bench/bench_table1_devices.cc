/**
 * @file
 * Paper Table 1: comparison of the GSI APU against an Intel Xeon
 * 8280, an NVIDIA A100, and a Graphcore IPU. The APU column derives
 * from the simulated device's configuration; the others are the
 * published specifications the paper cites.
 */

#include <cstdio>

#include "apusim/apu_spec.hh"
#include "common/table.hh"
#include "model/cost_table.hh"
#include "model/roofline.hh"

using namespace cisram;

int
main()
{
    std::printf("== Table 1: device comparison ==\n");

    const apu::ApuSpec &spec = apu::defaultSpec();
    model::CostTable t;

    // Derived APU figures from the simulated device.
    double lanes = static_cast<double>(spec.vrLength) * spec.numCores;
    double clock_mhz = spec.clockHz / 1e6;
    // Peak 8-bit add throughput: an add_u16 retires one 16-bit add
    // per lane per 12 cycles; 8-bit packing doubles it.
    double tops_8b_add = 2.0 * lanes * spec.clockHz / t.addU16 / 1e12;
    // On-chip bandwidth: every lane reads two u16 operands and
    // writes one per add_u16.
    double onchip_tbs = 3.0 * 2.0 * lanes * spec.clockHz / t.addU16 /
        1e12;
    double l1_mb = static_cast<double>(spec.numVmrs) *
        spec.vrBytes() * spec.numCores / 1e6 +
        static_cast<double>(spec.numVrs) * spec.vrBytes() *
            spec.numCores / 1e6;

    AsciiTable table({"", "GSI APU (simulated)", "Xeon 8280",
                      "NVIDIA A100", "Graphcore IPU"});
    table.addRow({"Compute units",
                  std::to_string(spec.vrLength * spec.numCores * 16) +
                      " x 1 bit",
                  "28x2x512 bits", "104x4096 bits", "1216x64 bits"});
    table.addRow({"Process", "28 nm", "14 nm", "7 nm", "7 nm"});
    table.addRow({"Clock", formatDouble(clock_mhz, 0) + " MHz",
                  "2.7 GHz", "1.4 GHz", "1.6 GHz"});
    table.addRow({"Peak 8-bit OPs",
                  formatDouble(tops_8b_add, 1) + " TOPS (derived)",
                  "10 TOPS", "75 TOPS", "16 TOPS"});
    table.addRow({"On-chip memory",
                  formatDouble(l1_mb, 1) + " MB L1", "38.5MB L3",
                  "40MB L2", "300MB L1"});
    table.addRow({"On-chip bandwidth",
                  formatDouble(onchip_tbs, 0) + " TB/s (derived)",
                  "1 TB/s", "7 TB/s", "16 TB/s"});
    table.addRow({"TDP", "60 W", "205 W", "400 W", "150 W"});
    table.print();

    std::printf("\nPaper reference row for the APU: 2M x 1-bit, "
                "28 nm, 500 MHz, 25 TOPS, 12MB L1, 26 TB/s, 60 W.\n");
    return 0;
}
