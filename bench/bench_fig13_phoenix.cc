/**
 * @file
 * Paper Fig. 13 + Table 6: Phoenix suite latency across optimization
 * levels, normalized against the calibrated single-thread Xeon
 * baseline, with the aggregate speedup statistics the paper reports.
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "kernels/phoenix_apu.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

int
main()
{
    apu::ApuDevice dev;
    XeonTimingModel cpu;

    std::printf("== Table 6: Phoenix suite statistics ==\n");
    AsciiTable t6({"Application", "Input", "CPU instructions",
                   "APU vector commands"});
    for (const auto &spec : phoenixSpecs()) {
        auto st = runPhoenixApuTimed(dev, spec.app,
                                     PhoenixVariant::AllOpts);
        char instr[32];
        std::snprintf(instr, sizeof(instr), "%.1f billion",
                      spec.cpuInstructions / 1e9);
        char uops[32];
        std::snprintf(uops, sizeof(uops), "%.2f million",
                      st.uops * 4.0 / 1e6); // all four cores
        t6.addRow({spec.name, spec.inputSize, instr, uops});
    }
    t6.print();

    std::printf("\n== Fig. 13: latency vs single-thread CPU "
                "(normalized; lower is better) ==\n");
    AsciiTable t13({"Application", "CPU 1T", "CPU 16T", "APU base",
                    "APU opt1", "APU opt2", "APU opt3",
                    "APU all opts"});
    std::vector<double> s1, smt;
    for (const auto &spec : phoenixSpecs()) {
        double cpu1 = cpu.phoenixMs(spec.app, false);
        double cpu16 = cpu.phoenixMs(spec.app, true);
        std::vector<std::string> row = {
            spec.name, "1.000",
            formatDouble(cpu16 / cpu1, 3)};
        double all_ms = 0;
        for (auto v : {PhoenixVariant::Baseline, PhoenixVariant::Opt1,
                       PhoenixVariant::Opt2, PhoenixVariant::Opt3,
                       PhoenixVariant::AllOpts}) {
            double ms =
                runPhoenixApuTimed(dev, spec.app, v).ms(dev.spec());
            row.push_back(formatDouble(ms / cpu1, 3));
            if (v == PhoenixVariant::AllOpts)
                all_ms = ms;
        }
        t13.addRow(row);
        s1.push_back(cpu1 / all_ms);
        smt.push_back(cpu16 / all_ms);
    }
    t13.print();

    std::printf("\nAPU all-opts speedups vs 1T CPU : mean %.1fx, "
                "geomean %.1fx, peak %.1fx\n",
                mean(s1), geomean(s1), maxOf(s1));
    std::printf("  (paper: mean 41.8x, geomean 14.4x, peak 128.3x)\n");
    std::printf("APU all-opts speedups vs 16T CPU: mean %.1fx, "
                "geomean %.1fx, max %.1fx\n",
                mean(smt), geomean(smt), maxOf(smt));
    std::printf("  (paper: mean 12.5x, geomean 2.6x, max 68.1x)\n");
    return 0;
}
