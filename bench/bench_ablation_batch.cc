/**
 * @file
 * Ablation (extension): batched retrieval throughput. One pass over
 * the corpus serves up to eight queries, amortizing the embedding
 * stream and the per-plane ingest handshake -- the throughput-mode
 * deployment the paper's interactive (latency-mode) evaluation
 * leaves open.
 */

#include <cstdio>

#include "common/table.hh"
#include "kernels/rag.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

int
main()
{
    std::printf("== Ablation: batched RAG retrieval throughput "
                "==\n");
    const auto &spec = ragCorpora()[2]; // 200 GB

    AsciiTable table({"batch size", "per-query latency (ms)",
                      "throughput (queries/s)", "speedup vs B=1"});
    double base = 0;
    for (size_t batch : {1u, 2u, 4u, 8u}) {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        dram::DramSystem hbm(dram::hbm2eConfig());
        RagRetriever retriever(dev, hbm, spec, 5);
        std::vector<std::vector<int16_t>> queries;
        for (size_t q = 0; q < batch; ++q)
            queries.push_back(genQuery(spec.dim, q + 1));
        auto results = retriever.retrieveBatch(queries, 1);
        double per_query = results[0].stages.total();
        if (batch == 1)
            base = per_query;
        table.addRow({std::to_string(batch),
                      formatDouble(per_query * 1e3, 1),
                      formatDouble(1.0 / per_query, 1),
                      formatDouble(base / per_query, 2) + "x"});
    }
    table.print();
    std::printf("\nThe embedding stream and plane ingest amortize "
                "across the batch; only the per-query MAC work "
                "remains, so throughput saturates near the "
                "compute-bound rate.\n");
    return 0;
}
