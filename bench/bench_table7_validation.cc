/**
 * @file
 * Paper Table 7: analytical-framework validation. The simulator
 * measures each optimized Phoenix kernel; the framework predicts it
 * from the cost-table fits plus the calibrated Eq. 1 model.
 */

#include <cmath>
#include <cstdio>

#include "common/table.hh"
#include "kernels/phoenix_model.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

int
main()
{
    std::printf("== Table 7: measured vs analytical framework ==\n");
    apu::ApuDevice dev;
    model::SubgroupReductionModel sg;
    sg.calibrate(dev.core(0));
    model::LatencyEstimator est;
    est.setSgModel(sg);

    AsciiTable table({"Application", "Meas. latency (ms)",
                      "Predicted (ms)", "Error", "Paper error"});
    const char *paper_err[] = {"+0.32%", "+2.3%", "-4.5%", "-6.2%",
                               "-0.49%", "+1.8%", "-3.1%"};
    double err_sum = 0, err_max = 0;
    size_t i = 0;
    for (const auto &spec : phoenixSpecs()) {
        double meas_ms = runPhoenixApuTimed(dev, spec.app,
                                            PhoenixVariant::AllOpts)
                             .ms(dev.spec());
        double pred_ms = predictPhoenixCycles(est, spec.app) /
            dev.spec().clockHz * 1e3;
        double err = (pred_ms - meas_ms) / meas_ms;
        err_sum += std::fabs(err);
        err_max = std::max(err_max, std::fabs(err));
        char errbuf[16];
        std::snprintf(errbuf, sizeof(errbuf), "%+.2f%%",
                      err * 100.0);
        table.addRow({spec.name, formatDouble(meas_ms, 1),
                      formatDouble(pred_ms, 1), errbuf,
                      paper_err[i]});
        ++i;
    }
    table.print();

    double n = static_cast<double>(phoenixSpecs().size());
    std::printf("\naverage accuracy: %.1f%% (paper: 97.3%%), max "
                "error: %.1f%% (paper: 6.2%%)\n",
                (1.0 - err_sum / n) * 100.0, err_max * 100.0);
    return 0;
}
