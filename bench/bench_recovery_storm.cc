/**
 * @file
 * Recovery storm (extension): quantify what a device reset costs a
 * live serving pipeline. One core's DeviceServer runs three equal
 * query phases at paper scale (200 GB corpus, TimingOnly):
 *
 *   before — steady-state batched serving (the pre-fault baseline);
 *   during — the same load, but after the first batch is served the
 *            device is force-reset mid-stream: the gdl session
 *            re-allocates, the corpus shard re-stages over PCIe,
 *            and every journaled in-flight query replays with its
 *            original admission timestamp;
 *   after  — steady-state again on the recovered core.
 *
 * The acceptance bar for the escalation ladder: a reset is a blip,
 * not a regime change — post-reset QPS must be >= 0.95x the
 * pre-fault QPS (the DramAllocator's size-keyed free lists hand the
 * rebuilt session the same addresses, so the recovered core's
 * timing ledger is bit-identical to the baseline), and every
 * storm-phase query is delivered exactly once.
 */

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "baseline/workloads.hh"
#include "bench_report.hh"
#include "common/metrics.hh"
#include "common/table.hh"
#include "kernels/rag.hh"
#include "kernels/serving.hh"
#include "obs/flight.hh"
#include "obs/slo.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

constexpr int kQueries = 32; // per phase
constexpr uint64_t kSeed = 2026;

/**
 * Windowed SLO target for every phase: just above the steady-state
 * served p99 (head-of-line queue wait included), so the pre/post
 * phases burn ~0 error budget and the storm phase's burn rate is the
 * SLO-granularity cost of the reset.
 */
constexpr double kSloTargetSeconds = 1.0;

struct PhaseResult
{
    double qps = 0;
    double p50 = 0, p99 = 0;
    size_t delivered = 0;
    bool exactlyOnce = true;
    bool allOk = true;
};

ServerConfig
stormConfig()
{
    ServerConfig cfg;
    cfg.topK = 5;
    cfg.batch = BatchPolicy{8, 8};
    cfg.overlapStream = true;
    cfg.health.enabled = true; // reset runs the full ladder
    // Record every query's span tree: the forced reset exercises the
    // park → reset → replay path, and the reconciliation check below
    // proves replayed queries still account bit-exactly.
    cfg.flight.mode = obs::FlightConfig::Mode::On;
    return cfg;
}

/**
 * Serve kQueries through the server; when `resetAfterFirstBatch`,
 * force the device reset once the first batch has been served, so
 * the remaining journaled queries ride the reset + replay path.
 * Phase QPS comes from the server's simulated busy-clock delta,
 * which includes the reset + re-stage time.
 */
PhaseResult
runPhase(DeviceServer &server, const RagCorpusSpec &spec,
         uint64_t idBase, bool resetAfterFirstBatch,
         gdl::ResetOutcome *resetOut, obs::SloMonitor &slo,
         const char *phase)
{
    PhaseResult res;
    double busy0 = server.busySeconds();

    std::vector<ServeOutcome> outs;
    auto admit = [&](int q) {
        server.enqueue(idBase + static_cast<uint64_t>(q),
                       genQuery(spec.dim,
                                static_cast<int>(idBase) + q));
    };
    int q = 0;
    if (resetAfterFirstBatch) {
        // Serve one full batch in steady state, then admit the rest
        // of the phase and reset mid-stream: those queries are
        // outstanding in the admission journal and replay on the
        // rebuilt session.
        for (; q < 8; ++q)
            admit(q);
        for (ServeOutcome &out : server.pump())
            outs.push_back(std::move(out));
        for (; q < kQueries; ++q)
            admit(q);
        *resetOut = server.forceReset();
    }
    for (; q < kQueries; ++q)
        admit(q);
    for (ServeOutcome &out : server.drain())
        outs.push_back(std::move(out));

    metrics::Histogram served;
    std::set<uint64_t> ids;
    for (const ServeOutcome &out : outs) {
        served.observe(out.servedSeconds());
        slo.observe(phase, out.servedSeconds());
        res.exactlyOnce =
            res.exactlyOnce && ids.insert(out.id).second;
        res.allOk = res.allOk && out.ok && out.fromDevice;
    }
    res.delivered = outs.size();
    res.exactlyOnce = res.exactlyOnce && outs.size() == kQueries;
    res.qps = kQueries / (server.busySeconds() - busy0);
    res.p50 = served.quantile(0.50);
    res.p99 = served.quantile(0.99);
    return res;
}

} // namespace

int
main()
{
    std::printf("== Recovery storm: serving QPS across a forced "
                "device reset ==\n");
    const auto &spec = ragCorpora()[2]; // 200 GB
    std::printf("corpus: %s (%zu chunks), %d queries per phase "
                "through one core's pipeline (batch <= 8, "
                "overlapped stream)\n\n",
                spec.label, spec.numChunks, kQueries);

    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    DeviceServer server(dev, spec, 0, nullptr, kSeed,
                        stormConfig());

    // Per-phase tumbling SLO windows (one batch per window) against
    // a shared steady-state target: the storm phase's burn rate is
    // the reset's SLO cost.
    obs::SloPolicy sloPolicy;
    sloPolicy.windowQueries = 8;
    for (const char *phase : {"before", "during", "after"})
        sloPolicy.classes.push_back(
            obs::SloClass{phase, kSloTargetSeconds, 0.99});
    obs::SloMonitor slo(sloPolicy);

    gdl::ResetOutcome reset;
    PhaseResult before =
        runPhase(server, spec, 0, false, nullptr, slo, "before");
    PhaseResult during =
        runPhase(server, spec, 1000, true, &reset, slo, "during");
    PhaseResult after =
        runPhase(server, spec, 2000, false, nullptr, slo, "after");
    slo.flush();

    AsciiTable table({"phase", "QPS", "served p50 (ms)",
                      "served p99 (ms)", "delivered",
                      "exactly-once"});
    auto row = [&](const char *name, const PhaseResult &r) {
        table.addRow({name, formatDouble(r.qps, 1),
                      formatDouble(r.p50 * 1e3, 1),
                      formatDouble(r.p99 * 1e3, 1),
                      std::to_string(r.delivered) + "/" +
                          std::to_string(kQueries),
                      r.exactlyOnce && r.allOk ? "yes" : "NO"});
    };
    row("before", before);
    row("during (forced reset)", during);
    row("after", after);
    table.print();

    std::printf("\nreset: %.2f ms simulated (re-init + %.1f MB "
                "shard re-staged over PCIe), %u reset(s), %llu "
                "replayed quer%s\n",
                reset.seconds * 1e3, reset.restagedBytes / 1e6,
                server.resets(),
                static_cast<unsigned long long>(
                    server.replayedQueries()),
                server.replayedQueries() == 1 ? "y" : "ies");

    double post_ratio = after.qps / before.qps;
    bool delivery_ok = before.exactlyOnce && before.allOk &&
        during.exactlyOnce && during.allOk && after.exactlyOnce &&
        after.allOk;
    bool qps_ok = post_ratio >= 0.95;
    std::printf("post-reset QPS is %.3fx the pre-fault QPS "
                "(target >= 0.95x): %s\n",
                post_ratio, qps_ok ? "PASS" : "FAIL");
    std::printf("every query in every phase delivered exactly once "
                "from the device: %s\n",
                delivery_ok ? "PASS" : "FAIL");

    // The flight recorder watched all three phases, including the
    // park → reset → replay of the storm batch; every delivered
    // query's final-round spans must reproduce its served latency
    // bit-exactly.
    const obs::FlightRecorder &fr = server.flightRecorder();
    bool reconciled_ok = fr.completedCount() == 3 * kQueries &&
        fr.reconciledCount() == fr.completedCount();
    std::printf("flight-recorder reconciliation (%zu/%zu queries "
                "bit-exact across the reset): %s\n",
                fr.reconciledCount(), fr.completedCount(),
                reconciled_ok ? "PASS" : "FAIL");

    auto burnOf = [&](const char *phase) {
        double worst = 0;
        for (const auto &w : slo.windows())
            if (w.cls == phase && w.burnRate > worst)
                worst = w.burnRate;
        return worst;
    };
    std::printf("SLO burn rate (target %.0f ms, %zu-query windows): "
                "before %.2f, during %.2f, after %.2f; breached "
                "windows %llu\n",
                kSloTargetSeconds * 1e3,
                static_cast<size_t>(sloPolicy.windowQueries),
                burnOf("before"), burnOf("during"), burnOf("after"),
                static_cast<unsigned long long>(
                    slo.breachedWindows()));

    bench::BenchReport report("recovery_storm");
    report.scalar("queries_per_phase", kQueries);
    report.scalar("qps_before", before.qps);
    report.scalar("qps_during", during.qps);
    report.scalar("qps_after", after.qps);
    report.scalar("served_p99_before", before.p99);
    report.scalar("served_p99_during", during.p99);
    report.scalar("served_p99_after", after.p99);
    report.scalar("reset_seconds", reset.seconds);
    report.scalar("restaged_bytes",
                  static_cast<double>(reset.restagedBytes));
    report.scalar("replayed_queries",
                  static_cast<double>(server.replayedQueries()));
    report.scalar("resets", server.resets());
    report.scalar("post_reset_qps_ratio", post_ratio);
    report.scalar("exactly_once", delivery_ok ? 1 : 0);
    report.scalar("flights_completed",
                  static_cast<double>(fr.completedCount()));
    report.scalar("flights_reconciled",
                  static_cast<double>(fr.reconciledCount()));
    report.scalar("slo_burn_before", burnOf("before"));
    report.scalar("slo_burn_during", burnOf("during"));
    report.scalar("slo_burn_after", burnOf("after"));
    report.scalar("slo_breached_windows",
                  static_cast<double>(slo.breachedWindows()));
    report.write();

    return (qps_ok && delivery_ok && reconciled_ok) ? 0 : 1;
}
