/**
 * @file
 * Recovery storm (extension): quantify what a device reset costs a
 * live serving pipeline. One core's DeviceServer runs three equal
 * query phases at paper scale (200 GB corpus, TimingOnly):
 *
 *   before — steady-state batched serving (the pre-fault baseline);
 *   during — the same load, but after the first batch is served the
 *            device is force-reset mid-stream: the gdl session
 *            re-allocates, the corpus shard re-stages over PCIe,
 *            and every journaled in-flight query replays with its
 *            original admission timestamp;
 *   after  — steady-state again on the recovered core.
 *
 * The acceptance bar for the escalation ladder: a reset is a blip,
 * not a regime change — post-reset QPS must be >= 0.95x the
 * pre-fault QPS (the DramAllocator's size-keyed free lists hand the
 * rebuilt session the same addresses, so the recovered core's
 * timing ledger is bit-identical to the baseline), and every
 * storm-phase query is delivered exactly once.
 */

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "baseline/workloads.hh"
#include "bench_report.hh"
#include "common/metrics.hh"
#include "common/table.hh"
#include "kernels/rag.hh"
#include "kernels/serving.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

constexpr int kQueries = 32; // per phase
constexpr uint64_t kSeed = 2026;

struct PhaseResult
{
    double qps = 0;
    double p50 = 0, p99 = 0;
    size_t delivered = 0;
    bool exactlyOnce = true;
    bool allOk = true;
};

ServerConfig
stormConfig()
{
    ServerConfig cfg;
    cfg.topK = 5;
    cfg.batch = BatchPolicy{8, 8};
    cfg.overlapStream = true;
    cfg.health.enabled = true; // reset runs the full ladder
    return cfg;
}

/**
 * Serve kQueries through the server; when `resetAfterFirstBatch`,
 * force the device reset once the first batch has been served, so
 * the remaining journaled queries ride the reset + replay path.
 * Phase QPS comes from the server's simulated busy-clock delta,
 * which includes the reset + re-stage time.
 */
PhaseResult
runPhase(DeviceServer &server, const RagCorpusSpec &spec,
         uint64_t idBase, bool resetAfterFirstBatch,
         gdl::ResetOutcome *resetOut)
{
    PhaseResult res;
    double busy0 = server.busySeconds();

    std::vector<ServeOutcome> outs;
    auto admit = [&](int q) {
        server.enqueue(idBase + static_cast<uint64_t>(q),
                       genQuery(spec.dim,
                                static_cast<int>(idBase) + q));
    };
    int q = 0;
    if (resetAfterFirstBatch) {
        // Serve one full batch in steady state, then admit the rest
        // of the phase and reset mid-stream: those queries are
        // outstanding in the admission journal and replay on the
        // rebuilt session.
        for (; q < 8; ++q)
            admit(q);
        for (ServeOutcome &out : server.pump())
            outs.push_back(std::move(out));
        for (; q < kQueries; ++q)
            admit(q);
        *resetOut = server.forceReset();
    }
    for (; q < kQueries; ++q)
        admit(q);
    for (ServeOutcome &out : server.drain())
        outs.push_back(std::move(out));

    metrics::Histogram served;
    std::set<uint64_t> ids;
    for (const ServeOutcome &out : outs) {
        served.observe(out.servedSeconds());
        res.exactlyOnce =
            res.exactlyOnce && ids.insert(out.id).second;
        res.allOk = res.allOk && out.ok && out.fromDevice;
    }
    res.delivered = outs.size();
    res.exactlyOnce = res.exactlyOnce && outs.size() == kQueries;
    res.qps = kQueries / (server.busySeconds() - busy0);
    res.p50 = served.quantile(0.50);
    res.p99 = served.quantile(0.99);
    return res;
}

} // namespace

int
main()
{
    std::printf("== Recovery storm: serving QPS across a forced "
                "device reset ==\n");
    const auto &spec = ragCorpora()[2]; // 200 GB
    std::printf("corpus: %s (%zu chunks), %d queries per phase "
                "through one core's pipeline (batch <= 8, "
                "overlapped stream)\n\n",
                spec.label, spec.numChunks, kQueries);

    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    DeviceServer server(dev, spec, 0, nullptr, kSeed,
                        stormConfig());

    gdl::ResetOutcome reset;
    PhaseResult before =
        runPhase(server, spec, 0, false, nullptr);
    PhaseResult during =
        runPhase(server, spec, 1000, true, &reset);
    PhaseResult after =
        runPhase(server, spec, 2000, false, nullptr);

    AsciiTable table({"phase", "QPS", "served p50 (ms)",
                      "served p99 (ms)", "delivered",
                      "exactly-once"});
    auto row = [&](const char *name, const PhaseResult &r) {
        table.addRow({name, formatDouble(r.qps, 1),
                      formatDouble(r.p50 * 1e3, 1),
                      formatDouble(r.p99 * 1e3, 1),
                      std::to_string(r.delivered) + "/" +
                          std::to_string(kQueries),
                      r.exactlyOnce && r.allOk ? "yes" : "NO"});
    };
    row("before", before);
    row("during (forced reset)", during);
    row("after", after);
    table.print();

    std::printf("\nreset: %.2f ms simulated (re-init + %.1f MB "
                "shard re-staged over PCIe), %u reset(s), %llu "
                "replayed quer%s\n",
                reset.seconds * 1e3, reset.restagedBytes / 1e6,
                server.resets(),
                static_cast<unsigned long long>(
                    server.replayedQueries()),
                server.replayedQueries() == 1 ? "y" : "ies");

    double post_ratio = after.qps / before.qps;
    bool delivery_ok = before.exactlyOnce && before.allOk &&
        during.exactlyOnce && during.allOk && after.exactlyOnce &&
        after.allOk;
    bool qps_ok = post_ratio >= 0.95;
    std::printf("post-reset QPS is %.3fx the pre-fault QPS "
                "(target >= 0.95x): %s\n",
                post_ratio, qps_ok ? "PASS" : "FAIL");
    std::printf("every query in every phase delivered exactly once "
                "from the device: %s\n",
                delivery_ok ? "PASS" : "FAIL");

    bench::BenchReport report("recovery_storm");
    report.scalar("queries_per_phase", kQueries);
    report.scalar("qps_before", before.qps);
    report.scalar("qps_during", during.qps);
    report.scalar("qps_after", after.qps);
    report.scalar("served_p99_before", before.p99);
    report.scalar("served_p99_during", during.p99);
    report.scalar("served_p99_after", after.p99);
    report.scalar("reset_seconds", reset.seconds);
    report.scalar("restaged_bytes",
                  static_cast<double>(reset.restagedBytes));
    report.scalar("replayed_queries",
                  static_cast<double>(server.replayedQueries()));
    report.scalar("resets", server.resets());
    report.scalar("post_reset_qps_ratio", post_ratio);
    report.scalar("exactly_once", delivery_ok ? 1 : 0);
    report.write();

    return (qps_ok && delivery_ok) ? 0 : 1;
}
