#include "bench_report.hh"

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

namespace cisram::bench {

BenchReport::BenchReport(std::string name) : name_(std::move(name))
{
    // Arm the full observability layer so the snapshot has per-op
    // counters and a CISRAM_TRACE run records from the first event.
    trace::Tracer::init();
    metrics::initFromEnv();
    metrics::setEnabled(true);
    root_["bench"] = name_;
    root_["schema"] = 1;
}

BenchReport::~BenchReport()
{
    if (!written_)
        write();
}

void
BenchReport::scalar(const std::string &key, double value)
{
    root_["scalars"][key] = value;
}

void
BenchReport::note(const std::string &key, std::string text)
{
    root_["notes"][key] = std::move(text);
}

void
BenchReport::breakdown(const std::string &key,
                       const std::map<std::string, double> &stages)
{
    json::Value &section = root_["breakdowns"][key];
    for (const auto &kv : stages)
        section[kv.first] = kv.second;
}

std::string
BenchReport::path() const
{
    const char *dir = std::getenv("CISRAM_BENCH_DIR");
    std::string out = dir && *dir ? dir : ".";
    // A misspelled or stale CISRAM_BENCH_DIR must fail loudly: a
    // silently skipped report poisons a bench trajectory just as
    // badly as a truncated one.
    struct stat st;
    if (stat(out.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        cisram_fatal("CISRAM_BENCH_DIR '", out,
                     "' is not an existing directory");
    if (out.back() != '/')
        out += '/';
    out += "BENCH_" + name_ + ".json";
    return out;
}

void
BenchReport::write()
{
    written_ = true;
    root_["metrics"] = metrics::Registry::get().toJson();
    std::string doc = root_.dump(2);
    doc += '\n';
    std::string file = path();
    // Write-then-rename so a crash mid-write can never leave a
    // truncated, unparseable BENCH_*.json behind.
    std::string tmp = file + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        cisram_warn("bench report: cannot open ", tmp);
        return;
    }
    size_t put = std::fwrite(doc.data(), 1, doc.size(), f);
    bool flushed = std::fclose(f) == 0 && put == doc.size();
    if (!flushed || std::rename(tmp.c_str(), file.c_str()) != 0) {
        cisram_warn("bench report: failed to finalize ", file);
        std::remove(tmp.c_str());
        return;
    }
    cisram_inform("bench report: wrote ", file);
}

} // namespace cisram::bench
