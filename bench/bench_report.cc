#include "bench_report.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

namespace cisram::bench {

BenchReport::BenchReport(std::string name) : name_(std::move(name))
{
    // Arm the full observability layer so the snapshot has per-op
    // counters and a CISRAM_TRACE run records from the first event.
    trace::Tracer::init();
    metrics::initFromEnv();
    metrics::setEnabled(true);
    root_["bench"] = name_;
    root_["schema"] = 1;
}

BenchReport::~BenchReport()
{
    if (!written_)
        write();
}

void
BenchReport::scalar(const std::string &key, double value)
{
    root_["scalars"][key] = value;
}

void
BenchReport::note(const std::string &key, std::string text)
{
    root_["notes"][key] = std::move(text);
}

void
BenchReport::breakdown(const std::string &key,
                       const std::map<std::string, double> &stages)
{
    json::Value &section = root_["breakdowns"][key];
    for (const auto &kv : stages)
        section[kv.first] = kv.second;
}

std::string
BenchReport::path() const
{
    const char *dir = std::getenv("CISRAM_BENCH_DIR");
    std::string out = dir && *dir ? dir : ".";
    if (out.back() != '/')
        out += '/';
    out += "BENCH_" + name_ + ".json";
    return out;
}

void
BenchReport::write()
{
    written_ = true;
    root_["metrics"] = metrics::Registry::get().toJson();
    std::string doc = root_.dump(2);
    doc += '\n';
    std::string file = path();
    std::FILE *f = std::fopen(file.c_str(), "w");
    if (!f) {
        cisram_warn("bench report: cannot open ", file);
        return;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    cisram_inform("bench report: wrote ", file);
}

} // namespace cisram::bench
