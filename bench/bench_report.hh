/**
 * @file
 * Machine-readable stats sink for the bench binaries.
 *
 * Every bench prints a human-oriented AsciiTable; this helper
 * additionally serializes the run — named scalars, per-stage
 * breakdowns (CycleStats::breakdown() maps plug in directly), and a
 * full metrics-registry snapshot — to BENCH_<name>.json so perf
 * trajectories and external tooling can consume the numbers.
 *
 * Schema (versioned, documented in DESIGN.md "Observability"):
 *   {
 *     "bench": "<name>", "schema": 1,
 *     "scalars":    { "<key>": number, ... },
 *     "notes":      { "<key>": "text", ... },
 *     "breakdowns": { "<key>": { "<stage>": cycles-or-seconds } },
 *     "metrics":    { "counters": {...}, "gauges": {...},
 *                     "histograms": {...} }
 *   }
 *
 * Constructing a report arms detailed metrics collection
 * (metrics::setEnabled), so the snapshot includes per-op counters.
 * The file lands in $CISRAM_BENCH_DIR (default: the working
 * directory) when write() is called or the report is destroyed. The
 * write is atomic (temp file + rename), and a CISRAM_BENCH_DIR that
 * does not name an existing directory is a fatal error rather than a
 * silently skipped report.
 */

#ifndef CISRAM_BENCH_BENCH_REPORT_HH
#define CISRAM_BENCH_BENCH_REPORT_HH

#include <map>
#include <string>

#include "common/json.hh"

namespace cisram::bench {

class BenchReport
{
  public:
    /** @param name Bench identifier, e.g. "fig12_bmm_breakdown". */
    explicit BenchReport(std::string name);

    /** Writes the file if write() was never called. */
    ~BenchReport();

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    /** Record one named number. */
    void scalar(const std::string &key, double value);

    /** Record one named text annotation. */
    void note(const std::string &key, std::string text);

    /**
     * Record a named breakdown; CycleStats::breakdown() and stage
     * maps feed this directly.
     */
    void breakdown(const std::string &key,
                   const std::map<std::string, double> &stages);

    /** Direct access to the document for bench-specific sections. */
    json::Value &root() { return root_; }

    /** Output path: $CISRAM_BENCH_DIR/BENCH_<name>.json. */
    std::string path() const;

    /** Snapshot the metrics registry and write the file. */
    void write();

  private:
    std::string name_;
    json::Value root_;
    bool written_ = false;
};

} // namespace cisram::bench

#endif // CISRAM_BENCH_BENCH_REPORT_HH
