/**
 * @file
 * Fleet scaling (extension): shard the 200 GB corpus across 1..16
 * simulated APU devices behind the fleet router and measure how
 * serving QPS scales, at replication R=1 and R=2.
 *
 * Three phases:
 *
 *   functional — a small corpus served by a 4-device R=2 fleet,
 *     once clean and once with a device killed mid-stream: every
 *     merged top-k must be bit-identical to the unsharded golden
 *     index in both runs, with exactly-once delivery and zero shed
 *     queries. Correctness first; the sweep below is timing-only.
 *
 *   sweep — N in {1, 2, 4, 8, 16} x R in {1, 2} at paper scale
 *     (200 GB, TimingOnly, S=128 shards). QPS = queries / fleet
 *     makespan (the busiest device's core-serialized busy clock).
 *     The acceptance bar: >= 12x QPS at 16 devices over 1 — which
 *     is what bounded-load placement (max primary load
 *     ceil(S/N)+1 = 9 shards of 8) leaves on the table.
 *
 *   kill — the R=2, 8-device fleet loses a device mid-stream. The
 *     run must still deliver every query exactly once with zero
 *     sheds, and the post-failover p99 must stay within 2x the
 *     no-fault baseline p99: replicas absorb a dead device as a
 *     latency blip, not an outage.
 */

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "baseline/faisslite.hh"
#include "baseline/workloads.hh"
#include "bench_report.hh"
#include "common/metrics.hh"
#include "common/table.hh"
#include "fleet/fleet.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::fleet;

namespace {

constexpr int kQueries = 32;
constexpr unsigned kShards = 128;
constexpr uint64_t kSeed = 2026;

FleetConfig
sweepConfig(unsigned devices, unsigned replicas)
{
    FleetConfig cfg;
    cfg.devices = devices;
    cfg.replicas = replicas;
    cfg.shards = kShards;
    cfg.topK = 5;
    return cfg;
}

struct RunResult
{
    double qps = 0;
    double p50 = 0, p99 = 0;
    double routerOverhead = 0; ///< mean host (merge+failover) share
    size_t delivered = 0;
    bool allOk = true;
    bool exactlyOnce = true;
    uint64_t failovers = 0;
};

/**
 * Serve kQueries through a router. The sweep uses a single wave
 * admitted at t=0: every device clock then advances by serve time
 * alone, so QPS = queries / makespan is a pure throughput measure.
 * The kill phase (`twoWaves`) splits the load into two equal waves
 * — the second admitted at the first's makespan, with shard 0's
 * primary killed while it is in flight when `killOne` — and its
 * clean twin runs the identical schedule, so the two latency
 * distributions compare like for like. (Two-wave makespans are not
 * throughput: the inter-wave idle gap is in them.)
 */
RunResult
runFleet(const RagCorpusSpec &spec, FleetConfig cfg, bool twoWaves,
         bool killOne)
{
    Router router(spec, kSeed, std::move(cfg));
    double busy0 = router.makespanSeconds();

    std::vector<FleetOutcome> outs;
    auto admit = [&](int q, double at) {
        Status st = router.admit(static_cast<uint64_t>(q + 1),
                                 genQuery(spec.dim, 600 + q), at);
        cisram_assert(st.ok(), "fleet bench admit: ",
                      st.toString());
    };

    int q = 0;
    if (twoWaves) {
        for (; q < kQueries / 2; ++q)
            admit(q, 0.0);
        for (FleetOutcome &o : router.pump())
            outs.push_back(std::move(o));
        double t = router.makespanSeconds();
        for (; q < kQueries; ++q)
            admit(q, t);
        if (killOne)
            router.killDevice(router.placement()[0][0]);
    } else {
        for (; q < kQueries; ++q)
            admit(q, 0.0);
    }
    for (FleetOutcome &o : router.drain())
        outs.push_back(std::move(o));

    RunResult res;
    metrics::Histogram lat;
    std::set<uint64_t> ids;
    double overhead = 0;
    for (const FleetOutcome &o : outs) {
        lat.observe(o.latencySeconds);
        res.allOk = res.allOk && o.ok;
        res.exactlyOnce = res.exactlyOnce && ids.insert(o.id).second;
        overhead += o.hostSeconds / o.latencySeconds;
    }
    res.delivered = outs.size();
    res.exactlyOnce = res.exactlyOnce && outs.size() == kQueries &&
        router.ledgerOutstanding() == 0;
    res.qps = kQueries / (router.makespanSeconds() - busy0);
    res.p50 = lat.quantile(0.50);
    res.p99 = lat.quantile(0.99);
    res.routerOverhead = outs.empty() ? 0 : overhead / outs.size();
    res.failovers = router.failovers();
    return res;
}

/**
 * Functional phase: merged fleet answers vs the unsharded golden
 * index, clean and with a mid-stream device kill. Returns true when
 * every answer in both runs is bit-identical to the golden top-k.
 */
bool
functionalPhase(bool &exactly_once, uint64_t &kill_failovers)
{
    RagCorpusSpec spec{"fleet-bench", 0, 2048, 368};
    IndexFlatI16 golden(spec.dim);
    auto emb = genEmbeddings(spec, 0, spec.numChunks, kSeed);
    golden.add(emb.data(), spec.numChunks);

    const int n = 16;
    auto goldenIds = [&](int q) {
        auto hits = golden.search(genQuery(spec.dim, 600 + q).data(),
                                  5);
        std::vector<uint32_t> ids;
        for (const auto &h : hits)
            ids.push_back(static_cast<uint32_t>(h.id));
        return ids;
    };

    bool exact = true;
    exactly_once = true;
    for (bool kill : {false, true}) {
        FleetConfig cfg = sweepConfig(4, 2);
        cfg.shards = 8;
        cfg.functional = true;
        Router router(spec, kSeed, std::move(cfg));

        std::vector<FleetOutcome> outs;
        for (int q = 0; q < n / 2; ++q)
            (void)router.admit(static_cast<uint64_t>(q + 1),
                               genQuery(spec.dim, 600 + q));
        for (FleetOutcome &o : router.pump())
            outs.push_back(std::move(o));
        double t = router.makespanSeconds();
        for (int q = n / 2; q < n; ++q)
            (void)router.admit(static_cast<uint64_t>(q + 1),
                               genQuery(spec.dim, 600 + q), t);
        if (kill)
            router.killDevice(router.placement()[0][0]);
        for (FleetOutcome &o : router.drain())
            outs.push_back(std::move(o));

        std::set<uint64_t> seen;
        exactly_once = exactly_once && outs.size() == n &&
            router.ledgerOutstanding() == 0;
        for (const FleetOutcome &o : outs) {
            exactly_once =
                exactly_once && o.ok && seen.insert(o.id).second;
            exact = exact &&
                o.ids == goldenIds(static_cast<int>(o.id) - 1);
        }
        if (kill)
            kill_failovers = router.failovers();
    }
    return exact;
}

} // namespace

int
main()
{
    std::printf("== Fleet scaling: sharded serving on 1..16 "
                "devices ==\n\n");

    // Phase 1: functional equivalence, clean and under a kill.
    bool exactly_once = true;
    uint64_t func_failovers = 0;
    bool exact = functionalPhase(exactly_once, func_failovers);
    std::printf("functional (4 devices, R=2, kill mid-stream): "
                "merged top-k %s the unsharded index, exactly-once "
                "%s, %llu failover(s)\n\n",
                exact ? "MATCHES" : "DIVERGES FROM",
                exactly_once ? "holds" : "VIOLATED",
                static_cast<unsigned long long>(func_failovers));

    // Phase 2: the scaling sweep at paper scale.
    const auto &spec = ragCorpora()[2]; // 200 GB
    std::printf("sweep: %s corpus (%zu chunks), %u shards, %d "
                "queries, TimingOnly\n",
                spec.label, spec.numChunks, kShards, kQueries);

    AsciiTable table({"devices", "R", "QPS", "speedup", "p50 (ms)",
                      "p99 (ms)", "router ovh", "ok"});
    bench::BenchReport report("fleet_scaling");
    report.scalar("queries", kQueries);
    report.scalar("shards", kShards);
    report.scalar("functional_exact", exact ? 1 : 0);
    report.scalar("functional_exactly_once", exactly_once ? 1 : 0);

    double base_qps[3] = {0, 0, 0}; // by replication factor
    double speedup16 = 0;
    bool sweep_ok = true;
    for (unsigned r : {1u, 2u}) {
        for (unsigned n : {1u, 2u, 4u, 8u, 16u}) {
            RunResult res =
                runFleet(spec, sweepConfig(n, r), false, false);
            if (n == 1)
                base_qps[r] = res.qps;
            double speedup = res.qps / base_qps[r];
            if (n == 16 && r == 1)
                speedup16 = speedup;
            sweep_ok =
                sweep_ok && res.allOk && res.exactlyOnce;
            table.addRow({std::to_string(n), std::to_string(r),
                          formatDouble(res.qps, 1),
                          formatDouble(speedup, 2) + "x",
                          formatDouble(res.p50 * 1e3, 2),
                          formatDouble(res.p99 * 1e3, 2),
                          formatDouble(res.routerOverhead * 100, 2)
                              + "%",
                          res.allOk && res.exactlyOnce ? "yes"
                                                       : "NO"});
            std::string key = "qps_n" + std::to_string(n) + "_r" +
                std::to_string(r);
            report.scalar(key, res.qps);
            report.scalar("p99_n" + std::to_string(n) + "_r" +
                              std::to_string(r),
                          res.p99);
        }
    }
    table.print();

    bool speedup_ok = speedup16 >= 12.0;
    std::printf("\n16-device speedup %.2fx (target >= 12x): %s\n",
                speedup16, speedup_ok ? "PASS" : "FAIL");
    std::printf("every sweep query delivered exactly once: %s\n",
                sweep_ok ? "PASS" : "FAIL");
    report.scalar("speedup_16x", speedup16);

    // Phase 3: kill a device mid-stream at R=2 and price it.
    RunResult clean = runFleet(spec, sweepConfig(8, 2), true, false);
    RunResult kill = runFleet(spec, sweepConfig(8, 2), true, true);
    double p99_ratio = kill.p99 / clean.p99;
    bool kill_ok = kill.allOk && kill.exactlyOnce &&
        kill.delivered == kQueries && kill.failovers > 0;
    bool p99_ok = p99_ratio <= 2.0;
    std::printf(
        "\nkill one of 8 devices (R=2): %zu/%d delivered, "
        "%llu failover(s), zero shed: %s\n",
        kill.delivered, kQueries,
        static_cast<unsigned long long>(kill.failovers),
        kill_ok ? "PASS" : "FAIL");
    std::printf("post-kill p99 %.2f ms vs no-fault %.2f ms "
                "(%.2fx, target <= 2x): %s\n",
                kill.p99 * 1e3, clean.p99 * 1e3, p99_ratio,
                p99_ok ? "PASS" : "FAIL");

    report.scalar("kill_delivered",
                  static_cast<double>(kill.delivered));
    report.scalar("kill_failovers",
                  static_cast<double>(kill.failovers));
    report.scalar("kill_exactly_once",
                  kill.allOk && kill.exactlyOnce ? 1 : 0);
    report.scalar("kill_p99_ratio", p99_ratio);
    report.write();

    bool pass = exact && exactly_once && sweep_ok && speedup_ok &&
        kill_ok && p99_ok;
    std::printf("\noverall: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
