/**
 * @file
 * Host-side scaling of the worker-thread pool behind runOnAllCores:
 * the same four-core sharded similarity workload is executed with
 * CISRAM_SIM_THREADS=1 (serial) and =4 (one worker per core), wall
 * clock is measured for each, and the simulated results are checked
 * for bit-identity — the pool must change only how fast the host
 * simulates, never what it simulates.
 *
 * Speedup is bounded by std::thread::hardware_concurrency(); on a
 * single-cpu host the threaded run is expected to tie (or slightly
 * trail) the serial run, and the bench reports that context rather
 * than asserting a ratio.
 */

#include <array>
#include <chrono>
#include <cstdio>
#include <thread>

#include "apusim/multicore.hh"
#include "bench_report.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/threadpool.hh"
#include "gvml/gvml.hh"

using namespace cisram;
using namespace cisram::apu;
using namespace cisram::gvml;

namespace {

/**
 * The measured workload: every core scores its shard of tiles
 * against a resident query with xor/popcount Hamming similarity and
 * folds per-tile best scores — enough vector-register work per tile
 * that the host time is dominated by simulation, not sharding.
 */
struct RunOutcome
{
    MultiCoreResult mc;
    std::array<uint64_t, 4> checksum{};
    double wallSeconds = 0;
};

RunOutcome
runWorkload(ApuDevice &dev, size_t tiles, unsigned threads)
{
    setSimThreads(threads);
    for (unsigned c = 0; c < dev.numCores(); ++c)
        dev.core(c).stats().reset();

    RunOutcome out;
    auto start = std::chrono::steady_clock::now();
    out.mc = runOnAllCores(dev, [&](ApuCore &core, unsigned idx,
                                    unsigned n) {
        Gvml g(core);
        Rng rng(1234 + idx);
        auto &slot = core.l1().slot(0);
        Shard sh = shardOf(tiles, idx, n);
        uint64_t sum = 0;
        for (size_t t = sh.begin; t < sh.end; ++t) {
            for (auto &v : slot)
                v = rng.nextU16();
            g.load16(Vr(0), Vmr(0));
            g.cpyImm16(Vr(1), 0x5a5a);
            g.xor16(Vr(2), Vr(0), Vr(1));
            g.popcnt16(Vr(3), Vr(2));
            g.cpyImm16(Vr(4), 6);
            g.ltU16(Vr(5), Vr(3), Vr(4));
            sum += g.countM(Vr(5));
        }
        out.checksum[idx] = sum;
    });
    out.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    setSimThreads(0);
    return out;
}

} // namespace

int
main()
{
    std::printf("== Multi-core host scaling: serial vs threaded "
                "simulation ==\n");
    bench::BenchReport report("multicore_scaling");

    ApuDevice dev;
    const size_t tiles = 64;
    const unsigned cores = dev.numCores();
    const unsigned hw = std::thread::hardware_concurrency();

    // Warm-up primes page allocation and the thread pool so neither
    // first-touch cost lands in one side of the comparison.
    runWorkload(dev, 8, cores);

    auto serial = runWorkload(dev, tiles, 1);
    auto threaded = runWorkload(dev, tiles, cores);

    bool identical = serial.mc.perCore == threaded.mc.perCore &&
        serial.mc.maxCycles == threaded.mc.maxCycles &&
        serial.checksum == threaded.checksum;
    double speedup = serial.wallSeconds / threaded.wallSeconds;

    AsciiTable table({"Mode", "Sim threads", "Wall (ms)",
                      "Sim cycles (max core)", "Checksum ok"});
    table.addRow({"serial", "1",
                  formatDouble(serial.wallSeconds * 1e3, 2),
                  formatDouble(serial.mc.maxCycles, 0), "-"});
    table.addRow({"threaded", std::to_string(cores),
                  formatDouble(threaded.wallSeconds * 1e3, 2),
                  formatDouble(threaded.mc.maxCycles, 0),
                  identical ? "yes" : "NO"});
    table.print();

    std::printf("\nhost speedup: %.2fx with %u sim threads on %u "
                "hardware thread(s)\n",
                speedup, cores, hw);
    if (hw < cores)
        std::printf("note: host exposes fewer cpus than sim "
                    "threads; speedup is expected to be ~1x here "
                    "and scale on a wider host.\n");
    std::printf("simulated results bit-identical across thread "
                "counts: %s\n", identical ? "PASS" : "FAIL");

    report.scalar("tiles", static_cast<double>(tiles));
    report.scalar("serial_wall_seconds", serial.wallSeconds);
    report.scalar("threaded_wall_seconds", threaded.wallSeconds);
    report.scalar("speedup", speedup);
    report.scalar("sim_threads", cores);
    report.scalar("hardware_concurrency", hw);
    report.scalar("results_identical", identical ? 1 : 0);
    report.scalar("max_core_cycles", serial.mc.maxCycles);
    report.note("workload",
                "64-tile xor/popcount similarity sharded over 4 "
                "cores via runOnAllCores");
    return identical ? 0 : 1;
}
