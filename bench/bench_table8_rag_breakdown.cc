/**
 * @file
 * Paper Table 8: compute-in-SRAM retrieval latency breakdown across
 * corpus sizes, without and with the optimizations. The embedding
 * load reflects the simulated HBM2e; everything else is APU cycle
 * accounting.
 */

#include <cstdio>

#include "bench_report.hh"
#include "common/table.hh"
#include "kernels/rag.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

RagRunResult
run(const RagCorpusSpec &spec, RagVariant v)
{
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, 5);
    auto q = genQuery(spec.dim, 1);
    return retriever.retrieve(q, v, 1);
}

std::string
us(double seconds)
{
    return formatDouble(seconds * 1e6, 0) + " us";
}

std::string
ms(double seconds)
{
    return formatDouble(seconds * 1e3, 2) + " ms";
}

} // namespace

int
main()
{
    std::printf("== Table 8: retrieval latency breakdown ==\n\n");
    bench::BenchReport report("table8_rag_breakdown");
    report.note("units", "breakdown values are seconds");
    for (bool optimized : {false, true}) {
        std::printf("-- compute-in-SRAM %s --\n",
                    optimized ? "all opts" : "no opt");
        AsciiTable table({"Stage", "10GB", "50GB", "200GB"});
        RagRunResult rs[3];
        int i = 0;
        for (const auto &spec : ragCorpora()) {
            rs[i] = run(spec, optimized ? RagVariant::AllOpts
                                        : RagVariant::NoOpt);
            const auto &st = rs[i].stages;
            report.breakdown(
                std::string(optimized ? "all_opts" : "no_opt") + "/" +
                    spec.label,
                {{"load_embedding", st.loadEmbedding},
                 {"load_query", st.loadQuery},
                 {"calc_distance", st.calcDistance},
                 {"topk_aggregation", st.topkAggregation},
                 {"return_topk", st.returnTopk},
                 {"total", st.total()}});
            ++i;
        }
        table.addRow({"Load Embedding*",
                      ms(rs[0].stages.loadEmbedding),
                      ms(rs[1].stages.loadEmbedding),
                      ms(rs[2].stages.loadEmbedding)});
        table.addRow({"Load Query", us(rs[0].stages.loadQuery),
                      us(rs[1].stages.loadQuery),
                      us(rs[2].stages.loadQuery)});
        table.addRow({"Calc Distance",
                      ms(rs[0].stages.calcDistance),
                      ms(rs[1].stages.calcDistance),
                      ms(rs[2].stages.calcDistance)});
        table.addRow({"Top-K Aggregation",
                      us(rs[0].stages.topkAggregation),
                      us(rs[1].stages.topkAggregation),
                      us(rs[2].stages.topkAggregation)});
        table.addRow({"Return Top-K", us(rs[0].stages.returnTopk),
                      us(rs[1].stages.returnTopk),
                      us(rs[2].stages.returnTopk)});
        table.addSeparator();
        table.addRow({"Total", ms(rs[0].stages.total()),
                      ms(rs[1].stages.total()),
                      ms(rs[2].stages.total())});
        table.print();
        std::printf("\n");
    }
    std::printf("* simulated HBM2e timing (Ramulator-lite), as in "
                "the paper.\n");
    std::printf("Paper totals: no-opt 21.8 / 129.5 / 539.2 ms; all "
                "opts 3.9 / 20.6 / 84.2 ms.\n");
    return 0;
}
