/**
 * @file
 * Paper Fig. 14: end-to-end RAG inference time breakdown (retrieval
 * + generation TTFT) for CPU, GPU, and compute-in-SRAM retrieval
 * across corpus sizes, with the paper's headline speedups.
 */

#include <cstdio>

#include "baseline/timing_models.hh"
#include "bench_report.hh"
#include "common/table.hh"
#include "kernels/rag.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

double
apuRetrievalMs(const RagCorpusSpec &spec, RagVariant v)
{
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, 5);
    auto q = genQuery(spec.dim, 1);
    return retriever.retrieve(q, v, 1).stages.total() * 1e3;
}

} // namespace

int
main()
{
    std::printf("== Fig. 14: end-to-end RAG inference breakdown "
                "==\n");
    bench::BenchReport report("fig14_rag_e2e");
    report.note("units", "breakdown values are milliseconds");
    XeonTimingModel cpu;
    GpuTimingModel gpu;
    LlmGenerationModel llm;
    double gen_ms = llm.ttftSeconds() * 1e3;
    report.scalar("generation_ttft_ms", gen_ms);
    std::printf("generation TTFT (Llama3.1-8B on dedicated GPU "
                "model): %.0f ms\n\n",
                gen_ms);

    AsciiTable table({"Corpus", "Retrieval platform",
                      "Retrieval (ms)", "Generation (ms)",
                      "TTFT (ms)", "Retrieval share"});
    for (const auto &spec : ragCorpora()) {
        double bytes = spec.embeddingBytes();
        struct Row
        {
            const char *name;
            double retr_ms;
        };
        Row rows[] = {
            {"CPU (FAISS model)", cpu.ennsRetrievalMs(bytes)},
            {"GPU (A6000 model)",
             gpu.ennsRetrievalSeconds(bytes) * 1e3},
            {"CIM no-opt", apuRetrievalMs(spec, RagVariant::NoOpt)},
            {"CIM +opt1", apuRetrievalMs(spec, RagVariant::Opt1)},
            {"CIM +opt2", apuRetrievalMs(spec, RagVariant::Opt2)},
            {"CIM +opt3", apuRetrievalMs(spec, RagVariant::Opt3)},
            {"CIM all opts",
             apuRetrievalMs(spec, RagVariant::AllOpts)},
        };
        for (const auto &r : rows) {
            double ttft = r.retr_ms + gen_ms;
            table.addRow({spec.label, r.name,
                          formatDouble(r.retr_ms, 1),
                          formatDouble(gen_ms, 0),
                          formatDouble(ttft, 1),
                          formatDouble(r.retr_ms / ttft * 100.0, 1) +
                              "%"});
        }
        report.breakdown(spec.label,
                         {{"cpu_retrieval_ms", rows[0].retr_ms},
                          {"gpu_retrieval_ms", rows[1].retr_ms},
                          {"cim_no_opt_ms", rows[2].retr_ms},
                          {"cim_all_opts_ms", rows[6].retr_ms},
                          {"generation_ms", gen_ms}});
        table.addSeparator();
    }
    table.print();

    std::printf("\nHeadline comparisons (all-opts CIM vs CPU):\n");
    for (const auto &spec : ragCorpora()) {
        double bytes = spec.embeddingBytes();
        double cpu_ms = cpu.ennsRetrievalMs(bytes);
        double apu_ms = apuRetrievalMs(spec, RagVariant::AllOpts);
        double e2e_cpu = cpu_ms + gen_ms;
        double e2e_apu = apu_ms + gen_ms;
        std::printf("  %-5s retrieval speedup %.1fx, end-to-end "
                    "%.2fx\n",
                    spec.label, cpu_ms / apu_ms,
                    e2e_cpu / e2e_apu);
        report.scalar(std::string("retrieval_speedup_vs_cpu/") +
                          spec.label,
                      cpu_ms / apu_ms);
        report.scalar(std::string("e2e_speedup_vs_cpu/") + spec.label,
                      e2e_cpu / e2e_apu);
    }
    std::printf("  (paper: retrieval 6.3x/4.8x/6.6x, end-to-end "
                "1.05x/1.15x/1.75x)\n");

    std::printf("\nGPU-parity check (all-opts CIM TTFT / GPU "
                "TTFT):\n");
    for (const auto &spec : ragCorpora()) {
        double gpu_ms =
            gpu.ennsRetrievalSeconds(spec.embeddingBytes()) * 1e3;
        double apu_ms = apuRetrievalMs(spec, RagVariant::AllOpts);
        std::printf("  %-5s %.2fx\n", spec.label,
                    (apu_ms + gen_ms) / (gpu_ms + gen_ms));
    }
    return 0;
}
