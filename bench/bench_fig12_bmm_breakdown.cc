/**
 * @file
 * Paper Fig. 12: binary matrix multiplication (1024x1024x1024-bit)
 * runtime breakdown across optimization levels, on the simulator,
 * cross-checked against the analytical model of Section 4.
 */

#include <cstdio>

#include "bench_report.hh"
#include "common/table.hh"
#include "core/bmm_model.hh"
#include "kernels/bmm.hh"
#include "model/sg_model.hh"

using namespace cisram;
using namespace cisram::core;
using namespace cisram::kernels;

int
main()
{
    std::printf("== Fig. 12: binary matmul runtime breakdown ==\n");
    bench::BenchReport report("fig12_bmm_breakdown");
    const BmmShape shape{1024, 1024, 1024};
    const double clock = 500.0e6;

    apu::ApuDevice calib_dev;
    model::SubgroupReductionModel sg;
    sg.calibrate(calib_dev.core(0));
    BmmAnalyticalModel analytical(model::CostTable{}, sg);

    AsciiTable table({"variant", "LD LHS (ms)", "LD RHS (ms)",
                      "VR ops (ms)", "ST (ms)", "total (ms)",
                      "model (ms)", "OI (op/B)"});

    double base_total = 0, all_total = 0;
    for (auto v : {BmmVariant::Baseline, BmmVariant::Opt1,
                   BmmVariant::Opt1Opt2, BmmVariant::Opt1Opt3,
                   BmmVariant::AllOpts}) {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        auto r = runBmmApu(dev, shape, v, nullptr);
        auto ms = [&](double c) { return c / clock * 1e3; };
        double total = r.cycles.total();
        double model_ms =
            analytical.predict(shape, v).total() / clock * 1e3;
        table.addRow({bmmVariantName(v),
                      formatDouble(ms(r.cycles.ldLhs), 2),
                      formatDouble(ms(r.cycles.ldRhs), 2),
                      formatDouble(ms(r.cycles.vrOps), 2),
                      formatDouble(ms(r.cycles.store), 2),
                      formatDouble(ms(total), 2),
                      formatDouble(model_ms, 2),
                      formatDouble(
                          analytical.operationalIntensity(shape, v),
                          1)});
        report.breakdown(bmmVariantName(v),
                         {{"ld_lhs", r.cycles.ldLhs},
                          {"ld_rhs", r.cycles.ldRhs},
                          {"vr_ops", r.cycles.vrOps},
                          {"st", r.cycles.store},
                          {"total", total},
                          {"model_total",
                           analytical.predict(shape, v).total()}});
        if (v == BmmVariant::Baseline)
            base_total = total;
        if (v == BmmVariant::AllOpts)
            all_total = total;
    }
    table.print();
    report.scalar("combined_speedup", base_total / all_total);
    report.note("units", "breakdown values are device cycles");

    std::printf("\ncombined speedup: %.1fx (paper: 18.9x, "
                "226.3 ms -> 12.0 ms)\n",
                base_total / all_total);
    return 0;
}
