/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: host
 * throughput of functional GVML operations, the bit-processor
 * micro-op engine, and DRAM-trace processing. These measure the
 * reproduction's own performance (simulation rate), not the modeled
 * device.
 */

#include <benchmark/benchmark.h>

#include "apusim/apu.hh"
#include "dramsim/dram_sim.hh"
#include "gvml/gvml.hh"
#include "gvml/microcode.hh"
#include "common/rng.hh"
#include "kernels/bmm.hh"
#include "kernels/sort.hh"

using namespace cisram;
using namespace cisram::gvml;

namespace {

void
BM_GvmlAddU16(benchmark::State &state)
{
    apu::ApuDevice dev;
    Gvml g(dev.core(0));
    for (auto _ : state)
        g.addU16(Vr(0), Vr(1), Vr(2));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(g.length()));
}
BENCHMARK(BM_GvmlAddU16);

void
BM_GvmlMulS16(benchmark::State &state)
{
    apu::ApuDevice dev;
    Gvml g(dev.core(0));
    for (auto _ : state)
        g.mulS16(Vr(0), Vr(1), Vr(2));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(g.length()));
}
BENCHMARK(BM_GvmlMulS16);

void
BM_GvmlSubgroupReduce(benchmark::State &state)
{
    apu::ApuDevice dev;
    Gvml g(dev.core(0));
    size_t grp = static_cast<size_t>(state.range(0));
    for (auto _ : state)
        g.addSubgrpS16(Vr(0), Vr(1), grp, 1);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(g.length()));
}
BENCHMARK(BM_GvmlSubgroupReduce)->Arg(64)->Arg(1024)->Arg(32768);

void
BM_BitonicSort(benchmark::State &state)
{
    apu::ApuDevice dev;
    Gvml g(dev.core(0));
    Rng rng(1);
    for (auto _ : state) {
        state.PauseTiming();
        for (auto &v : g.data(Vr(0)))
            v = rng.nextU16();
        state.ResumeTiming();
        kernels::bitonicSortU16(g, Vr(0), false, Vr(1),
                                kernels::SortScratch::standard());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(g.length()));
}
BENCHMARK(BM_BitonicSort)->Unit(benchmark::kMillisecond);

void
BM_MicrocodeAdd(benchmark::State &state)
{
    apu::ApuDevice dev;
    auto &vrs = dev.core(0).vr();
    auto &bp = dev.core(0).bitproc();
    Rng rng(2);
    for (auto &v : vrs[0])
        v = rng.nextU16();
    for (auto &v : vrs[1])
        v = rng.nextU16();
    for (auto _ : state)
        mcAddU16(bp, 2, 0, 1, 5, 6, 7);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(vrs.length()));
}
BENCHMARK(BM_MicrocodeAdd)->Unit(benchmark::kMillisecond);

void
BM_DramStream(benchmark::State &state)
{
    dram::DramSystem sys(dram::hbm2eConfig());
    uint64_t bytes = 16ull << 20;
    for (auto _ : state)
        benchmark::DoNotOptimize(sys.streamReadSeconds(0, bytes));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(bytes));
}
BENCHMARK(BM_DramStream)->Unit(benchmark::kMillisecond);

void
BM_TimingOnlyBmmAllOpts(benchmark::State &state)
{
    for (auto _ : state) {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        auto r = kernels::runBmmApu(dev, {1024, 1024, 1024},
                                    core::BmmVariant::AllOpts,
                                    nullptr);
        benchmark::DoNotOptimize(r.cycles.total());
    }
}
BENCHMARK(BM_TimingOnlyBmmAllOpts)->Unit(benchmark::kMillisecond);

} // namespace
