/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: host
 * throughput of functional GVML operations, the bit-processor
 * micro-op engine, and DRAM-trace processing. These measure the
 * reproduction's own performance (simulation rate), not the modeled
 * device.
 *
 * Two modes:
 *
 *  - default: the usual google-benchmark CLI (wall-clock iteration
 *    loops, --benchmark_filter and friends).
 *
 *  - `--report-only`: skips the timing loops and instead runs a small
 *    fixed workload, emitting BENCH_sim_micro.json via BenchReport so
 *    the bench_compare gate can track the micro-op engine. The gated
 *    scalars (identity checks, plan-cache hit rate) are simulated
 *    quantities and bit-identical on any machine; host timings are
 *    reported under wall/host keys, which the gate classifies as
 *    informational.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "apusim/apu.hh"
#include "apusim/bitproc.hh"
#include "apusim/vr_file.hh"
#include "bench_report.hh"
#include "dramsim/dram_sim.hh"
#include "gvml/gvml.hh"
#include "gvml/microcode.hh"
#include "common/rng.hh"
#include "kernels/bmm.hh"
#include "kernels/sort.hh"

using namespace cisram;
using namespace cisram::gvml;

namespace {

void
BM_GvmlAddU16(benchmark::State &state)
{
    apu::ApuDevice dev;
    Gvml g(dev.core(0));
    for (auto _ : state)
        g.addU16(Vr(0), Vr(1), Vr(2));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(g.length()));
}
BENCHMARK(BM_GvmlAddU16);

void
BM_GvmlMulS16(benchmark::State &state)
{
    apu::ApuDevice dev;
    Gvml g(dev.core(0));
    for (auto _ : state)
        g.mulS16(Vr(0), Vr(1), Vr(2));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(g.length()));
}
BENCHMARK(BM_GvmlMulS16);

void
BM_GvmlSubgroupReduce(benchmark::State &state)
{
    apu::ApuDevice dev;
    Gvml g(dev.core(0));
    size_t grp = static_cast<size_t>(state.range(0));
    for (auto _ : state)
        g.addSubgrpS16(Vr(0), Vr(1), grp, 1);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(g.length()));
}
BENCHMARK(BM_GvmlSubgroupReduce)->Arg(64)->Arg(1024)->Arg(32768);

void
BM_BitonicSort(benchmark::State &state)
{
    apu::ApuDevice dev;
    Gvml g(dev.core(0));
    Rng rng(1);
    for (auto _ : state) {
        state.PauseTiming();
        for (auto &v : g.data(Vr(0)))
            v = rng.nextU16();
        state.ResumeTiming();
        kernels::bitonicSortU16(g, Vr(0), false, Vr(1),
                                kernels::SortScratch::standard());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(g.length()));
}
BENCHMARK(BM_BitonicSort)->Unit(benchmark::kMillisecond);

void
BM_MicrocodeAdd(benchmark::State &state)
{
    apu::ApuDevice dev;
    auto &vrs = dev.core(0).vr();
    auto &bp = dev.core(0).bitproc();
    Rng rng(2);
    for (auto &v : vrs[0])
        v = rng.nextU16();
    for (auto &v : vrs[1])
        v = rng.nextU16();
    for (auto _ : state)
        mcAddU16(bp, 2, 0, 1, 5, 6, 7);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(vrs.length()));
}
BENCHMARK(BM_MicrocodeAdd)->Unit(benchmark::kMillisecond);

void
BM_MicrocodeMulReplay(benchmark::State &state)
{
    // Warm-cache multiplier replay: items processed = micro-ops
    // issued, so the report's items/s is the plan-replay uop rate.
    apu::ApuDevice dev;
    auto &vrs = dev.core(0).vr();
    auto &bp = dev.core(0).bitproc();
    Rng rng(3);
    for (auto &v : vrs[0])
        v = rng.nextU16();
    for (auto &v : vrs[1])
        v = rng.nextU16();
    mcMulU16(bp, 2, 0, 1, 3, 4, 5, 6, 7); // prime the plan cache
    uint64_t uops = 0;
    for (auto _ : state)
        uops += mcMulU16(bp, 2, 0, 1, 3, 4, 5, 6, 7);
    state.SetItemsProcessed(static_cast<int64_t>(uops));
}
BENCHMARK(BM_MicrocodeMulReplay)->Unit(benchmark::kMillisecond);

void
BM_DramStream(benchmark::State &state)
{
    dram::DramSystem sys(dram::hbm2eConfig());
    uint64_t bytes = 16ull << 20;
    for (auto _ : state)
        benchmark::DoNotOptimize(sys.streamReadSeconds(0, bytes));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(bytes));
}
BENCHMARK(BM_DramStream)->Unit(benchmark::kMillisecond);

void
BM_TimingOnlyBmmAllOpts(benchmark::State &state)
{
    for (auto _ : state) {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        auto r = kernels::runBmmApu(dev, {1024, 1024, 1024},
                                    core::BmmVariant::AllOpts,
                                    nullptr);
        benchmark::DoNotOptimize(r.cycles.total());
    }
}
BENCHMARK(BM_TimingOnlyBmmAllOpts)->Unit(benchmark::kMillisecond);

// ---- deterministic report mode (--report-only) -------------------

double
elapsedSeconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Fixed-workload run feeding BENCH_sim_micro.json. Every gated
 * scalar is a simulated quantity (identity flag or cache hit rate)
 * and must reproduce bit-for-bit on any host; everything wall-clock
 * carries a host/wall key so bench_compare treats it as
 * informational.
 */
int
runSimMicroReport()
{
    bench::BenchReport report("sim_micro");
    report.note("mode",
                "--report-only: fixed deterministic workload, no "
                "google-benchmark timing loops");

    // Word-parallel engine vs retained scalar reference over the
    // microcode suite (adder, multiplier, xor, reduction): same
    // micro-op count, same final VR file.
    {
        apu::VrFile vw(8, 512, 4);
        apu::VrFile vs(8, 512, 4);
        for (unsigned r = 0; r < 2; ++r) {
            Rng rng(11 + r);
            for (auto &v : vw[r])
                v = rng.nextU16();
            Rng rng2(11 + r);
            for (auto &v : vs[r])
                v = rng2.nextU16();
        }
        apu::BitProcArray bw(vw);
        apu::BitProcArray bs(vs);
        bs.setScalarReference(true);
        uint64_t uw = 0, us = 0;
        uw += mcAddU16(bw, 2, 0, 1, 5, 6, 7);
        us += mcAddU16(bs, 2, 0, 1, 5, 6, 7);
        uw += mcXor16(bw, 3, 0, 1, 5);
        us += mcXor16(bs, 3, 0, 1, 5);
        uw += mcSubU16(bw, 4, 0, 1, 5, 6, 7, 2);
        us += mcSubU16(bs, 4, 0, 1, 5, 6, 7, 2);
        uw += mcMulU16(bw, 2, 0, 1, 3, 4, 5, 6, 7);
        us += mcMulU16(bs, 2, 0, 1, 3, 4, 5, 6, 7);
        uw += mcAllBitsSet(bw, 3, 2);
        us += mcAllBitsSet(bs, 3, 2);
        bool same = uw == us;
        for (unsigned r = 0; r < 8 && same; ++r)
            same = std::equal(vw[r].begin(), vw[r].end(),
                              vs[r].begin());
        report.scalar("wordparallel_identity", same ? 1.0 : 0.0);
        report.scalar("mc_suite_uops_per_run",
                      static_cast<double>(uw));
    }

    // Plan cache: 10 rounds of {add, mul} after a clear is 2 misses
    // then 18 replays.
    {
        apu::VrFile vrs(8, 512, 4);
        apu::BitProcArray bp(vrs);
        mcPlanCacheClear();
        for (int i = 0; i < 10; ++i) {
            mcAddU16(bp, 2, 0, 1, 5, 6, 7);
            mcMulU16(bp, 2, 0, 1, 3, 4, 5, 6, 7);
        }
        auto st = mcPlanCacheStats();
        double total = static_cast<double>(st.hits + st.misses);
        report.scalar("plan_cache_hit_rate",
                      total ? static_cast<double>(st.hits) / total
                            : 0.0);
    }

    // Fused MAC vs the unfused cpyImm/mul/add triple: identical
    // cycles, uops, and VR state on two cores fed identical data.
    {
        apu::ApuDevice dev;
        Gvml gf(dev.core(0));
        Gvml gu(dev.core(1));
        for (unsigned r = 0; r < 6; ++r) {
            Rng rng(100 + r);
            for (auto &v : dev.core(0).vr()[r])
                v = rng.nextU16();
            Rng rng2(100 + r);
            for (auto &v : dev.core(1).vr()[r])
                v = rng2.nextU16();
        }
        const uint16_t imms[3] = {0x0003, 0xfffe, 0x7f01};
        const Vr accs[3] = {Vr(3), Vr(4), Vr(5)};
        gf.macImmS16(Vr(0), Vr(1), Vr(2), accs, imms, 3);
        for (int q = 0; q < 3; ++q) {
            gu.cpyImm16(Vr(1), imms[q]);
            gu.mulS16(Vr(2), Vr(0), Vr(1));
            gu.addS16(accs[q], accs[q], Vr(2));
        }
        bool same =
            dev.core(0).stats().cycles() ==
                dev.core(1).stats().cycles() &&
            dev.core(0).stats().uops() == dev.core(1).stats().uops();
        for (unsigned r = 0; r < 6 && same; ++r)
            same = std::equal(dev.core(0).vr()[r].begin(),
                              dev.core(0).vr()[r].end(),
                              dev.core(1).vr()[r].begin());
        report.scalar("fused_mac_identity", same ? 1.0 : 0.0);
        report.scalar("fused_mac_cycles",
                      dev.core(0).stats().cycles());
    }

    // Host-side micro-op replay throughput (informational: varies by
    // machine).
    {
        apu::ApuDevice dev;
        auto &vrs = dev.core(0).vr();
        auto &bp = dev.core(0).bitproc();
        Rng rng(3);
        for (auto &v : vrs[0])
            v = rng.nextU16();
        for (auto &v : vrs[1])
            v = rng.nextU16();
        mcMulU16(bp, 2, 0, 1, 3, 4, 5, 6, 7); // prime the cache
        constexpr int iters = 4;
        uint64_t uops = 0;
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            uops += mcMulU16(bp, 2, 0, 1, 3, 4, 5, 6, 7);
        double secs = elapsedSeconds(t0);
        report.scalar("mc_mul_replay_host_wall_seconds", secs);
        report.scalar("mc_mul_replay_host_muops_per_sec",
                      secs > 0.0 ? static_cast<double>(uops) / secs /
                                       1e6
                                 : 0.0);
    }

    report.write();
    std::printf("wrote %s\n", report.path().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--report-only") == 0)
            return runSimMicroReport();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
