/**
 * @file
 * Paper Eq. 1: the subgroup-reduction cost model. Profiles
 * add_subgrp_s16 on the simulator over a grid of (group, subgroup)
 * sizes, fits the eight (alpha_i, beta_i) coefficients by least
 * squares, and reports per-point prediction error -- the calibration
 * procedure the framework prescribes for a new device.
 */

#include <cmath>
#include <cstdio>

#include "apusim/apu.hh"
#include "common/table.hh"
#include "gvml/gvml.hh"
#include "model/sg_model.hh"

using namespace cisram;
using namespace cisram::model;

int
main()
{
    std::printf("== Eq. 1: T_sg_add(r, s) calibration ==\n");
    apu::ApuDevice dev;

    SubgroupReductionModel sg;
    auto samples = SubgroupReductionModel::profile(dev.core(0));
    sg.fit(samples);

    std::printf("fitted coefficients (p_i = alpha_i*log2 r + "
                "beta_i):\n");
    for (unsigned i = 0; i < 4; ++i)
        std::printf("  p%u: alpha = %9.4f  beta = %9.4f\n", i,
                    sg.alpha(i), sg.beta(i));
    std::printf("mean absolute fit error: %.2f%% over %zu samples\n\n",
                sg.fitError() * 100.0, samples.size());

    AsciiTable table({"group r", "subgroup s", "measured",
                      "predicted", "error %"});
    gvml::Gvml g(dev.core(0));
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    // Off-grid evaluation points (the profile grid steps r by 4x).
    struct
    {
        size_t r, s;
    } points[] = {{32, 1},    {128, 2},   {512, 8},
                  {2048, 64}, {8192, 1},  {8192, 2048},
                  {32768, 4}, {32768, 8192}};
    for (auto p : points) {
        dev.core(0).stats().reset();
        g.addSubgrpS16(gvml::Vr(0), gvml::Vr(1), p.r, p.s);
        double meas = dev.core(0).stats().cycles();
        double pred = sg.predict(p.r, p.s);
        table.addRow({std::to_string(p.r), std::to_string(p.s),
                      formatDouble(meas, 0), formatDouble(pred, 0),
                      formatDouble((pred - meas) / meas * 100.0, 2)});
    }
    table.print();

    std::printf("\nNon-linear growth with subgroup size (the "
                "intra-VR penalty the paper highlights):\n");
    for (size_t s : {1u, 16u, 256u, 4096u}) {
        std::printf("  T(32768, %5zu) = %7.0f cycles\n", s,
                    sg.predict(32768, s));
    }
    return 0;
}
