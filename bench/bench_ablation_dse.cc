/**
 * @file
 * Ablation: design-space exploration with the analytical framework
 * (Section 1: the framework "supports architectural design space
 * exploration by enabling the tuning of key design parameters").
 * Sweeps DMA bandwidth, lookup cost, PIO cost, and VR length, and
 * reports the predicted all-opts binary-matmul latency at each
 * design point.
 */

#include <cstdio>

#include "apusim/apu.hh"
#include "common/table.hh"
#include "core/bmm_model.hh"
#include "model/dse.hh"
#include "model/sg_model.hh"

using namespace cisram;
using namespace cisram::core;
using namespace cisram::model;

int
main()
{
    std::printf("== Ablation: analytical design-space exploration "
                "==\n");
    apu::ApuDevice dev;
    SubgroupReductionModel sg;
    sg.calibrate(dev.core(0));
    const BmmShape shape{1024, 1024, 1024};

    auto objective_for = [&](BmmVariant v) {
        return [&, v](const CostTable &t) {
            BmmAnalyticalModel m(t, sg);
            return t.seconds(m.predict(shape, v).total()) * 1e3;
        };
    };

    DesignSpaceExplorer dse;

    std::printf("\n-- DMA bandwidth scaling (all-opts BMM, ms) "
                "--\n");
    AsciiTable t1({"BW scale", "baseline (ms)", "all-opts (ms)",
                   "speedup"});
    auto bw = DesignSpaceExplorer::dmaBandwidthScale(
        {0.5, 1, 2, 4, 8});
    auto base_r = dse.sweep(bw, objective_for(BmmVariant::Baseline));
    auto all_r = dse.sweep(bw, objective_for(BmmVariant::AllOpts));
    for (size_t i = 0; i < base_r.size(); ++i) {
        t1.addRow({formatDouble(base_r[i].value, 1) + "x",
                   formatDouble(base_r[i].objective, 1),
                   formatDouble(all_r[i].objective, 1),
                   formatDouble(base_r[i].objective /
                                    all_r[i].objective,
                                1) +
                       "x"});
    }
    t1.print();
    std::printf("DMA bandwidth mostly accelerates the baseline "
                "(duplication traffic); the optimized kernel is "
                "already coalesced.\n");

    std::printf("\n-- Lookup engine cost scaling (opt1+opt3 LHS "
                "path) --\n");
    AsciiTable t2({"lookup cost scale", "opt1 (ms)",
                   "opt1+opt3 (ms)"});
    auto lk =
        DesignSpaceExplorer::lookupCostScale({0.25, 0.5, 1, 2, 4});
    auto o1 = dse.sweep(lk, objective_for(BmmVariant::Opt1));
    auto o13 = dse.sweep(lk, objective_for(BmmVariant::Opt1Opt3));
    for (size_t i = 0; i < o1.size(); ++i) {
        t2.addRow({formatDouble(o1[i].value, 2) + "x",
                   formatDouble(o1[i].objective, 1),
                   formatDouble(o13[i].objective, 1)});
    }
    t2.print();

    std::printf("\n-- PIO cost scaling (baseline store path) --\n");
    AsciiTable t3({"PIO cost scale", "baseline (ms)",
                   "all-opts (ms)"});
    auto pio = DesignSpaceExplorer::pioCostScale({0.25, 0.5, 1, 2});
    auto pb = dse.sweep(pio, objective_for(BmmVariant::Baseline));
    auto pa = dse.sweep(pio, objective_for(BmmVariant::AllOpts));
    for (size_t i = 0; i < pb.size(); ++i) {
        t3.addRow({formatDouble(pb[i].value, 2) + "x",
                   formatDouble(pb[i].objective, 1),
                   formatDouble(pa[i].objective, 1)});
    }
    t3.print();
    std::printf("Cheaper PIO shrinks the baseline's store "
                "bottleneck but never reaches the DMA path: the "
                "mapping optimization, not the engine, closes the "
                "gap.\n");

    std::printf("\n-- VR length (elements) --\n");
    AsciiTable t4({"VR length", "all-opts (ms)", "OI (op/B)"});
    auto vl = DesignSpaceExplorer::vrLength(
        {8192, 16384, 32768, 65536, 131072});
    for (double v : vl.values) {
        CostTable t;
        vl.apply(t, v);
        BmmAnalyticalModel m(t, sg);
        t4.addRow({formatDouble(v, 0),
                   formatDouble(
                       t.seconds(m.predict(shape,
                                           BmmVariant::AllOpts)
                                     .total()) *
                           1e3,
                       1),
                   formatDouble(m.operationalIntensity(
                                    shape, BmmVariant::AllOpts),
                                0)});
    }
    t4.print();
    return 0;
}
