/**
 * @file
 * Open-loop traffic with live corpus mutation (extension): arrivals
 * come from a deterministic seed-driven trace on the simulated
 * clock, independent of service completion, so the fleet can
 * actually be driven PAST saturation — a closed loop can only ever
 * measure its own back-pressure.
 *
 * Three phases (report keys are prefixed `func.` / `sat.` / `mut.`
 * so `bench_compare --only <prefix>` gates one phase at a time):
 *
 *   func — a small functional fleet (3 devices, R=2) serves an
 *     open-loop trace while the corpus mutates through three epochs
 *     AND a device is killed mid-stream. Every answer must
 *     bit-compare against the FAISS-lite golden of its ADMISSION
 *     epoch (snapshot consistency), with exactly-once delivery.
 *
 *   sat — the 200 GB corpus (TimingOnly, 4 devices, 8 shards) under
 *     Poisson arrivals at multiples of the fleet's probed capacity:
 *     the latency-throughput curve to saturation. The acceptance
 *     bar: a knee exists and at least 3 arrival-rate points lie past
 *     it (achieved QPS < 92% of offered), i.e. the curve genuinely
 *     reaches saturation rather than stopping at the comfortable
 *     part.
 *
 *   mut — the 50 GB corpus (TimingOnly, R=2) at 1.6x capacity with
 *     two SLO classes, a tenant quota, two mutation epochs, and a
 *     mid-run device kill. Under overload the lowest class must shed
 *     first (shed_class1 >= shed_class0 > 0), per-class SLO windows
 *     tile the epochs, and delivery stays exactly-once.
 */

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "baseline/faisslite.hh"
#include "baseline/workloads.hh"
#include "bench_report.hh"
#include "common/metrics.hh"
#include "common/table.hh"
#include "fleet/fleet.hh"
#include "load/arrivals.hh"
#include "load/mutation.hh"
#include "load/openloop.hh"
#include "obs/slo.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::fleet;
using namespace cisram::load;

namespace {

constexpr uint64_t kSeed = 77;

/** Unique outcome ids + empty ledger: the exactly-once core. */
bool
exactlyOnce(const OpenLoopResult &res, const Router &router)
{
    std::set<uint64_t> seen;
    for (const FleetOutcome &o : res.outcomes)
        if (!seen.insert(o.id).second)
            return false;
    return router.ledgerOutstanding() == 0 &&
        res.outcomes.size() >= res.admitted;
}

// ---- phase 1: functional epoch-golden correctness ----------------------

bool
funcPhase(bench::BenchReport &report)
{
    RagCorpusSpec base{"openloop-func", 0, 1024, 368};

    MutationConfig mc;
    mc.batches = 3;
    mc.startSeconds = 0.25;
    mc.intervalSeconds = 0.2;
    mc.insertsPerBatch = 64;
    mc.deletesPerBatch = 32;
    mc.seed = 7;
    MutationPlan plan(base, 4, mc);

    FleetConfig cfg;
    cfg.devices = 3;
    cfg.replicas = 2;
    cfg.shards = 4;
    cfg.functional = true;
    cfg.topK = 5;
    // Open-loop traffic is sparse: without the time close-out, tail
    // batches would sit until the final drain barrier.
    cfg.server.batch.maxLingerSeconds = 0.05;
    Router router(base, kSeed, cfg);

    TrafficConfig tc;
    tc.shape = ArrivalShape::Poisson;
    tc.ratePerSecond = 48;
    tc.durationSeconds = 1.0;
    tc.seed = 11;
    tc.tenants = {{"alpha", 2.0, 0, 32}, {"beta", 1.0, 1, 8}};
    ArrivalTrace trace = genArrivalTrace(tc);

    OpenLoopOptions opts;
    opts.plan = &plan;
    opts.killAtSeconds = 0.55;
    opts.killDevice = router.placement()[0][0];
    OpenLoopResult res = runOpenLoop(router, trace, base, opts);

    uint64_t mism = countGoldenMismatches(
        res.outcomes, trace, base, kSeed, &plan, cfg.topK);

    bool all_ok = true;
    std::set<uint64_t> epochs;
    for (const FleetOutcome &o : res.outcomes) {
        all_ok = all_ok && o.ok;
        epochs.insert(o.epoch);
    }
    bool once = exactlyOnce(res, router) && all_ok &&
        res.admitted == res.offered &&
        res.outcomes.size() == res.admitted;
    bool ok = once && mism == 0 && res.epochsApplied == 3 &&
        epochs.size() >= 2 && router.failovers() > 0;

    std::printf(
        "functional (3 devices, R=2, 3 epochs, kill at t=0.55):\n"
        "  %llu arrivals, %llu delivered across %zu epoch(s), "
        "%llu failover(s)\n"
        "  exactly-once %s, admission-epoch goldens: %llu "
        "mismatch(es) -> %s\n\n",
        static_cast<unsigned long long>(res.offered),
        static_cast<unsigned long long>(res.delivered),
        epochs.size(),
        static_cast<unsigned long long>(router.failovers()),
        once ? "holds" : "VIOLATED",
        static_cast<unsigned long long>(mism),
        ok ? "PASS" : "FAIL");

    report.scalar("func.delivered",
                  static_cast<double>(res.delivered));
    report.scalar("func.exactly_once", once ? 1 : 0);
    report.scalar("func.golden_mismatch_errors",
                  static_cast<double>(mism));
    report.scalar("func.epochs_applied",
                  static_cast<double>(res.epochsApplied));
    report.scalar("func.p99_seconds", res.latency.quantile(0.99));
    return ok;
}

// ---- phase 2: latency-throughput curve to saturation -------------------

FleetConfig
satConfig()
{
    FleetConfig cfg;
    cfg.devices = 4;
    cfg.replicas = 1;
    cfg.shards = 8;
    cfg.topK = 5;
    // One core per co-located shard server: the makespan is then a
    // true wall-clock span. With shared cores the servers' clocks
    // add, and in open loop each clock is ratcheted to the arrival
    // stream — summing them would double-count the trace duration.
    cfg.coresPerDevice = 2;
    cfg.server.batch.maxLingerSeconds = 0.05;
    return cfg;
}

/** Closed-wave probe: fleet capacity in queries per second. */
double
probeCapacity(const RagCorpusSpec &spec, const FleetConfig &cfg,
              metrics::Histogram *lat = nullptr)
{
    const int n = 16;
    Router probe(spec, kSeed, cfg);
    double busy0 = probe.makespanSeconds();
    for (int q = 0; q < n; ++q) {
        Status st = probe.admit(static_cast<uint64_t>(q + 1),
                                genQuery(spec.dim, 300 + q));
        cisram_assert(st.ok(), "capacity probe admit: ",
                      st.toString());
    }
    auto outs = probe.drain();
    cisram_assert(outs.size() == n, "capacity probe lost queries");
    if (lat)
        for (const FleetOutcome &o : outs)
            lat->observe(o.latencySeconds);
    return n / (probe.makespanSeconds() - busy0);
}

bool
satPhase(bench::BenchReport &report)
{
    const RagCorpusSpec &spec = ragCorpora()[2]; // 200 GB
    double capacity = probeCapacity(spec, satConfig());
    std::printf("saturation sweep: %s corpus, 4 devices, 8 shards, "
                "probed capacity %.2f QPS\n",
                spec.label, capacity);
    report.scalar("sat.capacity_qps", capacity);

    const double mults[] = {0.3, 0.6, 0.9, 1.1, 1.4,
                            1.8, 2.2, 2.6, 3.0};
    const int kPoints = 9;
    AsciiTable table({"load", "offered QPS", "achieved QPS",
                      "p50 (ms)", "p99 (ms)", "past knee"});

    int knee = -1;
    for (int i = 0; i < kPoints; ++i) {
        TrafficConfig tc;
        tc.shape = ArrivalShape::Poisson;
        tc.ratePerSecond = capacity * mults[i];
        tc.durationSeconds = 64.0 / tc.ratePerSecond;
        tc.seed = 21 + static_cast<uint64_t>(i);
        tc.tenants = {{"sat", 1.0, 0, 256}};
        ArrivalTrace trace = genArrivalTrace(tc);

        Router router(spec, kSeed, satConfig());
        OpenLoopResult res = runOpenLoop(router, trace, spec, {});
        // Open-loop throughput over the completion span (first
        // admission to last completion). The device makespan is the
        // wrong denominator here: idle servers ratchet their clocks
        // to the arrival stream, and co-resident servers' clocks
        // add, so it double-counts the trace duration.
        double first = 1e300, last = 0;
        for (const FleetOutcome &o : res.outcomes) {
            first = std::min(first, o.admitSeconds);
            last = std::max(last,
                            o.admitSeconds + o.latencySeconds);
        }
        double offered = res.offered / tc.durationSeconds;
        double achieved = res.delivered / (last - first);
        bool past = achieved < 0.92 * offered;
        if (past && knee < 0)
            knee = i;

        table.addRow({formatDouble(mults[i], 1) + "x",
                      formatDouble(offered, 2),
                      formatDouble(achieved, 2),
                      formatDouble(res.latency.quantile(0.50) * 1e3,
                                   2),
                      formatDouble(res.latency.quantile(0.99) * 1e3,
                                   2),
                      past ? "yes" : "no"});
        std::string m = std::to_string(i);
        report.scalar("sat.qps_m" + m, achieved);
        report.scalar("sat.p99_seconds_m" + m,
                      res.latency.quantile(0.99));
    }
    table.print();

    int past_knee = knee < 0 ? 0 : kPoints - knee;
    bool ok = knee >= 1 && past_knee >= 3;
    std::printf("\nknee at %.1fx capacity; %d point(s) past the "
                "knee (target >= 3): %s\n\n",
                knee < 0 ? 0.0 : mults[knee], past_knee,
                ok ? "PASS" : "FAIL");
    report.scalar("sat.points_past_knee",
                  static_cast<double>(past_knee));
    return ok;
}

// ---- phase 3: SLO classes under mutation + kill + overload -------------

bool
mutPhase(bench::BenchReport &report)
{
    const RagCorpusSpec &spec = ragCorpora()[1]; // 50 GB

    FleetConfig cfg;
    cfg.devices = 4;
    cfg.replicas = 2;
    cfg.shards = 8;
    cfg.topK = 5;
    cfg.coresPerDevice = 4; // 8 shards x R=2 over 4 devices
    // The batch queue drains every pump, so depth never exceeds the
    // batch scale: the cap must sit AT that scale to bite. Class 1
    // keeps half of it and sheds first inside each linger window.
    cfg.server.admission.maxQueueDepth = 8;
    cfg.server.admission.sloClasses = 2;
    cfg.server.batch.maxLingerSeconds = 0.05;
    // Admission sheds hedge to the next replica and count as router
    // breaker failures; a sustained-overload phase must widen the
    // breaker or it measures the breaker, not the class caps.
    cfg.server.breakerThreshold = 64;
    cfg.quotas.push_back(FleetConfig::TenantQuota{"tenantB", 16});

    metrics::Histogram clean;
    double capacity = probeCapacity(spec, cfg, &clean);

    MutationConfig mc;
    mc.batches = 2;
    mc.insertsPerBatch = 96;
    mc.deletesPerBatch = 48;
    mc.seed = 5;
    double rate = 1.6 * capacity;
    double duration = 96.0 / rate;
    mc.startSeconds = 0.3 * duration;
    mc.intervalSeconds = 0.3 * duration;
    MutationPlan plan(spec, cfg.shards, mc);

    TrafficConfig tc;
    tc.shape = ArrivalShape::Burst;
    tc.ratePerSecond = rate;
    tc.durationSeconds = duration;
    tc.burstFactor = 3.0;
    tc.burstDuty = 0.25;
    tc.burstPeriodSeconds = duration / 6;
    tc.seed = 31;
    tc.tenants = {{"tenantA", 1.0, 0, 64}, {"tenantB", 1.0, 1, 64}};
    ArrivalTrace trace = genArrivalTrace(tc);

    Router router(spec, kSeed, cfg);
    OpenLoopOptions opts;
    opts.plan = &plan;
    opts.killAtSeconds = 0.75 * duration;
    opts.killDevice = router.placement()[0][0];
    opts.slo.windowQueries = 32;
    opts.slo.classes = {
        obs::SloClass{sloClassName(0), 4 * clean.quantile(0.50),
                      0.9},
        obs::SloClass{sloClassName(1), 8 * clean.quantile(0.50),
                      0.9}};
    OpenLoopResult res = runOpenLoop(router, trace, spec, opts);

    uint64_t shed0 = 0, shed1 = 0;
    auto it0 = res.shedByClass.find(0);
    if (it0 != res.shedByClass.end())
        shed0 = it0->second;
    auto it1 = res.shedByClass.find(1);
    if (it1 != res.shedByClass.end())
        shed1 = it1->second;

    size_t win0 = 0, win1 = 0;
    for (const obs::SloWindow &w : res.sloWindows)
        (w.cls == sloClassName(0) ? win0 : win1) += 1;

    bool once = exactlyOnce(res, router);
    bool shed_order = shed1 >= shed0 && shed1 > 0;
    bool ok = once && shed_order && res.epochsApplied == 2 &&
        win0 >= 2 && win1 >= 2;

    std::printf("mutation + kill + overload (%s corpus, R=2, "
                "1.6x capacity, bursty):\n",
                spec.label);
    std::printf("  %llu arrivals: %llu admitted, %llu delivered; "
                "shed class0=%llu class1=%llu (lowest first: %s)\n",
                static_cast<unsigned long long>(res.offered),
                static_cast<unsigned long long>(res.admitted),
                static_cast<unsigned long long>(res.delivered),
                static_cast<unsigned long long>(shed0),
                static_cast<unsigned long long>(shed1),
                shed_order ? "PASS" : "FAIL");
    std::printf(
        "  %llu epoch(s) applied, %llu failover(s), exactly-once "
        "%s\n",
        static_cast<unsigned long long>(res.epochsApplied),
        static_cast<unsigned long long>(router.failovers()),
        once ? "holds" : "VIOLATED");
    std::printf(
        "  SLO windows: %zu/%zu per class, %llu breached, worst "
        "burn %.2f\n\n",
        win0, win1,
        static_cast<unsigned long long>(res.breachedWindows),
        res.worstBurnRate);

    report.scalar("mut.delivered",
                  static_cast<double>(res.delivered));
    report.scalar("mut.exactly_once", once ? 1 : 0);
    report.scalar("mut.shed_class0_total",
                  static_cast<double>(shed0));
    report.scalar("mut.shed_class1_total",
                  static_cast<double>(shed1));
    report.scalar("mut.breached_windows",
                  static_cast<double>(res.breachedWindows));
    report.scalar("mut.worst_burn_rate", res.worstBurnRate);
    report.scalar("mut.p99_seconds", res.latency.quantile(0.99));
    return ok;
}

} // namespace

int
main()
{
    std::printf("== Open-loop serving under live corpus mutation "
                "==\n\n");
    bench::BenchReport report("open_loop");

    bool func_ok = funcPhase(report);
    bool sat_ok = satPhase(report);
    bool mut_ok = mutPhase(report);

    bool pass = func_ok && sat_ok && mut_ok;
    std::printf("overall: %s\n", pass ? "PASS" : "FAIL");
    report.write();
    return pass ? 0 : 1;
}
