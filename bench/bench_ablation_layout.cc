/**
 * @file
 * Ablation: broadcast-friendly layouts (paper Fig. 11). Reproduces
 * the worked example (3x6 matrix, window of 3: lookup table 18 -> 3)
 * and sweeps realistic tile shapes, reporting lookup-table spans and
 * the resulting broadcast cost under the analytical cost table, plus
 * the planner decisions for reduction mapping and DMA coalescing.
 */

#include <cstdio>

#include "apusim/apu.hh"
#include "common/table.hh"
#include "core/layout.hh"
#include "core/planner.hh"
#include "model/sg_model.hh"

using namespace cisram;
using namespace cisram::core;

int
main()
{
    std::printf("== Ablation: layouts and planners ==\n");

    std::printf("\n-- Fig. 11 worked example: 3x6 matrix, "
                "window 3 --\n");
    std::vector<size_t> shape = {3, 6};
    BroadcastSweep sweep{0, 3};
    Layout rm = Layout::rowMajor(shape);
    Layout bf = broadcastFriendly(shape, 0);
    std::printf("row-major %s: per-step span %zu, shared table "
                "%zu (paper: 18)\n",
                rm.str().c_str(), maxLookupSpan(rm, sweep),
                sharedLookupSpan(rm, sweep));
    std::printf("broadcast-friendly %s: per-step span %zu "
                "(paper: 3)\n",
                bf.str().c_str(), maxLookupSpan(bf, sweep));

    std::printf("\n-- Lookup spans and broadcast cost for BMM "
                "tiles --\n");
    model::CostTable t;
    AsciiTable spans({"tile (rows x K)", "window", "row-major span",
                      "bf span", "row-major cost (cyc)",
                      "bf cost (cyc)"});
    struct
    {
        size_t rows, k;
    } tiles[] = {{32, 64}, {32, 256}, {8, 1024}, {64, 16}};
    for (auto cfg : tiles) {
        std::vector<size_t> sh = {cfg.rows, cfg.k};
        BroadcastSweep sw{0, cfg.rows};
        size_t span_rm =
            maxLookupSpan(Layout::rowMajor(sh), sw);
        size_t span_bf =
            maxLookupSpan(broadcastFriendly(sh, 0), sw);
        spans.addRow(
            {std::to_string(cfg.rows) + " x " +
                 std::to_string(cfg.k),
             std::to_string(cfg.rows), std::to_string(span_rm),
             std::to_string(span_bf),
             formatDouble(broadcastCost(t, span_rm, cfg.k), 0),
             formatDouble(broadcastCost(t, span_bf, cfg.k), 0)});
    }
    spans.print();

    std::printf("\n-- Reduction-mapping planner (cycles per "
                "result) --\n");
    apu::ApuDevice dev;
    model::SubgroupReductionModel sg;
    sg.calibrate(dev.core(0));
    AsciiTable red({"reduction length", "spatial", "temporal",
                    "winner", "advantage"});
    for (size_t r : {8u, 64u, 512u, 4096u, 32768u}) {
        ReductionPlan plan = planReduction(t, sg, r);
        red.addRow({std::to_string(r),
                    formatDouble(plan.spatialPerResult, 1),
                    formatDouble(plan.temporalPerResult, 2),
                    plan.best == ReductionMapping::Temporal
                        ? "temporal" : "spatial",
                    formatDouble(plan.speedup(), 1) + "x"});
    }
    red.print();

    std::printf("\n-- DMA-coalescing planner --\n");
    AsciiTable co({"chunk bytes", "reuse count", "naive (cyc)",
                   "coalesced (cyc)", "decision"});
    struct
    {
        double chunk;
        size_t reuse;
    } cases[] = {{2048, 64}, {2048, 4}, {65536, 1}, {512, 1024}};
    for (auto c : cases) {
        CoalescePlan plan = planDmaCoalescing(t, c.chunk, c.reuse);
        co.addRow({formatDouble(c.chunk, 0),
                   std::to_string(c.reuse),
                   formatDouble(plan.naiveCycles, 0),
                   formatDouble(plan.coalescedCycles, 0),
                   plan.coalesce ? "coalesce" : "stream"});
    }
    co.print();
    return 0;
}
