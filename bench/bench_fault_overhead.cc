/**
 * @file
 * Pins the fault subsystem's zero-cost contract (DESIGN.md "Fault
 * model"): with no plan armed, every injection hook in the stack is
 * one relaxed atomic load, the simulated timing is bit-identical to
 * an armed plan whose probabilities are all zero, and the wall-clock
 * overhead of the hooks on a representative host workload is under
 * 1%.
 *
 * Three measurements:
 *
 *  1. The raw gate: wall time of fault::plan() in a tight loop,
 *     reported in ns/call.
 *  2. Simulated-timing identity: a host workload (PCIe round trips,
 *     task launches, DRAM streams) produces bit-identical
 *     pcieSeconds / invokeSeconds / DRAM seconds unarmed vs armed
 *     with p=0 clauses (the checked code paths run, nothing fires).
 *  3. Unarmed wall-clock overhead: an unarmed run pays exactly one
 *     gate load per hook site reached, so its overhead over a build
 *     without the subsystem is (hook sites reached x gate cost) /
 *     runtime — computed from the measured gate cost and a count of
 *     the hook sites the workload crosses, and required to be under
 *     1% (it lands orders of magnitude under). The armed-p0 wall
 *     time is also reported: that is the price of *turning on*
 *     checked transfers (CRC + staging) and per-burst ECC draws,
 *     which only an armed run pays.
 *
 *  4. The flight recorder's disabled guard (obs/flight.hh): every
 *     recorder entry point bails on one inline bool, and the serving
 *     hot path crosses about three of them per query. Measured the
 *     same way as the fault gate — guard cost x sites / a real
 *     serving pass's wall time — and held to the recorder's own
 *     budget of <= 1e-3 %.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "apusim/apu.hh"
#include "baseline/workloads.hh"
#include "bench_report.hh"
#include "common/table.hh"
#include "dramsim/dram_sim.hh"
#include "fault/fault.hh"
#include "gdl/gdl.hh"
#include "kernels/serving.hh"
#include "obs/flight.hh"

using namespace cisram;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Simulated-timing fingerprint of one workload pass. */
struct SimTiming
{
    double pcieSeconds = 0;
    double invokeSeconds = 0;
    double dramSeconds = 0;

    bool
    operator==(const SimTiming &o) const
    {
        return pcieSeconds == o.pcieSeconds &&
            invokeSeconds == o.invokeSeconds &&
            dramSeconds == o.dramSeconds;
    }
};

/**
 * A representative host loop: allocate, copy in, launch, copy out,
 * free, plus a DRAM stream — every operation the fault subsystem
 * hooks.
 */
SimTiming
workload(unsigned reps)
{
    apu::ApuDevice dev;
    gdl::GdlContext ctx(dev);
    dram::DramSystem dram(dram::hbm2eConfig());
    std::vector<uint8_t> buf(64 * 1024, 0x5a);
    std::vector<uint8_t> back(buf.size());

    SimTiming t;
    for (unsigned i = 0; i < reps; ++i) {
        gdl::MemHandle h = ctx.memAllocAligned(buf.size());
        ctx.memCpyToDev(h, buf.data(), buf.size());
        int rc = ctx.runTask([](apu::ApuCore &) { return 0; });
        cisram_assert(rc == 0);
        ctx.memCpyFromDev(back.data(), h, back.size());
        ctx.memFree(h);
        t.dramSeconds += dram.streamReadSeconds(0, 1 << 20);
    }
    t.pcieSeconds = ctx.stats().pcieSeconds;
    t.invokeSeconds = ctx.stats().invokeSeconds;
    return t;
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

} // namespace

int
main()
{
    bench::BenchReport report("fault_overhead");

    // ---- 1. the raw gate ----------------------------------------
    constexpr uint64_t gate_calls = 200'000'000;
    uint64_t armed_seen = 0;
    auto t0 = Clock::now();
    for (uint64_t i = 0; i < gate_calls; ++i)
        armed_seen += fault::plan() != nullptr;
    double gate_ns = secondsSince(t0) / gate_calls * 1e9;
    cisram_assert(armed_seen == 0, "plan armed during gate timing");

    // ---- 2 + 3. workload A/B ------------------------------------
    // Interleave unarmed and armed-p0 passes so thermal/frequency
    // drift hits both alike.
    auto p0 = fault::FaultPlan::parse(
        "pcie_corrupt:p=0;task_hang:p=0;dram_flip:p=0;dev_oom:p=0");
    cisram_assert(p0.ok(), p0.status().toString());

    constexpr unsigned rounds = 9, reps = 40;
    std::vector<double> wall_unarmed, wall_armed;
    SimTiming sim_unarmed, sim_armed;
    workload(2); // warm-up (page faults, allocator pools)
    for (unsigned r = 0; r < rounds; ++r) {
        fault::disarm();
        t0 = Clock::now();
        sim_unarmed = workload(reps);
        wall_unarmed.push_back(secondsSince(t0));

        fault::armPlan(*p0);
        t0 = Clock::now();
        sim_armed = workload(reps);
        wall_armed.push_back(secondsSince(t0));
        fault::disarm();
    }

    bool identical = sim_unarmed == sim_armed;
    double mu = median(wall_unarmed), ma = median(wall_armed);

    // ---- 4. the flight recorder's disabled guard ----------------
    constexpr uint64_t guard_calls = 100'000'000;
    obs::FlightRecorder off(
        0, obs::FlightConfig{obs::FlightConfig::Mode::Off});
    t0 = Clock::now();
    for (uint64_t i = 0; i < guard_calls; ++i)
        off.recordAdmit(i, 0.0);
    double guard_ns = secondsSince(t0) / guard_calls * 1e9;
    cisram_assert(off.flights().empty(),
                  "disabled recorder recorded");

    // A real serving pass with the recorder off: 16 queries through
    // one core's batched pipeline at paper scale. Per query the hot
    // path crosses ~3 guarded entry points (admit, the per-batch
    // enablement check, complete).
    double serving_wall;
    {
        using namespace cisram::kernels;
        const auto &spec = baseline::ragCorpora()[0];
        apu::ApuDevice sdev;
        sdev.core(0).setMode(apu::ExecMode::TimingOnly);
        ServerConfig cfg;
        cfg.batch = BatchPolicy{4, 4};
        cfg.flight.mode = obs::FlightConfig::Mode::Off;
        DeviceServer server(sdev, spec, 0, nullptr, 1, cfg);
        t0 = Clock::now();
        for (uint64_t q = 0; q < 16; ++q)
            server.enqueue(q, baseline::genQuery(spec.dim,
                                                 static_cast<int>(q)));
        server.drain();
        serving_wall = secondsSince(t0);
    }
    double recorder_overhead_pct =
        3.0 * 16 * guard_ns * 1e-9 / serving_wall * 100.0;

    // Hook sites one unarmed workload pass crosses: per rep, one
    // gate each in tryMemAllocAligned, tryMemCpyToDev,
    // tryMemCpyFromDev, and DramSystem::processTrace (runTask and
    // memFree have no environmental-fault hook). Unarmed, each site
    // costs exactly the measured gate load and nothing else.
    double hooks = 4.0 * reps;
    double unarmed_overhead_pct = hooks * gate_ns * 1e-9 / mu * 100.0;

    AsciiTable table({"measurement", "value"});
    table.addRow({"fault::plan() gate",
               detail::concat(gate_ns, " ns/call")});
    table.addRow({"workload unarmed (median)",
               detail::concat(mu * 1e3, " ms")});
    table.addRow({"hook sites crossed per pass",
               detail::concat(static_cast<uint64_t>(hooks))});
    table.addRow({"unarmed overhead (hooks x gate / runtime)",
               detail::concat(unarmed_overhead_pct, " %")});
    table.addRow({"workload armed p=0 (median)",
               detail::concat(ma * 1e3, " ms")});
    table.addRow({"simulated timing bit-identical armed-p0",
               identical ? "yes" : "NO"});
    table.addRow({"flight-recorder disabled guard",
               detail::concat(guard_ns, " ns/call")});
    table.addRow({"recorder-off overhead on a serving pass",
               detail::concat(recorder_overhead_pct, " %")});
    table.print();

    report.scalar("gate_ns_per_call", gate_ns);
    report.scalar("workload_unarmed_ms", mu * 1e3);
    report.scalar("hook_sites_per_pass", hooks);
    report.scalar("unarmed_overhead_percent", unarmed_overhead_pct);
    report.scalar("workload_armed_p0_ms", ma * 1e3);
    report.scalar("sim_timing_identical", identical ? 1 : 0);
    report.scalar("flight_guard_ns_per_call", guard_ns);
    report.scalar("serving_pass_ms", serving_wall * 1e3);
    report.scalar("recorder_disabled_overhead_percent",
                  recorder_overhead_pct);
    report.note("contract",
                "unarmed hooks are one relaxed atomic load each "
                "(overhead must be <1%; it lands orders of magnitude "
                "under), and simulated timing is bit-identical "
                "unarmed vs armed-p=0; armed runs additionally pay "
                "for CRC-checked transfers and per-burst ECC draws");

    if (!identical) {
        std::printf("FAIL: simulated timing diverged\n");
        return 1;
    }
    if (unarmed_overhead_pct >= 1.0) {
        std::printf("FAIL: unarmed overhead %.4f%% >= 1%%\n",
                    unarmed_overhead_pct);
        return 1;
    }
    if (recorder_overhead_pct >= 1e-3) {
        std::printf("FAIL: disabled-recorder overhead %.6f%% >= "
                    "1e-3%%\n",
                    recorder_overhead_pct);
        return 1;
    }
    std::printf("PASS: timing identical, unarmed overhead %.6f%%, "
                "disabled-recorder overhead %.6f%%\n",
                unarmed_overhead_pct, recorder_overhead_pct);
    return 0;
}
