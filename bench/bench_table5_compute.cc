/**
 * @file
 * Paper Table 5: computation operation latencies on the simulated
 * device versus the analytical framework's constants.
 */

#include <cstdio>
#include <functional>

#include "apusim/apu.hh"
#include "common/table.hh"
#include "gvml/gvml.hh"
#include "model/cost_table.hh"

using namespace cisram;
using namespace cisram::gvml;

int
main()
{
    std::printf("== Table 5: computation latencies (cycles) ==\n");
    apu::ApuDevice dev;
    auto &core = dev.core(0);
    core.setMode(apu::ExecMode::TimingOnly);
    Gvml g(core);
    model::CostTable t;

    AsciiTable table({"Operation", "Description", "Analytical",
                      "Simulator", "Paper"});

    auto row = [&](const char *name, const char *desc,
                   double analytical,
                   const std::function<void(Gvml &)> &fn,
                   int paper) {
        core.stats().reset();
        fn(g);
        table.addRow({name, desc, formatDouble(analytical, 0),
                      formatDouble(core.stats().cycles(), 0),
                      std::to_string(paper)});
    };

    const Vr d{0}, a{1}, b{2};
    row("and_16", "16-bit bit-wise and", t.and16,
        [&](Gvml &g) { g.and16(d, a, b); }, 12);
    row("or_16", "16-bit bit-wise or", t.or16,
        [&](Gvml &g) { g.or16(d, a, b); }, 8);
    row("not_16", "16-bit bit-wise not", t.not16,
        [&](Gvml &g) { g.not16(d, a); }, 10);
    row("xor_16", "16-bit bit-wise xor", t.xor16,
        [&](Gvml &g) { g.xor16(d, a, b); }, 12);
    row("ashift", "int16 arithmetic shift", t.ashift,
        [&](Gvml &g) { g.ashImm16(d, a, -2); }, 15);
    row("add_u16", "uint16 addition", t.addU16,
        [&](Gvml &g) { g.addU16(d, a, b); }, 12);
    row("add_s16", "int16 addition", t.addS16,
        [&](Gvml &g) { g.addS16(d, a, b); }, 13);
    row("sub_u16", "uint16 subtraction", t.subU16,
        [&](Gvml &g) { g.subU16(d, a, b); }, 15);
    row("sub_s16", "int16 subtraction", t.subS16,
        [&](Gvml &g) { g.subS16(d, a, b); }, 16);
    row("popcnt_16", "population count", t.popcnt16,
        [&](Gvml &g) { g.popcnt16(d, a); }, 23);
    row("mul_u16", "uint16 multiplication", t.mulU16,
        [&](Gvml &g) { g.mulU16(d, a, b); }, 115);
    row("mul_s16", "int16 multiplication", t.mulS16,
        [&](Gvml &g) { g.mulS16(d, a, b); }, 201);
    row("mul_f16", "float16 multiplication", t.mulF16,
        [&](Gvml &g) { g.mulF16(d, a, b); }, 77);
    row("div_u16", "uint16 division", t.divU16,
        [&](Gvml &g) { g.divU16(d, a, b); }, 664);
    row("div_s16", "int16 division", t.divS16,
        [&](Gvml &g) { g.divS16(d, a, b); }, 739);
    row("eq_16", "element-wise equal", t.eq16,
        [&](Gvml &g) { g.eq16(d, a, b); }, 13);
    row("gt_u16", "greater than", t.gtU16,
        [&](Gvml &g) { g.gtU16(d, a, b); }, 13);
    row("lt_u16", "less than", t.ltU16,
        [&](Gvml &g) { g.ltU16(d, a, b); }, 13);
    row("lt_gf16", "gsi float16 less than", t.ltGf16,
        [&](Gvml &g) { g.ltGf16(d, a, b); }, 45);
    row("ge_u16", "greater or equal", t.geU16,
        [&](Gvml &g) { g.geU16(d, a, b); }, 13);
    row("le_u16", "less or equal", t.leU16,
        [&](Gvml &g) { g.leU16(d, a, b); }, 13);
    row("recip_u16", "uint16 reciprocal", t.recipU16,
        [&](Gvml &g) { g.recipU16(d, a); }, 735);
    row("exp_f16", "float16 exponential", t.expF16,
        [&](Gvml &g) { g.expF16(d, a); }, 40295);
    row("sin_fx", "fixed-point sine", t.sinFx,
        [&](Gvml &g) { g.sinFx(d, a); }, 761);
    row("cos_fx", "fixed-point cosine", t.cosFx,
        [&](Gvml &g) { g.cosFx(d, a); }, 761);
    row("count_m", "count marked entries", t.countM,
        [&](Gvml &g) { (void)g.countM(a); }, 239);

    table.print();
    std::printf("\nadd_subgrp_s16 follows Eq. 1; see "
                "bench_eq1_sgadd_model.\n");
    return 0;
}
