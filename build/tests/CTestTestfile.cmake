# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitutils[1]_include.cmake")
include("/root/repo/build/tests/test_float16[1]_include.cmake")
include("/root/repo/build/tests/test_gsifloat[1]_include.cmake")
include("/root/repo/build/tests/test_fixedpoint[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_bitproc[1]_include.cmake")
include("/root/repo/build/tests/test_apusim[1]_include.cmake")
include("/root/repo/build/tests/test_gvml[1]_include.cmake")
include("/root/repo/build/tests/test_gdl[1]_include.cmake")
include("/root/repo/build/tests/test_rvv[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_multicore[1]_include.cmake")
include("/root/repo/build/tests/test_topk[1]_include.cmake")
include("/root/repo/build/tests/test_dma_plan[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_cost_pins[1]_include.cmake")
include("/root/repo/build/tests/test_microcode[1]_include.cmake")
include("/root/repo/build/tests/test_dramsim[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_bmm[1]_include.cmake")
include("/root/repo/build/tests/test_rag[1]_include.cmake")
include("/root/repo/build/tests/test_phoenix_apu[1]_include.cmake")
include("/root/repo/build/tests/test_phoenix_model[1]_include.cmake")
