# Empty dependencies file for test_apusim.
# This may be replaced when dependencies are built.
