file(REMOVE_RECURSE
  "CMakeFiles/test_apusim.dir/test_apusim.cc.o"
  "CMakeFiles/test_apusim.dir/test_apusim.cc.o.d"
  "test_apusim"
  "test_apusim.pdb"
  "test_apusim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
