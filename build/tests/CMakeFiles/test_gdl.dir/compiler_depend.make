# Empty compiler generated dependencies file for test_gdl.
# This may be replaced when dependencies are built.
