file(REMOVE_RECURSE
  "CMakeFiles/test_gdl.dir/test_gdl.cc.o"
  "CMakeFiles/test_gdl.dir/test_gdl.cc.o.d"
  "test_gdl"
  "test_gdl.pdb"
  "test_gdl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
