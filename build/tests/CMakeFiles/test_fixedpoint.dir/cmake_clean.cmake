file(REMOVE_RECURSE
  "CMakeFiles/test_fixedpoint.dir/test_fixedpoint.cc.o"
  "CMakeFiles/test_fixedpoint.dir/test_fixedpoint.cc.o.d"
  "test_fixedpoint"
  "test_fixedpoint.pdb"
  "test_fixedpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixedpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
