file(REMOVE_RECURSE
  "CMakeFiles/test_gvml.dir/test_gvml.cc.o"
  "CMakeFiles/test_gvml.dir/test_gvml.cc.o.d"
  "test_gvml"
  "test_gvml.pdb"
  "test_gvml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gvml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
