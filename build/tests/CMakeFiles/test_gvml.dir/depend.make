# Empty dependencies file for test_gvml.
# This may be replaced when dependencies are built.
