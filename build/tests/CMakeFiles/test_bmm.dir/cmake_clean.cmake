file(REMOVE_RECURSE
  "CMakeFiles/test_bmm.dir/test_bmm.cc.o"
  "CMakeFiles/test_bmm.dir/test_bmm.cc.o.d"
  "test_bmm"
  "test_bmm.pdb"
  "test_bmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
