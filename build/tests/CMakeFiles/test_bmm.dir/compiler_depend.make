# Empty compiler generated dependencies file for test_bmm.
# This may be replaced when dependencies are built.
