file(REMOVE_RECURSE
  "CMakeFiles/test_rag.dir/test_rag.cc.o"
  "CMakeFiles/test_rag.dir/test_rag.cc.o.d"
  "test_rag"
  "test_rag.pdb"
  "test_rag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
