# Empty compiler generated dependencies file for test_cost_pins.
# This may be replaced when dependencies are built.
