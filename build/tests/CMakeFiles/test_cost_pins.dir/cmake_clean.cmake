file(REMOVE_RECURSE
  "CMakeFiles/test_cost_pins.dir/test_cost_pins.cc.o"
  "CMakeFiles/test_cost_pins.dir/test_cost_pins.cc.o.d"
  "test_cost_pins"
  "test_cost_pins.pdb"
  "test_cost_pins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_pins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
