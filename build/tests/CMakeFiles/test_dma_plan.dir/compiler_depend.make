# Empty compiler generated dependencies file for test_dma_plan.
# This may be replaced when dependencies are built.
