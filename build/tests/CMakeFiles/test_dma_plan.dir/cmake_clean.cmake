file(REMOVE_RECURSE
  "CMakeFiles/test_dma_plan.dir/test_dma_plan.cc.o"
  "CMakeFiles/test_dma_plan.dir/test_dma_plan.cc.o.d"
  "test_dma_plan"
  "test_dma_plan.pdb"
  "test_dma_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dma_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
