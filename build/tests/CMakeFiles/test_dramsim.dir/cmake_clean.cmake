file(REMOVE_RECURSE
  "CMakeFiles/test_dramsim.dir/test_dramsim.cc.o"
  "CMakeFiles/test_dramsim.dir/test_dramsim.cc.o.d"
  "test_dramsim"
  "test_dramsim.pdb"
  "test_dramsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dramsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
