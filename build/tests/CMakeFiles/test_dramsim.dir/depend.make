# Empty dependencies file for test_dramsim.
# This may be replaced when dependencies are built.
