file(REMOVE_RECURSE
  "CMakeFiles/test_phoenix_apu.dir/test_phoenix_apu.cc.o"
  "CMakeFiles/test_phoenix_apu.dir/test_phoenix_apu.cc.o.d"
  "test_phoenix_apu"
  "test_phoenix_apu.pdb"
  "test_phoenix_apu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phoenix_apu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
