# Empty compiler generated dependencies file for test_phoenix_apu.
# This may be replaced when dependencies are built.
