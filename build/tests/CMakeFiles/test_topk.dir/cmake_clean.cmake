file(REMOVE_RECURSE
  "CMakeFiles/test_topk.dir/test_topk.cc.o"
  "CMakeFiles/test_topk.dir/test_topk.cc.o.d"
  "test_topk"
  "test_topk.pdb"
  "test_topk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
