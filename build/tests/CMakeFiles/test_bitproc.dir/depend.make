# Empty dependencies file for test_bitproc.
# This may be replaced when dependencies are built.
