file(REMOVE_RECURSE
  "CMakeFiles/test_bitproc.dir/test_bitproc.cc.o"
  "CMakeFiles/test_bitproc.dir/test_bitproc.cc.o.d"
  "test_bitproc"
  "test_bitproc.pdb"
  "test_bitproc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
