# Empty compiler generated dependencies file for test_rvv.
# This may be replaced when dependencies are built.
