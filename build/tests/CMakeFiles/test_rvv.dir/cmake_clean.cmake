file(REMOVE_RECURSE
  "CMakeFiles/test_rvv.dir/test_rvv.cc.o"
  "CMakeFiles/test_rvv.dir/test_rvv.cc.o.d"
  "test_rvv"
  "test_rvv.pdb"
  "test_rvv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rvv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
