# Empty compiler generated dependencies file for test_bitutils.
# This may be replaced when dependencies are built.
