file(REMOVE_RECURSE
  "CMakeFiles/test_bitutils.dir/test_bitutils.cc.o"
  "CMakeFiles/test_bitutils.dir/test_bitutils.cc.o.d"
  "test_bitutils"
  "test_bitutils.pdb"
  "test_bitutils[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitutils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
