# Empty dependencies file for test_gsifloat.
# This may be replaced when dependencies are built.
