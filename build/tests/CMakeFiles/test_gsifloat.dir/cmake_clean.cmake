file(REMOVE_RECURSE
  "CMakeFiles/test_gsifloat.dir/test_gsifloat.cc.o"
  "CMakeFiles/test_gsifloat.dir/test_gsifloat.cc.o.d"
  "test_gsifloat"
  "test_gsifloat.pdb"
  "test_gsifloat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gsifloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
