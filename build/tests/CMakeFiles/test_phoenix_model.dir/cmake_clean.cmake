file(REMOVE_RECURSE
  "CMakeFiles/test_phoenix_model.dir/test_phoenix_model.cc.o"
  "CMakeFiles/test_phoenix_model.dir/test_phoenix_model.cc.o.d"
  "test_phoenix_model"
  "test_phoenix_model.pdb"
  "test_phoenix_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phoenix_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
