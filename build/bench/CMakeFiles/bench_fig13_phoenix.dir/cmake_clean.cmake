file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_phoenix.dir/bench_fig13_phoenix.cc.o"
  "CMakeFiles/bench_fig13_phoenix.dir/bench_fig13_phoenix.cc.o.d"
  "bench_fig13_phoenix"
  "bench_fig13_phoenix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_phoenix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
