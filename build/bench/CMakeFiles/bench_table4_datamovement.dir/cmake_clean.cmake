file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_datamovement.dir/bench_table4_datamovement.cc.o"
  "CMakeFiles/bench_table4_datamovement.dir/bench_table4_datamovement.cc.o.d"
  "bench_table4_datamovement"
  "bench_table4_datamovement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_datamovement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
