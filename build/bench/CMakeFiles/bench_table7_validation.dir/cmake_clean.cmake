file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_validation.dir/bench_table7_validation.cc.o"
  "CMakeFiles/bench_table7_validation.dir/bench_table7_validation.cc.o.d"
  "bench_table7_validation"
  "bench_table7_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
