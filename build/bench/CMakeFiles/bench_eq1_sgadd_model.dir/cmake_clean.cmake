file(REMOVE_RECURSE
  "CMakeFiles/bench_eq1_sgadd_model.dir/bench_eq1_sgadd_model.cc.o"
  "CMakeFiles/bench_eq1_sgadd_model.dir/bench_eq1_sgadd_model.cc.o.d"
  "bench_eq1_sgadd_model"
  "bench_eq1_sgadd_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_sgadd_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
