# Empty compiler generated dependencies file for bench_eq1_sgadd_model.
# This may be replaced when dependencies are built.
