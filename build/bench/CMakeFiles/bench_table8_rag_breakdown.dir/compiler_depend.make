# Empty compiler generated dependencies file for bench_table8_rag_breakdown.
# This may be replaced when dependencies are built.
