file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_compute.dir/bench_table5_compute.cc.o"
  "CMakeFiles/bench_table5_compute.dir/bench_table5_compute.cc.o.d"
  "bench_table5_compute"
  "bench_table5_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
