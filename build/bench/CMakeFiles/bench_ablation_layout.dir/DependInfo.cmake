
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_layout.cc" "bench/CMakeFiles/bench_ablation_layout.dir/bench_ablation_layout.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_layout.dir/bench_ablation_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gdl/CMakeFiles/cisram_gdl.dir/DependInfo.cmake"
  "/root/repo/build/src/rvv/CMakeFiles/cisram_rvv.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cisram_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/dramsim/CMakeFiles/cisram_dramsim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/cisram_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cisram_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cisram_model.dir/DependInfo.cmake"
  "/root/repo/build/src/gvml/CMakeFiles/cisram_gvml.dir/DependInfo.cmake"
  "/root/repo/build/src/apusim/CMakeFiles/cisram_apusim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cisram_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cisram_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
