
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gvml/gvml_ewise.cc" "src/gvml/CMakeFiles/cisram_gvml.dir/gvml_ewise.cc.o" "gcc" "src/gvml/CMakeFiles/cisram_gvml.dir/gvml_ewise.cc.o.d"
  "/root/repo/src/gvml/gvml_move.cc" "src/gvml/CMakeFiles/cisram_gvml.dir/gvml_move.cc.o" "gcc" "src/gvml/CMakeFiles/cisram_gvml.dir/gvml_move.cc.o.d"
  "/root/repo/src/gvml/gvml_reduce.cc" "src/gvml/CMakeFiles/cisram_gvml.dir/gvml_reduce.cc.o" "gcc" "src/gvml/CMakeFiles/cisram_gvml.dir/gvml_reduce.cc.o.d"
  "/root/repo/src/gvml/microcode.cc" "src/gvml/CMakeFiles/cisram_gvml.dir/microcode.cc.o" "gcc" "src/gvml/CMakeFiles/cisram_gvml.dir/microcode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apusim/CMakeFiles/cisram_apusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cisram_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
