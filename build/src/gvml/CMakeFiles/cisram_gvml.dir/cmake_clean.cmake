file(REMOVE_RECURSE
  "CMakeFiles/cisram_gvml.dir/gvml_ewise.cc.o"
  "CMakeFiles/cisram_gvml.dir/gvml_ewise.cc.o.d"
  "CMakeFiles/cisram_gvml.dir/gvml_move.cc.o"
  "CMakeFiles/cisram_gvml.dir/gvml_move.cc.o.d"
  "CMakeFiles/cisram_gvml.dir/gvml_reduce.cc.o"
  "CMakeFiles/cisram_gvml.dir/gvml_reduce.cc.o.d"
  "CMakeFiles/cisram_gvml.dir/microcode.cc.o"
  "CMakeFiles/cisram_gvml.dir/microcode.cc.o.d"
  "libcisram_gvml.a"
  "libcisram_gvml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisram_gvml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
