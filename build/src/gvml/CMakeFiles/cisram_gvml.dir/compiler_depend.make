# Empty compiler generated dependencies file for cisram_gvml.
# This may be replaced when dependencies are built.
