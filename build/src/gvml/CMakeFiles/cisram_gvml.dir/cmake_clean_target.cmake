file(REMOVE_RECURSE
  "libcisram_gvml.a"
)
