file(REMOVE_RECURSE
  "CMakeFiles/cisram_core.dir/bmm_model.cc.o"
  "CMakeFiles/cisram_core.dir/bmm_model.cc.o.d"
  "CMakeFiles/cisram_core.dir/dma_plan.cc.o"
  "CMakeFiles/cisram_core.dir/dma_plan.cc.o.d"
  "CMakeFiles/cisram_core.dir/layout.cc.o"
  "CMakeFiles/cisram_core.dir/layout.cc.o.d"
  "libcisram_core.a"
  "libcisram_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisram_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
