file(REMOVE_RECURSE
  "libcisram_core.a"
)
