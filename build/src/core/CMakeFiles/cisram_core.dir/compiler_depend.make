# Empty compiler generated dependencies file for cisram_core.
# This may be replaced when dependencies are built.
