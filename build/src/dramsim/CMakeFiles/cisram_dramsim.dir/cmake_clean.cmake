file(REMOVE_RECURSE
  "CMakeFiles/cisram_dramsim.dir/dram_sim.cc.o"
  "CMakeFiles/cisram_dramsim.dir/dram_sim.cc.o.d"
  "libcisram_dramsim.a"
  "libcisram_dramsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisram_dramsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
