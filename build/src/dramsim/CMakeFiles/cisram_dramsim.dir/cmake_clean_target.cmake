file(REMOVE_RECURSE
  "libcisram_dramsim.a"
)
