# Empty compiler generated dependencies file for cisram_dramsim.
# This may be replaced when dependencies are built.
