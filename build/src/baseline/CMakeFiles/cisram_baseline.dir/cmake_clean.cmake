file(REMOVE_RECURSE
  "CMakeFiles/cisram_baseline.dir/faisslite.cc.o"
  "CMakeFiles/cisram_baseline.dir/faisslite.cc.o.d"
  "CMakeFiles/cisram_baseline.dir/phoenix_cpu.cc.o"
  "CMakeFiles/cisram_baseline.dir/phoenix_cpu.cc.o.d"
  "CMakeFiles/cisram_baseline.dir/timing_models.cc.o"
  "CMakeFiles/cisram_baseline.dir/timing_models.cc.o.d"
  "CMakeFiles/cisram_baseline.dir/workloads.cc.o"
  "CMakeFiles/cisram_baseline.dir/workloads.cc.o.d"
  "libcisram_baseline.a"
  "libcisram_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisram_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
