# Empty dependencies file for cisram_baseline.
# This may be replaced when dependencies are built.
