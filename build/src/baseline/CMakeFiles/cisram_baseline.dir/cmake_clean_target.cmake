file(REMOVE_RECURSE
  "libcisram_baseline.a"
)
