
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/faisslite.cc" "src/baseline/CMakeFiles/cisram_baseline.dir/faisslite.cc.o" "gcc" "src/baseline/CMakeFiles/cisram_baseline.dir/faisslite.cc.o.d"
  "/root/repo/src/baseline/phoenix_cpu.cc" "src/baseline/CMakeFiles/cisram_baseline.dir/phoenix_cpu.cc.o" "gcc" "src/baseline/CMakeFiles/cisram_baseline.dir/phoenix_cpu.cc.o.d"
  "/root/repo/src/baseline/timing_models.cc" "src/baseline/CMakeFiles/cisram_baseline.dir/timing_models.cc.o" "gcc" "src/baseline/CMakeFiles/cisram_baseline.dir/timing_models.cc.o.d"
  "/root/repo/src/baseline/workloads.cc" "src/baseline/CMakeFiles/cisram_baseline.dir/workloads.cc.o" "gcc" "src/baseline/CMakeFiles/cisram_baseline.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cisram_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
