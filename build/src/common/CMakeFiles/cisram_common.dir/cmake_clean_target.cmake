file(REMOVE_RECURSE
  "libcisram_common.a"
)
