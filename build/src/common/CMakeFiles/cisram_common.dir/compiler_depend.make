# Empty compiler generated dependencies file for cisram_common.
# This may be replaced when dependencies are built.
