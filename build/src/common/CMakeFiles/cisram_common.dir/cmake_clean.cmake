file(REMOVE_RECURSE
  "CMakeFiles/cisram_common.dir/bitutils.cc.o"
  "CMakeFiles/cisram_common.dir/bitutils.cc.o.d"
  "CMakeFiles/cisram_common.dir/fixedpoint.cc.o"
  "CMakeFiles/cisram_common.dir/fixedpoint.cc.o.d"
  "CMakeFiles/cisram_common.dir/float16.cc.o"
  "CMakeFiles/cisram_common.dir/float16.cc.o.d"
  "CMakeFiles/cisram_common.dir/gsifloat.cc.o"
  "CMakeFiles/cisram_common.dir/gsifloat.cc.o.d"
  "CMakeFiles/cisram_common.dir/logging.cc.o"
  "CMakeFiles/cisram_common.dir/logging.cc.o.d"
  "CMakeFiles/cisram_common.dir/stats.cc.o"
  "CMakeFiles/cisram_common.dir/stats.cc.o.d"
  "CMakeFiles/cisram_common.dir/table.cc.o"
  "CMakeFiles/cisram_common.dir/table.cc.o.d"
  "libcisram_common.a"
  "libcisram_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisram_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
