file(REMOVE_RECURSE
  "CMakeFiles/cisram_rvv.dir/rvv.cc.o"
  "CMakeFiles/cisram_rvv.dir/rvv.cc.o.d"
  "libcisram_rvv.a"
  "libcisram_rvv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisram_rvv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
