# Empty compiler generated dependencies file for cisram_rvv.
# This may be replaced when dependencies are built.
