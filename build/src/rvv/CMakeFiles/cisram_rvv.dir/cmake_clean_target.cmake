file(REMOVE_RECURSE
  "libcisram_rvv.a"
)
