
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gdl/gdl.cc" "src/gdl/CMakeFiles/cisram_gdl.dir/gdl.cc.o" "gcc" "src/gdl/CMakeFiles/cisram_gdl.dir/gdl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apusim/CMakeFiles/cisram_apusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cisram_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
