# Empty dependencies file for cisram_gdl.
# This may be replaced when dependencies are built.
