file(REMOVE_RECURSE
  "CMakeFiles/cisram_gdl.dir/gdl.cc.o"
  "CMakeFiles/cisram_gdl.dir/gdl.cc.o.d"
  "libcisram_gdl.a"
  "libcisram_gdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisram_gdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
