file(REMOVE_RECURSE
  "libcisram_gdl.a"
)
