# Empty compiler generated dependencies file for cisram_apusim.
# This may be replaced when dependencies are built.
