file(REMOVE_RECURSE
  "CMakeFiles/cisram_apusim.dir/apu.cc.o"
  "CMakeFiles/cisram_apusim.dir/apu.cc.o.d"
  "CMakeFiles/cisram_apusim.dir/bitproc.cc.o"
  "CMakeFiles/cisram_apusim.dir/bitproc.cc.o.d"
  "CMakeFiles/cisram_apusim.dir/memory.cc.o"
  "CMakeFiles/cisram_apusim.dir/memory.cc.o.d"
  "CMakeFiles/cisram_apusim.dir/vr_file.cc.o"
  "CMakeFiles/cisram_apusim.dir/vr_file.cc.o.d"
  "libcisram_apusim.a"
  "libcisram_apusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisram_apusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
