file(REMOVE_RECURSE
  "libcisram_apusim.a"
)
