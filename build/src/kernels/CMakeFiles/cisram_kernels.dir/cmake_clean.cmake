file(REMOVE_RECURSE
  "CMakeFiles/cisram_kernels.dir/bmm.cc.o"
  "CMakeFiles/cisram_kernels.dir/bmm.cc.o.d"
  "CMakeFiles/cisram_kernels.dir/phoenix_compute.cc.o"
  "CMakeFiles/cisram_kernels.dir/phoenix_compute.cc.o.d"
  "CMakeFiles/cisram_kernels.dir/phoenix_model.cc.o"
  "CMakeFiles/cisram_kernels.dir/phoenix_model.cc.o.d"
  "CMakeFiles/cisram_kernels.dir/phoenix_sort_apps.cc.o"
  "CMakeFiles/cisram_kernels.dir/phoenix_sort_apps.cc.o.d"
  "CMakeFiles/cisram_kernels.dir/phoenix_stream.cc.o"
  "CMakeFiles/cisram_kernels.dir/phoenix_stream.cc.o.d"
  "CMakeFiles/cisram_kernels.dir/rag.cc.o"
  "CMakeFiles/cisram_kernels.dir/rag.cc.o.d"
  "CMakeFiles/cisram_kernels.dir/rag_model.cc.o"
  "CMakeFiles/cisram_kernels.dir/rag_model.cc.o.d"
  "CMakeFiles/cisram_kernels.dir/sort.cc.o"
  "CMakeFiles/cisram_kernels.dir/sort.cc.o.d"
  "CMakeFiles/cisram_kernels.dir/topk.cc.o"
  "CMakeFiles/cisram_kernels.dir/topk.cc.o.d"
  "libcisram_kernels.a"
  "libcisram_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisram_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
