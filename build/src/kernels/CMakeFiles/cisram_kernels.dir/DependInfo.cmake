
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bmm.cc" "src/kernels/CMakeFiles/cisram_kernels.dir/bmm.cc.o" "gcc" "src/kernels/CMakeFiles/cisram_kernels.dir/bmm.cc.o.d"
  "/root/repo/src/kernels/phoenix_compute.cc" "src/kernels/CMakeFiles/cisram_kernels.dir/phoenix_compute.cc.o" "gcc" "src/kernels/CMakeFiles/cisram_kernels.dir/phoenix_compute.cc.o.d"
  "/root/repo/src/kernels/phoenix_model.cc" "src/kernels/CMakeFiles/cisram_kernels.dir/phoenix_model.cc.o" "gcc" "src/kernels/CMakeFiles/cisram_kernels.dir/phoenix_model.cc.o.d"
  "/root/repo/src/kernels/phoenix_sort_apps.cc" "src/kernels/CMakeFiles/cisram_kernels.dir/phoenix_sort_apps.cc.o" "gcc" "src/kernels/CMakeFiles/cisram_kernels.dir/phoenix_sort_apps.cc.o.d"
  "/root/repo/src/kernels/phoenix_stream.cc" "src/kernels/CMakeFiles/cisram_kernels.dir/phoenix_stream.cc.o" "gcc" "src/kernels/CMakeFiles/cisram_kernels.dir/phoenix_stream.cc.o.d"
  "/root/repo/src/kernels/rag.cc" "src/kernels/CMakeFiles/cisram_kernels.dir/rag.cc.o" "gcc" "src/kernels/CMakeFiles/cisram_kernels.dir/rag.cc.o.d"
  "/root/repo/src/kernels/rag_model.cc" "src/kernels/CMakeFiles/cisram_kernels.dir/rag_model.cc.o" "gcc" "src/kernels/CMakeFiles/cisram_kernels.dir/rag_model.cc.o.d"
  "/root/repo/src/kernels/sort.cc" "src/kernels/CMakeFiles/cisram_kernels.dir/sort.cc.o" "gcc" "src/kernels/CMakeFiles/cisram_kernels.dir/sort.cc.o.d"
  "/root/repo/src/kernels/topk.cc" "src/kernels/CMakeFiles/cisram_kernels.dir/topk.cc.o" "gcc" "src/kernels/CMakeFiles/cisram_kernels.dir/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apusim/CMakeFiles/cisram_apusim.dir/DependInfo.cmake"
  "/root/repo/build/src/gvml/CMakeFiles/cisram_gvml.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cisram_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cisram_model.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cisram_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/dramsim/CMakeFiles/cisram_dramsim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/cisram_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cisram_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
