file(REMOVE_RECURSE
  "libcisram_kernels.a"
)
