# Empty dependencies file for cisram_kernels.
# This may be replaced when dependencies are built.
