file(REMOVE_RECURSE
  "CMakeFiles/cisram_energy.dir/energy.cc.o"
  "CMakeFiles/cisram_energy.dir/energy.cc.o.d"
  "libcisram_energy.a"
  "libcisram_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisram_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
