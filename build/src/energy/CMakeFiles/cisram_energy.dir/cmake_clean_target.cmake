file(REMOVE_RECURSE
  "libcisram_energy.a"
)
