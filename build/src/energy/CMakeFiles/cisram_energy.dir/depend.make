# Empty dependencies file for cisram_energy.
# This may be replaced when dependencies are built.
