file(REMOVE_RECURSE
  "libcisram_model.a"
)
