
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/sg_model.cc" "src/model/CMakeFiles/cisram_model.dir/sg_model.cc.o" "gcc" "src/model/CMakeFiles/cisram_model.dir/sg_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cisram_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gvml/CMakeFiles/cisram_gvml.dir/DependInfo.cmake"
  "/root/repo/build/src/apusim/CMakeFiles/cisram_apusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
