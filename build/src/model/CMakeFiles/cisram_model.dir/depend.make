# Empty dependencies file for cisram_model.
# This may be replaced when dependencies are built.
