file(REMOVE_RECURSE
  "CMakeFiles/cisram_model.dir/sg_model.cc.o"
  "CMakeFiles/cisram_model.dir/sg_model.cc.o.d"
  "libcisram_model.a"
  "libcisram_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisram_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
