file(REMOVE_RECURSE
  "CMakeFiles/rag_service.dir/rag_service.cpp.o"
  "CMakeFiles/rag_service.dir/rag_service.cpp.o.d"
  "rag_service"
  "rag_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rag_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
