# Empty dependencies file for rag_service.
# This may be replaced when dependencies are built.
