# Empty dependencies file for analytical_model.
# This may be replaced when dependencies are built.
