file(REMOVE_RECURSE
  "CMakeFiles/analytical_model.dir/analytical_model.cpp.o"
  "CMakeFiles/analytical_model.dir/analytical_model.cpp.o.d"
  "analytical_model"
  "analytical_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytical_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
