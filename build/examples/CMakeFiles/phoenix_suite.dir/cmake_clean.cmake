file(REMOVE_RECURSE
  "CMakeFiles/phoenix_suite.dir/phoenix_suite.cpp.o"
  "CMakeFiles/phoenix_suite.dir/phoenix_suite.cpp.o.d"
  "phoenix_suite"
  "phoenix_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
