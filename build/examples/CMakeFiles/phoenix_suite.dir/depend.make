# Empty dependencies file for phoenix_suite.
# This may be replaced when dependencies are built.
