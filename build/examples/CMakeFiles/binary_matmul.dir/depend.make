# Empty dependencies file for binary_matmul.
# This may be replaced when dependencies are built.
