file(REMOVE_RECURSE
  "CMakeFiles/binary_matmul.dir/binary_matmul.cpp.o"
  "CMakeFiles/binary_matmul.dir/binary_matmul.cpp.o.d"
  "binary_matmul"
  "binary_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
