# Empty compiler generated dependencies file for rag_retrieval.
# This may be replaced when dependencies are built.
