file(REMOVE_RECURSE
  "CMakeFiles/rag_retrieval.dir/rag_retrieval.cpp.o"
  "CMakeFiles/rag_retrieval.dir/rag_retrieval.cpp.o.d"
  "rag_retrieval"
  "rag_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rag_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
