# Empty dependencies file for riscv_vector.
# This may be replaced when dependencies are built.
