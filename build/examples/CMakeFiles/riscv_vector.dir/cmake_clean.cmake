file(REMOVE_RECURSE
  "CMakeFiles/riscv_vector.dir/riscv_vector.cpp.o"
  "CMakeFiles/riscv_vector.dir/riscv_vector.cpp.o.d"
  "riscv_vector"
  "riscv_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
