/**
 * @file
 * Architectural design-space exploration with the analytical
 * framework: how would the paper's RAG retrieval respond to a
 * next-generation device with faster lookup engines, cheaper PIO,
 * or longer vector registers? (Section 1: the framework "informs
 * the design of next-generation in-SRAM computing architectures".)
 */

#include <cmath>
#include <cstdio>

#include "apusim/apu.hh"
#include "model/dse.hh"
#include "model/latency_estimator.hh"
#include "model/sg_model.hh"

using namespace cisram;
using namespace cisram::model;

namespace {

/**
 * Analytical model of the optimized RAG distance computation at the
 * 200 GB scale: 101 super-tiles x 368 dimension planes, one
 * element-wise MAC per plane plus the plane ingest handshake.
 */
double
ragDistanceMs(const CostTable &t)
{
    LatencyEstimator e(t);
    double chunks = 3.3e6;
    double supertiles =
        std::ceil(chunks / static_cast<double>(t.vrLength));
    e.repeat(supertiles, [&] {
        e.gvmlCpyImm16();
        e.repeat(368, [&] {
            e.charge(t.dmaL4L2Init / 2 + 14 + t.dmaL2L1);
            e.gvmlLoad16();
            e.gvmlCpyImm16();
            e.gvmlMulS16();
            e.gvmlAddS16();
        });
    });
    return e.seconds() * 1e3;
}

} // namespace

int
main()
{
    std::printf("== What-if: RAG distance calculation (200 GB) on "
                "hypothetical devices ==\n");
    DesignSpaceExplorer dse;

    std::printf("\nbaseline device: %.1f ms\n",
                ragDistanceMs(CostTable{}));

    std::printf("\nVR length sweep (longer vectors amortize the "
                "per-plane handshake):\n");
    auto vr = DesignSpaceExplorer::vrLength(
        {16384, 32768, 65536, 131072, 262144});
    for (auto p : dse.sweep(vr, ragDistanceMs))
        std::printf("  l = %7.0f : %7.1f ms\n", p.value,
                    p.objective);

    std::printf("\nmul_s16 latency sweep (a faster multiplier "
                "microcode):\n");
    DesignParameter mul{"mul_s16",
                        [](CostTable &t, double v) { t.mulS16 = v; },
                        {201, 115, 77, 40}};
    for (auto p : dse.sweep(mul, ragDistanceMs))
        std::printf("  mul_s16 = %3.0f cycles : %7.1f ms\n",
                    p.value, p.objective);

    std::printf("\n2-D sweep: VR length x multiplier latency:\n");
    DesignParameter vr2 = DesignSpaceExplorer::vrLength(
        {32768, 131072});
    for (auto p : dse.sweep2D(vr2, mul, ragDistanceMs))
        std::printf("  l = %6.0f, mul = %3.0f : %7.1f ms\n", p.a,
                    p.b, p.objective);

    std::printf("\nConclusion: once the data movement is optimized, "
                "the multiplier microcode dominates -- the same "
                "guidance the paper draws for next-generation "
                "devices.\n");
    return 0;
}
