/**
 * @file
 * The Phoenix suite end to end at demo scale: every application runs
 * functionally on the simulated APU, its result is checked against
 * the CPU reference, and the paper-scale latency and CPU comparison
 * are reported (Section 5.2).
 */

#include <cstdio>

#include "baseline/phoenix_cpu.hh"
#include "kernels/phoenix_apu.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

bool
runOne(PhoenixApp app)
{
    apu::ApuDevice dev;
    PhoenixStats st;
    bool ok = false;
    switch (app) {
      case PhoenixApp::Histogram: {
        auto in = genHistogramInput(300000, 1);
        ok = histogramApu(dev, &in, in.pixels.size(),
                          PhoenixVariant::AllOpts, st) ==
            histogramSeq(in);
        break;
      }
      case PhoenixApp::LinearRegression: {
        auto in = genLinRegInput(200000, 2);
        ok = linRegApu(dev, &in, in.points.size(),
                       PhoenixVariant::AllOpts, st) == linRegSeq(in);
        break;
      }
      case PhoenixApp::MatrixMultiply: {
        auto a = genMatrix(64, 256, 3, 5);
        auto b = genMatrix(256, 64, 4, 5);
        auto got = matmulApu(dev, &a, &b, 64, 64, 256,
                             PhoenixVariant::AllOpts, st);
        auto ref = matmulSeq(a, b, 64, 64, 256);
        ok = got.size() == ref.size();
        for (size_t i = 0; ok && i < ref.size(); ++i)
            ok = got[i] == ref[i];
        break;
      }
      case PhoenixApp::Kmeans: {
        auto in = genKmeansInput(8192, 8, 16, 5);
        ok = kmeansApu(dev, &in, in.numPoints, in.dim, in.k, 8,
                       PhoenixVariant::AllOpts, st) ==
            kmeansSeq(in, 8).assignment;
        break;
      }
      case PhoenixApp::ReverseIndex: {
        auto in = genRevIndexInput(1024, 16, 4000, 6);
        std::vector<uint16_t> stream;
        for (const auto &doc : in.docLinks)
            for (uint32_t link : doc)
                stream.push_back(static_cast<uint16_t>(link));
        auto got = reverseIndexApu(dev, &stream, stream.size(), 16,
                                   PhoenixVariant::AllOpts, st);
        auto ref = reverseIndexSeq(in);
        ok = got.size() == ref.size();
        for (auto it = ref.begin(); ok && it != ref.end(); ++it)
            ok = got.count(it->first) &&
                got.at(it->first) == it->second;
        break;
      }
      case PhoenixApp::StringMatch: {
        auto in = genStringMatchInput(150000, 7);
        ok = stringMatchApu(dev, &in, in.words.size() * 16.0,
                            PhoenixVariant::AllOpts, st) ==
            stringMatchSeq(in);
        break;
      }
      case PhoenixApp::WordCount: {
        auto in = genWordCountInput(80000, 8);
        auto ids = tokenizeWords(in.words);
        auto got = wordCountApu(dev, &ids, ids.size(),
                                PhoenixVariant::AllOpts, st);
        auto ref = wordCountSeq(in, got.size());
        ok = got.size() == ref.size();
        for (size_t i = 0; ok && i < ref.size(); ++i)
            ok = "w" + std::to_string(got[i].first) == ref[i].word &&
                got[i].second == ref[i].count;
        break;
      }
    }
    return ok;
}

} // namespace

int
main()
{
    XeonTimingModel cpu;
    apu::ApuDevice timing_dev;

    std::printf("%-18s %-14s %12s %12s %9s\n", "application",
                "functional", "APU (ms)", "CPU 16T (ms)", "speedup");
    bool all_ok = true;
    for (const auto &spec : phoenixSpecs()) {
        bool ok = runOne(spec.app);
        all_ok = all_ok && ok;
        double apu_ms = runPhoenixApuTimed(timing_dev, spec.app,
                                           PhoenixVariant::AllOpts)
                            .ms(timing_dev.spec());
        double cpu_ms = cpu.phoenixMs(spec.app, true);
        std::printf("%-18s %-14s %12.1f %12.1f %8.2fx\n", spec.name,
                    ok ? "PASS" : "FAIL", apu_ms, cpu_ms,
                    cpu_ms / apu_ms);
    }
    std::printf("\n%s\n",
                all_ok ? "all applications verified against their "
                         "CPU references"
                       : "FAILURES detected");
    return all_ok ? 0 : 1;
}
