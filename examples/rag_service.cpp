/**
 * @file
 * A fault-tolerant, batched end-to-end RAG service on the
 * compute-in-SRAM device: queries flow through the full pipeline —
 * admission into a per-core batch former, host staging over PCIe
 * (GDL), one batched corpus pass on the APU against simulated HBM
 * (with the embedding stream double-buffered behind distance
 * compute), and generation TTFT on the dedicated-GPU model —
 * reproducing the serving scenario behind the paper's Fig. 14 and
 * energy study.
 *
 * This example is the showcase for the serving-path contracts
 * (DESIGN.md "Fault model", "Serving pipeline", and "Escalation
 * ladder"):
 *
 *  - Fault tolerance: every batch is served under a deadline through
 *    a bounded retry policy, behind a per-core circuit breaker that
 *    routes to the FAISS-lite CPU baseline (Xeon timing model) when a
 *    core misbehaves, and probes the core again after a cooldown.
 *
 *  - Persistent-fault escalation: each core's HealthMonitor watches
 *    the per-batch fault ledger; a persistently faulting core is
 *    quarantined (admissions shed with ResourceExhausted and
 *    re-routed to sibling cores — never silently dropped), then
 *    reset: the gdl session re-allocates, re-stages the corpus shard
 *    over PCIe, and replays the journaled in-flight batches with
 *    exactly-once outcomes. Arm a persistent fault with e.g.
 *
 *      CISRAM_FAULT_SPEC="task_hang:core=1,nth=2,sticky=1;seed:7"
 *
 *    and the service still answers every query with correct top-k
 *    ids; when a plan is armed, the timing loop also runs a clean
 *    baseline and checks the faulted p99 stays under 2x.
 *
 *  - Batched throughput: each core's DeviceServer coalesces up to
 *    eight admitted queries into one retrieveBatch call, amortizing
 *    the dominant HBM embedding stream across the batch, and overlaps
 *    the next supertile's stream with the current one's compute.
 *    Queue wait is part of every query's served latency; p50/p95/p99
 *    come from the metrics histograms.
 *
 * The query stream is sharded across the device's four cores with
 * runOnAllCores (each core owns its own retriever, HBM model, GDL
 * session, breaker, batch former, health monitor, and admission
 * journal) and served concurrently when CISRAM_SIM_THREADS allows;
 * reported latencies, fault draws, resets, and the aggregate QPS are
 * identical for any thread count.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apusim/multicore.hh"
#include "baseline/faisslite.hh"
#include "baseline/timing_models.hh"
#include "bench_report.hh"
#include "common/metrics.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"
#include "energy/energy.hh"
#include "fault/fault.hh"
#include "fleet/fleet.hh"
#include "gdl/gdl.hh"
#include "kernels/rag.hh"
#include "kernels/serving.hh"
#include "obs/flight.hh"
#include "obs/slo.hh"
#include "recovery/health.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

constexpr size_t kTopK = 5;
constexpr int kQueries = 48;

ServerConfig
servingConfig()
{
    ServerConfig cfg;
    cfg.topK = kTopK;
    // A full 8-query batch's corpus pass takes ~196 ms at the
    // 200 GB corpus, so 250 ms is the tightest deadline that never
    // fires on a healthy batch.
    cfg.retry = RetryPolicy{3, 0.25};
    cfg.breakerThreshold = 2;
    cfg.breakerCooldown = 2;
    cfg.batch = BatchPolicy{8, 8};
    cfg.overlapStream = true;

    // This showcase serves one device; the fleet demo below runs
    // several, and the router stamps each server's deviceIndex so
    // recovery metrics stay distinguishable per device.
    cfg.deviceIndex = 0;

    // The escalation ladder above retry, tuned fail-fast: one
    // ledger fault (timeout, exhausted PCIe, ECC double) in a
    // 16-query window quarantines the core immediately — a reset
    // plus re-stage costs ~2 ms of simulated time, two orders of
    // magnitude cheaper than burning another retry deadline on a
    // wedged core. The quarantine ages over shed admissions, then
    // the core is reset and its journaled batches replayed (at
    // most twice before parking on the CPU fallback).
    cfg.health.enabled = true;
    cfg.health.windowQueries = 16;
    cfg.health.degradeThreshold = 1;
    cfg.health.quarantineThreshold = 1;
    cfg.health.quarantineAdmissions = 4;
    cfg.maxResets = 2;

    // Overload shedding: bound the queue well above the per-core
    // burst so normal operation admits everything, but a core
    // absorbing a quarantined sibling's re-routed load sheds loudly
    // instead of collapsing.
    cfg.admission.maxQueueDepth = 32;

    // Patrol-scrub the core's HBM so latent corrected singles are
    // rewritten before a second flip can escalate them.
    cfg.scrub.enabled = true;

    // Always-on flight recorder: every query's span tree feeds the
    // attribution table and the per-query reconciliation check; with
    // CISRAM_TRACE armed the same spans land on the Perfetto
    // timeline.
    cfg.flight.mode = obs::FlightConfig::Mode::On;
    return cfg;
}

/**
 * Per-class latency SLOs for the windowed monitor: device-served
 * queries against a budget just above the worst clean batch (head-of-
 * line queue wait included), CPU-fallback answers against the
 * FAISS-lite budget. Window sized to one core's shard so each core
 * contributes whole windows.
 */
obs::SloPolicy
sloPolicy()
{
    obs::SloPolicy policy;
    policy.windowQueries = 12;
    policy.classes.push_back(
        obs::SloClass{"device", 0.5, 0.99});
    policy.classes.push_back(
        obs::SloClass{"fallback", 5.0, 0.99});
    return policy;
}

/**
 * Functional self-check: serve queries over a small corpus through
 * the full batched fault-tolerant path — batch formation, retry,
 * breaker, quarantine/reset/replay, CPU fallback — and verify every
 * answer's top-k ids against FAISS-lite exact search. Admissions a
 * quarantined core sheds are re-routed round-robin to its siblings
 * (the two-round pattern a front-end load balancer would run); a
 * query every core shed is served synchronously on its home core.
 * With an armed fault plan this is the proof that injected hangs,
 * PCIe corruption, and ECC errors degrade latency, never
 * correctness.
 */
bool
selfCheck()
{
    RagCorpusSpec corpus{"demo", 0, 20000, 368};
    const uint64_t seed = 2026;

    apu::ApuDevice dev;
    auto emb = genEmbeddings(corpus, 0, corpus.numChunks, seed);
    IndexFlatI16 index(corpus.dim);
    index.add(emb.data(), corpus.numChunks);

    ServerConfig cfg = servingConfig();
    // Small batches keep the functional corpus pass cheap while
    // still exercising the batched device path.
    cfg.batch = BatchPolicy{4, 4};

    const unsigned cores = dev.numCores();
    std::vector<std::unique_ptr<DeviceServer>> servers;
    for (unsigned c = 0; c < cores; ++c)
        servers.push_back(std::make_unique<DeviceServer>(
            dev, corpus, c, &index, seed, cfg));

    constexpr int checkQueries = 16;
    unsigned sheds = 0, rerouted = 0, sync_served = 0;
    std::vector<ServeOutcome> outcomes;
    for (int q = 0; q < checkQueries; ++q) {
        unsigned home = static_cast<unsigned>(q) % cores;
        auto query = genQuery(corpus.dim, 100 + q);
        bool admitted = false;
        for (unsigned hop = 0; hop < cores && !admitted; ++hop) {
            unsigned c = (home + hop) % cores;
            Status st = servers[c]->enqueue(
                static_cast<uint64_t>(q), query);
            if (st.ok()) {
                admitted = true;
                if (hop > 0)
                    ++rerouted;
            } else {
                ++sheds; // ResourceExhausted: re-route, never drop
            }
        }
        if (!admitted) {
            // Every core is shedding: serve synchronously so the
            // query still gets exactly one answer.
            ServeOutcome out = servers[home]->serve(query);
            out.id = static_cast<uint64_t>(q);
            outcomes.push_back(std::move(out));
            ++sync_served;
        }
    }

    for (auto &server : servers)
        for (ServeOutcome &out : server->drain())
            outcomes.push_back(std::move(out));

    bool all_ok = outcomes.size() == checkQueries;
    unsigned device_answers = 0, fallback_answers = 0;
    for (const ServeOutcome &out : outcomes) {
        int q = static_cast<int>(out.id);
        auto query = genQuery(corpus.dim, 100 + q);
        auto expect = index.search(query.data(), kTopK);
        bool ok = out.ok && out.ids.size() == expect.size();
        for (size_t i = 0; ok && i < expect.size(); ++i)
            ok = out.ids[i] == static_cast<uint32_t>(expect[i].id);
        if (out.fromDevice)
            ++device_answers;
        else
            ++fallback_answers;
        if (!ok) {
            std::printf("  query %d (batch of %zu): WRONG ANSWER "
                        "(attempts %u, %s)\n",
                        q, out.batchSize, out.attempts,
                        out.lastError.empty()
                            ? "no error"
                            : out.lastError.c_str());
            all_ok = false;
        }
    }

    unsigned resets = 0;
    uint64_t replayed = 0;
    for (auto &server : servers) {
        resets += server->resets();
        replayed += server->replayedQueries();
    }
    std::printf("self-check: %d queries over %zu chunks, "
                "%u from device, %u from CPU fallback: %s\n",
                checkQueries, corpus.numChunks, device_answers,
                fallback_answers, all_ok ? "PASS" : "FAIL");
    if (sheds || resets)
        std::printf("  recovery: %u admissions shed (%u re-routed, "
                    "%u served sync), %u core reset(s), %llu "
                    "replayed quer%s\n",
                    sheds, rerouted, sync_served, resets,
                    static_cast<unsigned long long>(replayed),
                    replayed == 1 ? "y" : "ies");
    std::printf("\n");
    return all_ok;
}

/**
 * Fleet demo: the same serving contract one level up. A 4-device
 * fleet (R=2, 8 shards) serves queries scattered over the fabric;
 * one device is killed mid-stream and its in-flight queries replay
 * on replicas. The check: every merged top-k equals the unsharded
 * index's answer, exactly once, despite the kill.
 */
bool
fleetDemo()
{
    RagCorpusSpec corpus{"fleet-demo", 0, 2048, 368};
    const uint64_t seed = 2026;

    IndexFlatI16 index(corpus.dim);
    auto emb = genEmbeddings(corpus, 0, corpus.numChunks, seed);
    index.add(emb.data(), corpus.numChunks);

    fleet::FleetConfig cfg;
    cfg.devices = 4;
    cfg.replicas = 2;
    cfg.shards = 8;
    cfg.functional = true;
    cfg.topK = kTopK;
    fleet::Router router(corpus, seed, std::move(cfg));

    constexpr int n = 16;
    std::vector<fleet::FleetOutcome> outs;
    for (int q = 0; q < n / 2; ++q)
        (void)router.admit(static_cast<uint64_t>(q + 1),
                           genQuery(corpus.dim, 300 + q));
    for (fleet::FleetOutcome &o : router.pump())
        outs.push_back(std::move(o));
    double t = router.makespanSeconds();
    for (int q = n / 2; q < n; ++q)
        (void)router.admit(static_cast<uint64_t>(q + 1),
                           genQuery(corpus.dim, 300 + q), t);
    router.killDevice(router.placement()[0][0]);
    for (fleet::FleetOutcome &o : router.drain())
        outs.push_back(std::move(o));

    bool all_ok = outs.size() == n &&
        router.ledgerOutstanding() == 0;
    for (const fleet::FleetOutcome &o : outs) {
        int q = static_cast<int>(o.id) - 1;
        auto expect = index.search(
            genQuery(corpus.dim, 300 + q).data(), kTopK);
        bool ok = o.ok && o.ids.size() == expect.size();
        for (size_t i = 0; ok && i < expect.size(); ++i)
            ok = o.ids[i] == static_cast<uint32_t>(expect[i].id);
        all_ok = all_ok && ok;
    }
    std::printf("fleet demo: %d queries over a 4-device R=2 fleet, "
                "one device killed mid-stream: %llu failover(s), "
                "%llu quer%s evacuated, merged top-k %s\n\n",
                n,
                static_cast<unsigned long long>(router.failovers()),
                static_cast<unsigned long long>(
                    router.evacuatedQueries()),
                router.evacuatedQueries() == 1 ? "y" : "ies",
                all_ok ? "exact: PASS" : "WRONG: FAIL");
    return all_ok;
}

struct QueryRecord
{
    double queueWaitSeconds = 0;
    double retrievalSeconds = 0;
    double hostSeconds = 0;
    double servedSeconds = 0;
    double ttftSeconds = 0;
    double joules = 0;
    unsigned attempts = 0;
    size_t batchSize = 1;
    bool fromDevice = true;
    int core = 0;
};

/** One timing-loop run's records plus its recovery/fault ledger. */
struct LoopResult
{
    std::vector<QueryRecord> records;
    double busiest = 0;
    double wallSeconds = 0;
    gdl::HostStats agg;
    dram::EccStats ecc;
    unsigned breakerTrips = 0;
    uint64_t batches = 0;
    unsigned resets = 0;
    uint64_t replayed = 0;
    unsigned sheds = 0;
    double resetSeconds = 0;
    std::vector<std::string> breakerStates;

    // Flight-recorder ledger, aggregated over the per-core recorders:
    // per-stage attribution plus the reconciliation tally (queries
    // whose span-tree sum is bit-exactly their served latency).
    std::map<std::string, double> attribution;
    uint64_t flightsCompleted = 0;
    uint64_t flightsReconciled = 0;

    double
    servedQuantile(double p) const
    {
        std::vector<double> v;
        for (const auto &r : records)
            v.push_back(r.servedSeconds);
        std::sort(v.begin(), v.end());
        size_t i = static_cast<size_t>(p * (v.size() - 1));
        return v[i];
    }
};

/**
 * The paper-scale timing loop: kQueries sharded over all cores,
 * served through the full pipeline. Self-contained (fresh device,
 * fresh servers, reset fault streams) so a baseline and a faulted
 * run are comparable.
 */
LoopResult
runTimingLoop(const RagCorpusSpec &spec)
{
    gdl::resetFaultStreams();
    apu::ApuDevice dev;
    const unsigned cores = dev.numCores();
    for (unsigned c = 0; c < cores; ++c)
        dev.core(c).setMode(apu::ExecMode::TimingOnly);

    // Per-core serving shards, constructed up front on this thread
    // so device addresses and fault-draw streams are identical for
    // any thread count: the HBM model is stateful and a GDL session
    // is single-threaded, so each core owns one of each.
    std::vector<std::unique_ptr<DeviceServer>> servers;
    for (unsigned c = 0; c < cores; ++c)
        servers.push_back(std::make_unique<DeviceServer>(
            dev, spec, c, nullptr, 2026, servingConfig()));

    LlmGenerationModel llm;
    energy::ApuPowerModel power;

    LoopResult res;
    res.records.resize(kQueries);
    std::vector<unsigned> shedsPerCore(cores, 0);

    auto wallStart = std::chrono::steady_clock::now();
    apu::runOnAllCores(dev, [&](apu::ApuCore &, unsigned c,
                                unsigned n) {
        auto shard = apu::shardOf(kQueries, c, n);
        auto &server = *servers[c];

        auto record = [&](const ServeOutcome &out) {
            auto &rec = res.records[out.id];
            rec.core = static_cast<int>(c);
            rec.queueWaitSeconds = out.queueWaitSeconds;
            rec.retrievalSeconds = out.retrievalSeconds;
            rec.hostSeconds = out.hostSeconds;
            rec.servedSeconds = out.servedSeconds();
            rec.attempts = out.attempts;
            rec.batchSize = out.batchSize;
            rec.fromDevice = out.fromDevice;
            rec.ttftSeconds = rec.servedSeconds + llm.ttftSeconds();
            if (out.fromDevice) {
                energy::ApuActivity act;
                act.totalSeconds = out.run.stages.total();
                act.computeSeconds = out.run.computeSeconds;
                act.dramBytes = out.run.dramBytes;
                act.cacheBytes = out.run.cacheBytes;
                rec.joules = power.energy(act).totalJ();
            }
        };

        // The shard arrives as one burst (every query admitted at
        // the same server clock), so batches past the first pay a
        // visible head-of-line queue wait; drain serves them all —
        // escalating through reset + replay if the core wedges. A
        // shed admission (quarantined core past its reset budget,
        // or queue over its bound) drains the core and retries
        // once; a second shed serves synchronously. Either way the
        // query is answered, never dropped.
        for (size_t q = shard.begin; q < shard.end; ++q) {
            auto emb =
                genQuery(spec.dim, 1000 + static_cast<int>(q));
            Status st =
                server.enqueue(static_cast<uint64_t>(q), emb);
            if (!st.ok()) {
                ++shedsPerCore[c];
                for (const auto &out : server.drain())
                    record(out);
                st = server.enqueue(static_cast<uint64_t>(q), emb);
            }
            if (!st.ok()) {
                ++shedsPerCore[c];
                ServeOutcome out = server.serve(emb);
                out.id = static_cast<uint64_t>(q);
                record(out);
            }
        }
        for (const auto &out : server.drain())
            record(out);
    });
    res.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() -
                          wallStart)
                          .count();

    for (unsigned c = 0; c < cores; ++c) {
        const auto &hs = servers[c]->host().stats();
        res.busiest =
            std::max(res.busiest, servers[c]->busySeconds());
        res.agg.tasksFailed += hs.tasksFailed;
        res.agg.tasksTimedOut += hs.tasksTimedOut;
        res.agg.pcieRetries += hs.pcieRetries;
        res.agg.pcieErrors += hs.pcieErrors;
        res.agg.allocFailures += hs.allocFailures;
        res.agg.coreResets += hs.coreResets;
        res.agg.deviceResets += hs.deviceResets;
        res.resetSeconds += hs.resetSeconds;
        res.ecc += servers[c]->hbm().eccStats();
        res.breakerTrips += servers[c]->breaker().trips();
        res.batches += servers[c]->former().batchesFormed();
        res.resets += servers[c]->resets();
        res.replayed += servers[c]->replayedQueries();
        res.sheds += shedsPerCore[c];
        res.breakerStates.push_back(
            breakerStateName(servers[c]->breaker().state()));
        const auto &fr = servers[c]->flightRecorder();
        res.flightsCompleted += fr.completedCount();
        res.flightsReconciled += fr.reconciledCount();
        for (const auto &kv : fr.attribution())
            res.attribution[kv.first] += kv.second;
    }
    // Tear down in declaration order inside each server: the query
    // buffer releases before its GDL session's leak check runs.
    servers.clear();
    return res;
}

} // namespace

int
main()
{
    // Serving metrics for the whole session; CISRAM_TRACE=<path>
    // additionally dumps a per-op timeline of every query.
    trace::Tracer::init();
    metrics::initFromEnv();
    metrics::setEnabled(true);
    fault::initFromEnv();

    if (const fault::FaultPlan *fp = fault::plan())
        std::printf("fault plan armed: %s\n\n",
                    fp->toString().c_str());

    if (!selfCheck())
        return 1;
    if (!fleetDemo())
        return 1;

    // 200 GB corpus, timing mode (paper scale).
    const auto &spec = ragCorpora()[2];

    std::printf("corpus: %s (%zu chunks, %.1f GB of embeddings)\n",
                spec.label, spec.numChunks,
                spec.embeddingBytes() / 1e9);
    std::printf("generation: Llama3.1-8B prefill on dedicated GPU "
                "model\n");
    std::printf("serving: %d queries sharded over 4 cores "
                "(batch <= %zu, overlapped stream %s, escalation "
                "ladder on), CISRAM_SIM_THREADS=%u\n\n",
                kQueries, servingConfig().batch.maxBatch,
                servingConfig().overlapStream ? "on" : "off",
                simThreads());

    // With a fault plan armed, first measure the clean service as
    // the degradation baseline, then run the faulted loop. The
    // recovery contract: the faulted service answers every query
    // and its p99 stays under 2x the clean p99.
    double baseline_p99 = 0;
    if (const fault::FaultPlan *fp = fault::plan()) {
        fault::FaultPlan plan = *fp;
        fault::disarm();
        LoopResult clean = runTimingLoop(spec);
        baseline_p99 = clean.servedQuantile(0.99);
        std::printf("clean baseline: %.1f QPS, served p99 %.1f ms "
                    "(for the <2x degradation check)\n\n",
                    kQueries / clean.busiest, baseline_p99 * 1e3);
        fault::armPlan(plan);
    }

    LoopResult loop = runTimingLoop(spec);
    const unsigned cores =
        static_cast<unsigned>(loop.breakerStates.size());

    // Registry observations in query order on this thread, so the
    // snapshot is independent of worker interleaving.
    auto &reg = metrics::Registry::get();
    auto &m_queries = reg.counter("rag.queries");
    auto &m_served = reg.histogram("rag.served_seconds");
    auto &m_wait = reg.histogram("rag.queue_wait_seconds");
    auto &m_ttft = reg.histogram("rag.ttft_seconds");
    auto &m_energy = reg.histogram("rag.query_energy_joules");
    auto &m_host = reg.histogram("rag.host_pcie_seconds");

    // Windowed SLO monitor, fed in query order on this thread so the
    // window boundaries (and with them the burn rates) are identical
    // for any worker interleaving.
    obs::SloMonitor slo(sloPolicy());

    double total_energy = 0.0, total_ttft = 0.0;
    unsigned device_queries = 0, fallback_queries = 0;
    unsigned total_attempts = 0;
    std::printf("%5s %4s %5s %5s %10s %12s %12s %12s\n", "query",
                "core", "path", "batch", "wait (ms)", "served (ms)",
                "TTFT (ms)", "APU E (mJ)");
    for (int q = 0; q < kQueries; ++q) {
        const auto &rec = loop.records[q];
        m_queries.inc();
        m_served.observe(rec.servedSeconds);
        m_wait.observe(rec.queueWaitSeconds);
        m_ttft.observe(rec.ttftSeconds);
        m_energy.observe(rec.joules);
        m_host.observe(rec.hostSeconds);
        slo.observe(rec.fromDevice ? "device" : "fallback",
                    rec.servedSeconds);
        total_energy += rec.joules;
        total_ttft += rec.ttftSeconds;
        total_attempts += rec.attempts;
        if (rec.fromDevice)
            ++device_queries;
        else
            ++fallback_queries;
        std::printf("%5d %4d %5s %5zu %10.1f %12.1f %12.1f %12.1f\n",
                    q, rec.core, rec.fromDevice ? "apu" : "cpu",
                    rec.batchSize, rec.queueWaitSeconds * 1e3,
                    rec.servedSeconds * 1e3, rec.ttftSeconds * 1e3,
                    rec.joules * 1e3);
    }

    // Aggregate throughput: the service is limited by the busiest
    // core's simulated serving time (cores run concurrently; queue
    // waits overlap with service and don't add to core busy time).
    std::printf("\naggregate throughput: %.1f QPS over %u cores "
                "(busiest core %.1f ms for its shard)\n",
                kQueries / loop.busiest, cores,
                loop.busiest * 1e3);
    std::printf("host wall-clock for the serving loop: %.2f s "
                "(%u sim thread(s) on %u host cpu(s))\n",
                loop.wallSeconds,
                simThreads() == 0 ? cores : simThreads(),
                std::thread::hardware_concurrency());
    std::printf("average TTFT: %.0f ms; retrieval energy per "
                "query: %.0f mJ\n",
                total_ttft / kQueries * 1e3,
                total_energy / kQueries * 1e3);
    energy::GpuEnergyModel gpu;
    std::printf("GPU retrieval energy at this corpus: %.1f J per "
                "query -> %.0fx reduction\n",
                gpu.retrievalEnergy(spec.embeddingBytes()),
                gpu.retrievalEnergy(spec.embeddingBytes()) /
                    (total_energy / std::max(1u, device_queries)));

    // Fault/robustness ledger: host-observed failure counters plus
    // the per-core breaker outcome and the escalation-ladder tally.
    std::printf("\nfault ledger (timing loop):\n");
    std::printf("  device queries %u, CPU fallbacks %u, device "
                "attempts %u, batches %llu\n",
                device_queries, fallback_queries, total_attempts,
                static_cast<unsigned long long>(loop.batches));
    std::printf("  task timeouts %u, task failures %u, PCIe retries "
                "%u, PCIe errors %u\n",
                loop.agg.tasksTimedOut, loop.agg.tasksFailed,
                loop.agg.pcieRetries, loop.agg.pcieErrors);
    std::printf("  ECC: %llu words checked, %llu corrected, %llu "
                "uncorrectable, %llu scrubbed\n",
                static_cast<unsigned long long>(
                    loop.ecc.wordsChecked),
                static_cast<unsigned long long>(
                    loop.ecc.singleCorrected),
                static_cast<unsigned long long>(
                    loop.ecc.doubleDetected),
                static_cast<unsigned long long>(
                    loop.ecc.scrubCorrected));
    std::printf("  breaker trips %u; per-core state:",
                loop.breakerTrips);
    for (unsigned c = 0; c < cores; ++c)
        std::printf(" %u=%s", c, loop.breakerStates[c].c_str());
    std::printf("\n");
    std::printf("recovery ledger (escalation ladder):\n");
    std::printf("  core resets %u (%.1f ms reset+re-stage), "
                "replayed queries %llu, admissions shed %u\n",
                loop.resets, loop.resetSeconds * 1e3,
                static_cast<unsigned long long>(loop.replayed),
                loop.sheds);

    // Flight-recorder attribution: where every served second went,
    // summed over the per-query span trees. The reconciliation
    // invariant (DESIGN.md "Observability"): each query's spans sum
    // bit-exactly to its served latency.
    // Every journaled query must reconcile; a query every core shed
    // is served synchronously outside the journal and is (by design)
    // not recorded, so completed can trail kQueries under a fault
    // plan — but never in a clean run.
    bool reconciled_ok = loop.flightsCompleted > 0 &&
        loop.flightsReconciled == loop.flightsCompleted;
    double attributed = 0;
    for (const auto &kv : loop.attribution)
        if (kv.second > 0 &&
            kv.first.rfind("device_compute.", 0) != 0)
            attributed += kv.second;
    std::printf("\nper-stage attribution (flight recorder, %llu/%llu "
                "queries reconciled bit-exactly: %s):\n",
                static_cast<unsigned long long>(
                    loop.flightsReconciled),
                static_cast<unsigned long long>(
                    loop.flightsCompleted),
                reconciled_ok ? "PASS" : "FAIL");
    for (const auto &kv : loop.attribution) {
        if (kv.second == 0)
            continue;
        bool detail = kv.first.rfind("device_compute.", 0) == 0;
        if (detail)
            std::printf("    %-24s %10.1f ms\n", kv.first.c_str(),
                        kv.second * 1e3);
        else
            std::printf("  %-26s %10.1f ms  (%5.1f%%)\n",
                        kv.first.c_str(), kv.second * 1e3,
                        100.0 * kv.second / attributed);
    }

    // Close partial SLO windows and report burn rates.
    slo.flush();
    std::printf("SLO (windowed, %zu queries/window):\n",
                slo.policy().windowQueries);
    for (const auto &w : slo.windows())
        std::printf("  class %-9s window %zu: %zu/%zu violations, "
                    "burn %.2f%s%s\n",
                    w.cls.c_str(), w.index, w.violations, w.queries,
                    w.burnRate, w.breached ? "  BREACH" : "",
                    w.partial ? " (partial)" : "");
    std::printf("  breached windows %zu, worst burn rate %.2f\n",
                slo.breachedWindows(), slo.worstBurnRate());

    double p99 = loop.servedQuantile(0.99);
    bool p99_ok = true;
    if (baseline_p99 > 0) {
        double ratio = p99 / baseline_p99;
        p99_ok = ratio < 2.0;
        std::printf("  p99 under fault %.1f ms vs clean %.1f ms: "
                    "%.2fx degradation (%s 2x budget)\n",
                    p99 * 1e3, baseline_p99 * 1e3, ratio,
                    p99_ok ? "within" : "OVER");
    }

    std::printf("\nservice metrics (registry snapshot):\n");
    std::printf("  queries served: %.0f\n", m_queries.value());
    std::printf("  served     p50 %.1f ms  p95 %.1f  p99 %.1f  "
                "max %.1f\n",
                m_served.quantile(0.50) * 1e3,
                m_served.quantile(0.95) * 1e3,
                m_served.quantile(0.99) * 1e3, m_served.max() * 1e3);
    std::printf("  queue wait p50 %.1f ms  p95 %.1f  max %.1f\n",
                m_wait.quantile(0.50) * 1e3,
                m_wait.quantile(0.95) * 1e3, m_wait.max() * 1e3);
    std::printf("  TTFT       p50 %.1f ms  p95 %.1f  mean %.1f\n",
                m_ttft.quantile(0.50) * 1e3,
                m_ttft.quantile(0.95) * 1e3, m_ttft.mean() * 1e3);
    std::printf("  energy     mean %.1f mJ  total %.1f mJ\n",
                m_energy.mean() * 1e3, m_energy.sum() * 1e3);
    std::printf("  host PCIe  mean %.1f us\n", m_host.mean() * 1e6);
    if (trace::active())
        std::printf("  trace timeline armed (written at exit)\n");

    // Machine-readable fault/serving report (includes the metrics
    // registry snapshot, and with it every fault.* and recovery.*
    // counter and the serving histograms with their p50/p95/p99
    // summaries).
    {
        bench::BenchReport report("rag_service");
        report.note("fault_spec",
                    fault::plan() ? fault::plan()->toString()
                                  : "(none)");
        report.scalar("queries", kQueries);
        report.scalar("batches",
                      static_cast<double>(loop.batches));
        report.scalar("device_queries", device_queries);
        report.scalar("fallback_queries", fallback_queries);
        report.scalar("device_attempts", total_attempts);
        report.scalar("task_timeouts", loop.agg.tasksTimedOut);
        report.scalar("task_failures", loop.agg.tasksFailed);
        report.scalar("pcie_retries", loop.agg.pcieRetries);
        report.scalar("pcie_errors", loop.agg.pcieErrors);
        report.scalar("alloc_failures", loop.agg.allocFailures);
        report.scalar("ecc_words_checked",
                      static_cast<double>(loop.ecc.wordsChecked));
        report.scalar("ecc_single_corrected",
                      static_cast<double>(loop.ecc.singleCorrected));
        report.scalar("ecc_double_detected",
                      static_cast<double>(loop.ecc.doubleDetected));
        report.scalar("ecc_scrub_reads",
                      static_cast<double>(loop.ecc.scrubReads));
        report.scalar("ecc_scrub_corrected",
                      static_cast<double>(loop.ecc.scrubCorrected));
        report.scalar("breaker_trips", loop.breakerTrips);
        report.scalar("core_resets", loop.resets);
        report.scalar("replayed_queries",
                      static_cast<double>(loop.replayed));
        report.scalar("admissions_shed", loop.sheds);
        report.scalar("reset_seconds", loop.resetSeconds);
        report.scalar("mean_ttft_seconds", total_ttft / kQueries);
        report.scalar("served_p50_seconds", m_served.quantile(0.50));
        report.scalar("served_p95_seconds", m_served.quantile(0.95));
        report.scalar("served_p99_seconds", m_served.quantile(0.99));
        if (baseline_p99 > 0) {
            report.scalar("baseline_p99_seconds", baseline_p99);
            report.scalar("p99_degradation_ratio",
                          p99 / baseline_p99);
        }
        report.scalar("qps", kQueries / loop.busiest);

        // Flight-recorder ledger: the per-stage attribution
        // breakdown plus the reconciliation tally — a query that
        // stops reconciling bit-exactly shows up as a drop in
        // flights_reconciled and gates the bench_compare diff.
        report.scalar("flights_completed",
                      static_cast<double>(loop.flightsCompleted));
        report.scalar("flights_reconciled",
                      static_cast<double>(loop.flightsReconciled));
        report.breakdown("stage_attribution_seconds",
                         loop.attribution);

        // Windowed SLO outcome (burn_rate and violations also land
        // in the metrics snapshot under slo.* with class labels).
        report.scalar("slo_breached_windows",
                      static_cast<double>(slo.breachedWindows()));
        report.scalar("slo_worst_burn_rate", slo.worstBurnRate());
        report.write();
    }

    return (p99_ok && reconciled_ok) ? 0 : 1;
}
