/**
 * @file
 * An end-to-end interactive RAG service on the compute-in-SRAM
 * device: ten questions flow through the full pipeline — host
 * staging over PCIe (GDL), query embedding transfer, exact top-5
 * retrieval on the APU against simulated HBM, and generation TTFT on
 * the dedicated-GPU model — reproducing the serving scenario behind
 * the paper's Fig. 14 and energy study.
 */

#include <cstdio>

#include "baseline/timing_models.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "energy/energy.hh"
#include "gdl/gdl.hh"
#include "kernels/rag.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

int
main()
{
    // Serving metrics for the whole session; CISRAM_TRACE=<path>
    // additionally dumps a per-op timeline of every query.
    trace::Tracer::init();
    metrics::initFromEnv();
    metrics::setEnabled(true);
    auto &reg = metrics::Registry::get();
    auto &m_queries = reg.counter("rag.queries");
    auto &m_retrieval = reg.histogram("rag.retrieval_seconds");
    auto &m_ttft = reg.histogram("rag.ttft_seconds");
    auto &m_energy = reg.histogram("rag.query_energy_joules");
    auto &m_host = reg.histogram("rag.host_pcie_seconds");

    // 200 GB corpus, timing mode (paper scale).
    const auto &spec = ragCorpora()[2];
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, 5);
    gdl::GdlContext host(dev);
    LlmGenerationModel llm;
    energy::ApuPowerModel power;

    std::printf("corpus: %s (%zu chunks, %.1f GB of embeddings)\n",
                spec.label, spec.numChunks,
                spec.embeddingBytes() / 1e9);
    std::printf("generation: Llama3.1-8B prefill on dedicated GPU "
                "model\n\n");

    double total_energy = 0.0, total_ttft = 0.0;
    std::printf("%5s %14s %14s %12s %12s\n", "query",
                "retrieval (ms)", "PCIe+host (us)", "TTFT (ms)",
                "APU E (mJ)");
    for (int q = 0; q < 10; ++q) {
        host.resetStats();
        // Host ships the embedded query to device DRAM.
        auto query = genQuery(spec.dim, 1000 + q);
        gdl::MemHandle h = host.memAllocAligned(spec.dim * 2);
        host.memCpyToDev(h, query.data(), spec.dim * 2);

        auto r = retriever.retrieve(query, RagVariant::AllOpts,
                                    2026);
        // Host reads the top-5 ids back.
        uint16_t ids[5];
        host.memCpyFromDev(ids, h, sizeof(ids));

        double host_s = host.stats().pcieSeconds;
        double ttft = r.stages.total() + host_s +
            llm.ttftSeconds();

        energy::ApuActivity act;
        act.totalSeconds = r.stages.total();
        act.computeSeconds = r.computeSeconds;
        act.dramBytes = r.dramBytes;
        act.cacheBytes = r.cacheBytes;
        double joules = power.energy(act).totalJ();

        m_queries.inc();
        m_retrieval.observe(r.stages.total());
        m_ttft.observe(ttft);
        m_energy.observe(joules);
        m_host.observe(host_s);

        total_energy += joules;
        total_ttft += ttft;
        std::printf("%5d %14.1f %14.1f %12.1f %12.1f\n", q,
                    r.stages.total() * 1e3, host_s * 1e6,
                    ttft * 1e3, joules * 1e3);
    }

    std::printf("\naverage TTFT: %.0f ms; retrieval energy per "
                "query: %.0f mJ\n",
                total_ttft / 10.0 * 1e3, total_energy / 10.0 * 1e3);
    energy::GpuEnergyModel gpu;
    std::printf("GPU retrieval energy at this corpus: %.1f J per "
                "query -> %.0fx reduction\n",
                gpu.retrievalEnergy(spec.embeddingBytes()),
                gpu.retrievalEnergy(spec.embeddingBytes()) /
                    (total_energy / 10.0));

    std::printf("\nservice metrics (registry snapshot):\n");
    std::printf("  queries served: %.0f\n", m_queries.value());
    std::printf("  retrieval  p=mean %.1f ms  min %.1f  max %.1f\n",
                m_retrieval.mean() * 1e3, m_retrieval.min() * 1e3,
                m_retrieval.max() * 1e3);
    std::printf("  TTFT       p=mean %.1f ms  min %.1f  max %.1f\n",
                m_ttft.mean() * 1e3, m_ttft.min() * 1e3,
                m_ttft.max() * 1e3);
    std::printf("  energy     p=mean %.1f mJ  total %.1f mJ\n",
                m_energy.mean() * 1e3, m_energy.sum() * 1e3);
    std::printf("  host PCIe  p=mean %.1f us\n",
                m_host.mean() * 1e6);
    if (trace::active())
        std::printf("  trace timeline armed (written at exit)\n");
    return 0;
}
