/**
 * @file
 * A fault-tolerant, batched end-to-end RAG service on the
 * compute-in-SRAM device: queries flow through the full pipeline —
 * admission into a per-core batch former, host staging over PCIe
 * (GDL), one batched corpus pass on the APU against simulated HBM
 * (with the embedding stream double-buffered behind distance
 * compute), and generation TTFT on the dedicated-GPU model —
 * reproducing the serving scenario behind the paper's Fig. 14 and
 * energy study.
 *
 * This example is the showcase for both serving-path contracts
 * (DESIGN.md "Fault model" and "Serving pipeline"):
 *
 *  - Fault tolerance: every batch is served under a deadline through
 *    a bounded retry policy, behind a per-core circuit breaker that
 *    routes to the FAISS-lite CPU baseline (Xeon timing model) when a
 *    core misbehaves, and probes the core again after a cooldown.
 *    Arm faults with e.g.
 *
 *      CISRAM_FAULT_SPEC="task_hang:core=1,p=0.7;pcie_corrupt:p=1e-3"
 *
 *    and the service still answers every query with correct top-k
 *    ids — the functional self-check serves its queries through the
 *    same path and verifies every answer against an exact CPU search.
 *
 *  - Batched throughput: each core's DeviceServer coalesces up to
 *    eight admitted queries into one retrieveBatch call, amortizing
 *    the dominant HBM embedding stream across the batch, and overlaps
 *    the next supertile's stream with the current one's compute.
 *    Queue wait is part of every query's served latency; p50/p95/p99
 *    come from the metrics histograms.
 *
 * The query stream is sharded across the device's four cores with
 * runOnAllCores (each core owns its own retriever, HBM model, GDL
 * session, breaker, and batch former) and served concurrently when
 * CISRAM_SIM_THREADS allows; reported latencies, fault draws, and
 * the aggregate QPS are identical for any thread count.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apusim/multicore.hh"
#include "baseline/faisslite.hh"
#include "baseline/timing_models.hh"
#include "bench_report.hh"
#include "common/metrics.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"
#include "energy/energy.hh"
#include "fault/fault.hh"
#include "gdl/gdl.hh"
#include "kernels/rag.hh"
#include "kernels/serving.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

constexpr size_t kTopK = 5;
constexpr int kQueries = 48;

ServerConfig
servingConfig()
{
    ServerConfig cfg;
    cfg.topK = kTopK;
    cfg.retry = RetryPolicy{3, 0.5};
    cfg.breakerThreshold = 2;
    cfg.breakerCooldown = 2;
    cfg.batch = BatchPolicy{8, 8};
    cfg.overlapStream = true;
    return cfg;
}

/**
 * Functional self-check: serve queries over a small corpus through
 * the full batched fault-tolerant path — batch formation, retry,
 * breaker, CPU fallback — sharded across all cores, and verify every
 * answer's top-k ids against FAISS-lite exact search. With an armed
 * fault plan this is the proof that injected hangs, PCIe corruption,
 * and ECC errors degrade latency, never correctness.
 */
bool
selfCheck()
{
    RagCorpusSpec corpus{"demo", 0, 20000, 368};
    const uint64_t seed = 2026;

    apu::ApuDevice dev;
    auto emb = genEmbeddings(corpus, 0, corpus.numChunks, seed);
    IndexFlatI16 index(corpus.dim);
    index.add(emb.data(), corpus.numChunks);

    ServerConfig cfg = servingConfig();
    // Small batches keep the functional corpus pass cheap while
    // still exercising the batched device path.
    cfg.batch = BatchPolicy{4, 4};

    std::vector<std::unique_ptr<DeviceServer>> servers;
    for (unsigned c = 0; c < dev.numCores(); ++c)
        servers.push_back(std::make_unique<DeviceServer>(
            dev, corpus, c, &index, seed, cfg));

    constexpr int checkQueries = 16;
    for (int q = 0; q < checkQueries; ++q) {
        unsigned c = static_cast<unsigned>(q) % dev.numCores();
        servers[c]->enqueue(static_cast<uint64_t>(q),
                            genQuery(corpus.dim, 100 + q));
    }

    bool all_ok = true;
    unsigned device_answers = 0, fallback_answers = 0;
    for (auto &server : servers) {
        for (const ServeOutcome &out : server->drain()) {
            int q = static_cast<int>(out.id);
            auto query = genQuery(corpus.dim, 100 + q);
            auto expect = index.search(query.data(), kTopK);
            bool ok = out.ok && out.ids.size() == expect.size();
            for (size_t i = 0; ok && i < expect.size(); ++i)
                ok = out.ids[i] ==
                    static_cast<uint32_t>(expect[i].id);
            if (out.fromDevice)
                ++device_answers;
            else
                ++fallback_answers;
            if (!ok) {
                std::printf(
                    "  query %d (batch of %zu): WRONG ANSWER "
                    "(attempts %u, %s)\n",
                    q, out.batchSize, out.attempts,
                    out.lastError.empty() ? "no error"
                                          : out.lastError.c_str());
                all_ok = false;
            }
        }
    }
    std::printf("self-check: %d queries over %zu chunks, "
                "%u from device, %u from CPU fallback: %s\n\n",
                checkQueries, corpus.numChunks, device_answers,
                fallback_answers, all_ok ? "PASS" : "FAIL");
    return all_ok;
}

struct QueryRecord
{
    double queueWaitSeconds = 0;
    double retrievalSeconds = 0;
    double hostSeconds = 0;
    double servedSeconds = 0;
    double ttftSeconds = 0;
    double joules = 0;
    unsigned attempts = 0;
    size_t batchSize = 1;
    bool fromDevice = true;
};

} // namespace

int
main()
{
    // Serving metrics for the whole session; CISRAM_TRACE=<path>
    // additionally dumps a per-op timeline of every query.
    trace::Tracer::init();
    metrics::initFromEnv();
    metrics::setEnabled(true);
    fault::initFromEnv();

    if (const fault::FaultPlan *fp = fault::plan())
        std::printf("fault plan armed: %s\n\n",
                    fp->toString().c_str());

    if (!selfCheck())
        return 1;

    // 200 GB corpus, timing mode (paper scale).
    const auto &spec = ragCorpora()[2];
    apu::ApuDevice dev;
    const unsigned cores = dev.numCores();
    for (unsigned c = 0; c < cores; ++c)
        dev.core(c).setMode(apu::ExecMode::TimingOnly);

    // Per-core serving shards, constructed up front on this thread so
    // device addresses and fault-draw streams are identical for any
    // thread count: the HBM model is stateful and a GDL session is
    // single-threaded, so each core owns one of each.
    std::vector<std::unique_ptr<DeviceServer>> servers;
    for (unsigned c = 0; c < cores; ++c)
        servers.push_back(std::make_unique<DeviceServer>(
            dev, spec, c, nullptr, 2026, servingConfig()));

    LlmGenerationModel llm;
    energy::ApuPowerModel power;

    std::printf("corpus: %s (%zu chunks, %.1f GB of embeddings)\n",
                spec.label, spec.numChunks,
                spec.embeddingBytes() / 1e9);
    std::printf("generation: Llama3.1-8B prefill on dedicated GPU "
                "model\n");
    std::printf("serving: %d queries sharded over %u cores "
                "(batch <= %zu, overlapped stream %s), "
                "CISRAM_SIM_THREADS=%u\n\n",
                kQueries, cores, servingConfig().batch.maxBatch,
                servingConfig().overlapStream ? "on" : "off",
                simThreads());

    std::vector<QueryRecord> records(kQueries);
    std::vector<int> coreOf(kQueries, 0);

    auto wallStart = std::chrono::steady_clock::now();
    apu::runOnAllCores(dev, [&](apu::ApuCore &, unsigned c,
                                unsigned n) {
        auto shard = apu::shardOf(kQueries, c, n);
        auto &server = *servers[c];

        auto record = [&](const ServeOutcome &out) {
            auto &rec = records[out.id];
            coreOf[out.id] = static_cast<int>(c);
            rec.queueWaitSeconds = out.queueWaitSeconds;
            rec.retrievalSeconds = out.retrievalSeconds;
            rec.hostSeconds = out.hostSeconds;
            rec.servedSeconds = out.servedSeconds();
            rec.attempts = out.attempts;
            rec.batchSize = out.batchSize;
            rec.fromDevice = out.fromDevice;
            rec.ttftSeconds = rec.servedSeconds + llm.ttftSeconds();
            if (out.fromDevice) {
                energy::ApuActivity act;
                act.totalSeconds = out.run.stages.total();
                act.computeSeconds = out.run.computeSeconds;
                act.dramBytes = out.run.dramBytes;
                act.cacheBytes = out.run.cacheBytes;
                rec.joules = power.energy(act).totalJ();
            }
        };

        // The shard arrives as one burst (every query admitted at
        // the same server clock), so batches past the first pay a
        // visible head-of-line queue wait; drain serves them all.
        for (size_t q = shard.begin; q < shard.end; ++q)
            server.enqueue(static_cast<uint64_t>(q),
                           genQuery(spec.dim,
                                    1000 + static_cast<int>(q)));
        for (const auto &out : server.drain())
            record(out);
    });
    double wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    // Registry observations in query order on this thread, so the
    // snapshot is independent of worker interleaving.
    auto &reg = metrics::Registry::get();
    auto &m_queries = reg.counter("rag.queries");
    auto &m_served = reg.histogram("rag.served_seconds");
    auto &m_wait = reg.histogram("rag.queue_wait_seconds");
    auto &m_ttft = reg.histogram("rag.ttft_seconds");
    auto &m_energy = reg.histogram("rag.query_energy_joules");
    auto &m_host = reg.histogram("rag.host_pcie_seconds");

    double total_energy = 0.0, total_ttft = 0.0;
    unsigned device_queries = 0, fallback_queries = 0;
    unsigned total_attempts = 0;
    std::printf("%5s %4s %5s %5s %10s %12s %12s %12s\n", "query",
                "core", "path", "batch", "wait (ms)", "served (ms)",
                "TTFT (ms)", "APU E (mJ)");
    for (int q = 0; q < kQueries; ++q) {
        const auto &rec = records[q];
        m_queries.inc();
        m_served.observe(rec.servedSeconds);
        m_wait.observe(rec.queueWaitSeconds);
        m_ttft.observe(rec.ttftSeconds);
        m_energy.observe(rec.joules);
        m_host.observe(rec.hostSeconds);
        total_energy += rec.joules;
        total_ttft += rec.ttftSeconds;
        total_attempts += rec.attempts;
        if (rec.fromDevice)
            ++device_queries;
        else
            ++fallback_queries;
        std::printf("%5d %4d %5s %5zu %10.1f %12.1f %12.1f %12.1f\n",
                    q, coreOf[q], rec.fromDevice ? "apu" : "cpu",
                    rec.batchSize, rec.queueWaitSeconds * 1e3,
                    rec.servedSeconds * 1e3, rec.ttftSeconds * 1e3,
                    rec.joules * 1e3);
    }

    // Aggregate throughput: the service is limited by the busiest
    // core's simulated serving time (cores run concurrently; queue
    // waits overlap with service and don't add to core busy time).
    double busiest = 0.0;
    for (unsigned c = 0; c < cores; ++c)
        busiest = std::max(busiest, servers[c]->busySeconds());
    std::printf("\naggregate throughput: %.1f QPS over %u cores "
                "(busiest core %.1f ms for its shard)\n",
                kQueries / busiest, cores, busiest * 1e3);
    std::printf("host wall-clock for the serving loop: %.2f s "
                "(%u sim thread(s) on %u host cpu(s))\n",
                wallSeconds,
                simThreads() == 0 ? cores : simThreads(),
                std::thread::hardware_concurrency());
    std::printf("average TTFT: %.0f ms; retrieval energy per "
                "query: %.0f mJ\n",
                total_ttft / kQueries * 1e3,
                total_energy / kQueries * 1e3);
    energy::GpuEnergyModel gpu;
    std::printf("GPU retrieval energy at this corpus: %.1f J per "
                "query -> %.0fx reduction\n",
                gpu.retrievalEnergy(spec.embeddingBytes()),
                gpu.retrievalEnergy(spec.embeddingBytes()) /
                    (total_energy / std::max(1u, device_queries)));

    // Fault/robustness ledger: host-observed failure counters plus
    // the per-core breaker outcome.
    gdl::HostStats agg;
    dram::EccStats ecc;
    unsigned breaker_trips = 0;
    uint64_t batches = 0;
    for (unsigned c = 0; c < cores; ++c) {
        const auto &hs = servers[c]->host().stats();
        agg.tasksFailed += hs.tasksFailed;
        agg.tasksTimedOut += hs.tasksTimedOut;
        agg.pcieRetries += hs.pcieRetries;
        agg.pcieErrors += hs.pcieErrors;
        agg.allocFailures += hs.allocFailures;
        ecc += servers[c]->hbm().eccStats();
        breaker_trips += servers[c]->breaker().trips();
        batches += servers[c]->former().batchesFormed();
    }
    std::printf("\nfault ledger (timing loop):\n");
    std::printf("  device queries %u, CPU fallbacks %u, device "
                "attempts %u, batches %llu\n",
                device_queries, fallback_queries, total_attempts,
                static_cast<unsigned long long>(batches));
    std::printf("  task timeouts %u, task failures %u, PCIe retries "
                "%u, PCIe errors %u\n",
                agg.tasksTimedOut, agg.tasksFailed, agg.pcieRetries,
                agg.pcieErrors);
    std::printf("  ECC: %llu words checked, %llu corrected, %llu "
                "uncorrectable\n",
                static_cast<unsigned long long>(ecc.wordsChecked),
                static_cast<unsigned long long>(ecc.singleCorrected),
                static_cast<unsigned long long>(ecc.doubleDetected));
    std::printf("  breaker trips %u; per-core state:", breaker_trips);
    for (unsigned c = 0; c < cores; ++c)
        std::printf(" %u=%s", c,
                    breakerStateName(servers[c]->breaker().state()));
    std::printf("\n");

    std::printf("\nservice metrics (registry snapshot):\n");
    std::printf("  queries served: %.0f\n", m_queries.value());
    std::printf("  served     p50 %.1f ms  p95 %.1f  p99 %.1f  "
                "max %.1f\n",
                m_served.quantile(0.50) * 1e3,
                m_served.quantile(0.95) * 1e3,
                m_served.quantile(0.99) * 1e3, m_served.max() * 1e3);
    std::printf("  queue wait p50 %.1f ms  p95 %.1f  max %.1f\n",
                m_wait.quantile(0.50) * 1e3,
                m_wait.quantile(0.95) * 1e3, m_wait.max() * 1e3);
    std::printf("  TTFT       p50 %.1f ms  p95 %.1f  mean %.1f\n",
                m_ttft.quantile(0.50) * 1e3,
                m_ttft.quantile(0.95) * 1e3, m_ttft.mean() * 1e3);
    std::printf("  energy     mean %.1f mJ  total %.1f mJ\n",
                m_energy.mean() * 1e3, m_energy.sum() * 1e3);
    std::printf("  host PCIe  mean %.1f us\n", m_host.mean() * 1e6);
    if (trace::active())
        std::printf("  trace timeline armed (written at exit)\n");

    // Machine-readable fault/serving report (includes the metrics
    // registry snapshot, and with it every fault.* counter and the
    // serving histograms with their p50/p95/p99 summaries).
    {
        bench::BenchReport report("rag_service");
        report.note("fault_spec",
                    fault::plan() ? fault::plan()->toString()
                                  : "(none)");
        report.scalar("queries", kQueries);
        report.scalar("batches",
                      static_cast<double>(batches));
        report.scalar("device_queries", device_queries);
        report.scalar("fallback_queries", fallback_queries);
        report.scalar("device_attempts", total_attempts);
        report.scalar("task_timeouts", agg.tasksTimedOut);
        report.scalar("task_failures", agg.tasksFailed);
        report.scalar("pcie_retries", agg.pcieRetries);
        report.scalar("pcie_errors", agg.pcieErrors);
        report.scalar("alloc_failures", agg.allocFailures);
        report.scalar("ecc_words_checked",
                      static_cast<double>(ecc.wordsChecked));
        report.scalar("ecc_single_corrected",
                      static_cast<double>(ecc.singleCorrected));
        report.scalar("ecc_double_detected",
                      static_cast<double>(ecc.doubleDetected));
        report.scalar("breaker_trips", breaker_trips);
        report.scalar("mean_ttft_seconds", total_ttft / kQueries);
        report.scalar("served_p50_seconds", m_served.quantile(0.50));
        report.scalar("served_p95_seconds", m_served.quantile(0.95));
        report.scalar("served_p99_seconds", m_served.quantile(0.99));
        report.scalar("qps", kQueries / busiest);
        report.write();
    }

    // Tear down in declaration order inside each server: the query
    // buffer releases before its GDL session's leak check runs.
    servers.clear();
    return 0;
}
