/**
 * @file
 * An end-to-end interactive RAG service on the compute-in-SRAM
 * device: ten questions flow through the full pipeline — host
 * staging over PCIe (GDL), query embedding transfer, exact top-5
 * retrieval on the APU against simulated HBM, and generation TTFT on
 * the dedicated-GPU model — reproducing the serving scenario behind
 * the paper's Fig. 14 and energy study.
 *
 * The query stream is sharded across the device's four cores with
 * runOnAllCores (each core owns its own retriever, HBM model, and
 * GDL session) and served concurrently when CISRAM_SIM_THREADS
 * allows; reported latencies and the aggregate QPS are identical for
 * any thread count. A functional self-check first verifies that the
 * ids the host reads back are the retriever's staged top-k results.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "apusim/multicore.hh"
#include "baseline/faisslite.hh"
#include "baseline/timing_models.hh"
#include "common/metrics.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"
#include "energy/energy.hh"
#include "gdl/gdl.hh"
#include "kernels/rag.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

constexpr size_t kTopK = 5;
constexpr int kQueries = 10;

/**
 * Functional self-check: retrieve over a small corpus, read the
 * top-k ids back from the retriever's staged device buffer (NOT the
 * query buffer), and check them against both the retriever's own
 * hits and FAISS-lite exact search.
 */
bool
selfCheck()
{
    RagCorpusSpec corpus{"demo", 0, 20000, 368};
    const uint64_t seed = 2026;
    auto query = genQuery(corpus.dim, 99);

    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, corpus, kTopK);
    gdl::GdlContext host(dev);

    gdl::DeviceBuffer qbuf(host, corpus.dim * 2);
    qbuf.toDev(query.data(), corpus.dim * 2);

    auto r = retriever.retrieve(query, RagVariant::AllOpts, seed);

    // The host-visible result: ids staged by the return-topk stage.
    uint32_t ids[kTopK] = {};
    host.memCpyFromDev(ids, gdl::MemHandle{r.topkIdsAddr},
                       r.topkIdsCount * sizeof(uint32_t));

    auto emb = genEmbeddings(corpus, 0, corpus.numChunks, seed);
    IndexFlatI16 index(corpus.dim);
    index.add(emb.data(), corpus.numChunks);
    auto expect = index.search(query.data(), kTopK);

    bool ok = r.topkIdsCount == kTopK &&
        r.hits.size() == expect.size();
    for (size_t i = 0; ok && i < expect.size(); ++i) {
        ok = ids[i] == static_cast<uint32_t>(r.hits[i].id) &&
            r.hits[i] == expect[i];
    }
    std::printf("self-check: staged ids vs retriever vs FAISS-lite "
                "over %zu chunks: %s\n\n",
                corpus.numChunks, ok ? "PASS" : "FAIL");
    return ok;
}

struct QueryRecord
{
    double retrievalSeconds = 0;
    double hostSeconds = 0;
    double ttftSeconds = 0;
    double joules = 0;
};

} // namespace

int
main()
{
    // Serving metrics for the whole session; CISRAM_TRACE=<path>
    // additionally dumps a per-op timeline of every query.
    trace::Tracer::init();
    metrics::initFromEnv();
    metrics::setEnabled(true);

    if (!selfCheck())
        return 1;

    // 200 GB corpus, timing mode (paper scale).
    const auto &spec = ragCorpora()[2];
    apu::ApuDevice dev;
    const unsigned cores = dev.numCores();
    for (unsigned c = 0; c < cores; ++c)
        dev.core(c).setMode(apu::ExecMode::TimingOnly);

    // Per-core serving state, constructed up front on this thread so
    // device addresses are identical for any thread count: the HBM
    // model is stateful and a GDL session is single-threaded, so
    // each core owns one of each.
    std::vector<std::unique_ptr<dram::DramSystem>> hbms;
    std::vector<std::unique_ptr<RagRetriever>> retrievers;
    std::vector<std::unique_ptr<gdl::GdlContext>> hosts;
    std::vector<std::unique_ptr<gdl::DeviceBuffer>> qbufs;
    for (unsigned c = 0; c < cores; ++c) {
        hbms.push_back(std::make_unique<dram::DramSystem>(
            dram::hbm2eConfig()));
        retrievers.push_back(std::make_unique<RagRetriever>(
            dev, *hbms.back(), spec, kTopK, c));
        hosts.push_back(std::make_unique<gdl::GdlContext>(dev));
        qbufs.push_back(std::make_unique<gdl::DeviceBuffer>(
            *hosts.back(), spec.dim * 2));
    }

    LlmGenerationModel llm;
    energy::ApuPowerModel power;

    std::printf("corpus: %s (%zu chunks, %.1f GB of embeddings)\n",
                spec.label, spec.numChunks,
                spec.embeddingBytes() / 1e9);
    std::printf("generation: Llama3.1-8B prefill on dedicated GPU "
                "model\n");
    std::printf("serving: %d queries sharded over %u cores, "
                "CISRAM_SIM_THREADS=%u\n\n",
                kQueries, cores, simThreads());

    std::vector<QueryRecord> records(kQueries);
    std::vector<int> coreOf(kQueries, 0);

    auto wallStart = std::chrono::steady_clock::now();
    apu::runOnAllCores(dev, [&](apu::ApuCore &, unsigned c,
                                unsigned n) {
        auto shard = apu::shardOf(kQueries, c, n);
        auto &host = *hosts[c];
        auto &retriever = *retrievers[c];
        for (size_t q = shard.begin; q < shard.end; ++q) {
            coreOf[q] = static_cast<int>(c);
            auto query = genQuery(spec.dim, 1000 + static_cast<int>(q));

            // Host ships the embedded query to device DRAM.
            double pcieBefore = host.stats().pcieSeconds;
            qbufs[c]->toDev(query.data(), spec.dim * 2);

            auto r = retriever.retrieve(query, RagVariant::AllOpts,
                                        2026);

            // Host reads the top-5 ids back from the retriever's
            // staged result buffer (count 0 in timing mode, so this
            // models the fixed-size readback).
            uint32_t ids[kTopK] = {};
            host.memCpyFromDev(ids, gdl::MemHandle{r.topkIdsAddr},
                               sizeof(ids));

            auto &rec = records[q];
            rec.retrievalSeconds = r.stages.total();
            rec.hostSeconds =
                host.stats().pcieSeconds - pcieBefore;
            rec.ttftSeconds = rec.retrievalSeconds +
                rec.hostSeconds + llm.ttftSeconds();

            energy::ApuActivity act;
            act.totalSeconds = r.stages.total();
            act.computeSeconds = r.computeSeconds;
            act.dramBytes = r.dramBytes;
            act.cacheBytes = r.cacheBytes;
            rec.joules = power.energy(act).totalJ();
        }
    });
    double wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    // Registry observations in query order on this thread, so the
    // snapshot is independent of worker interleaving.
    auto &reg = metrics::Registry::get();
    auto &m_queries = reg.counter("rag.queries");
    auto &m_retrieval = reg.histogram("rag.retrieval_seconds");
    auto &m_ttft = reg.histogram("rag.ttft_seconds");
    auto &m_energy = reg.histogram("rag.query_energy_joules");
    auto &m_host = reg.histogram("rag.host_pcie_seconds");

    double total_energy = 0.0, total_ttft = 0.0;
    std::printf("%5s %4s %14s %14s %12s %12s\n", "query", "core",
                "retrieval (ms)", "PCIe+host (us)", "TTFT (ms)",
                "APU E (mJ)");
    for (int q = 0; q < kQueries; ++q) {
        const auto &rec = records[q];
        m_queries.inc();
        m_retrieval.observe(rec.retrievalSeconds);
        m_ttft.observe(rec.ttftSeconds);
        m_energy.observe(rec.joules);
        m_host.observe(rec.hostSeconds);
        total_energy += rec.joules;
        total_ttft += rec.ttftSeconds;
        std::printf("%5d %4d %14.1f %14.1f %12.1f %12.1f\n", q,
                    coreOf[q], rec.retrievalSeconds * 1e3,
                    rec.hostSeconds * 1e6, rec.ttftSeconds * 1e3,
                    rec.joules * 1e3);
    }

    // Aggregate throughput: the service is limited by the busiest
    // core's simulated serving time (cores run concurrently).
    std::vector<double> coreBusy(cores, 0.0);
    for (int q = 0; q < kQueries; ++q)
        coreBusy[coreOf[q]] += records[q].retrievalSeconds +
            records[q].hostSeconds;
    double busiest =
        *std::max_element(coreBusy.begin(), coreBusy.end());
    std::printf("\naggregate throughput: %.1f QPS over %u cores "
                "(busiest core %.1f ms for its shard)\n",
                kQueries / busiest, cores, busiest * 1e3);
    std::printf("host wall-clock for the serving loop: %.2f s "
                "(%u sim thread(s) on %u host cpu(s))\n",
                wallSeconds,
                simThreads() == 0 ? cores : simThreads(),
                std::thread::hardware_concurrency());
    std::printf("average TTFT: %.0f ms; retrieval energy per "
                "query: %.0f mJ\n",
                total_ttft / kQueries * 1e3,
                total_energy / kQueries * 1e3);
    energy::GpuEnergyModel gpu;
    std::printf("GPU retrieval energy at this corpus: %.1f J per "
                "query -> %.0fx reduction\n",
                gpu.retrievalEnergy(spec.embeddingBytes()),
                gpu.retrievalEnergy(spec.embeddingBytes()) /
                    (total_energy / kQueries));

    std::printf("\nservice metrics (registry snapshot):\n");
    std::printf("  queries served: %.0f\n", m_queries.value());
    std::printf("  retrieval  p=mean %.1f ms  min %.1f  max %.1f\n",
                m_retrieval.mean() * 1e3, m_retrieval.min() * 1e3,
                m_retrieval.max() * 1e3);
    std::printf("  TTFT       p=mean %.1f ms  min %.1f  max %.1f\n",
                m_ttft.mean() * 1e3, m_ttft.min() * 1e3,
                m_ttft.max() * 1e3);
    std::printf("  energy     p=mean %.1f mJ  total %.1f mJ\n",
                m_energy.mean() * 1e3, m_energy.sum() * 1e3);
    std::printf("  host PCIe  p=mean %.1f us\n",
                m_host.mean() * 1e6);
    if (trace::active())
        std::printf("  trace timeline armed (written at exit)\n");

    // Tear down in construction order: buffers before their GDL
    // sessions (the session's leak check runs at destruction).
    qbufs.clear();
    hosts.clear();
    return 0;
}
