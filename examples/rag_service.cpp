/**
 * @file
 * A fault-tolerant end-to-end RAG service on the compute-in-SRAM
 * device: ten questions flow through the full pipeline — host
 * staging over PCIe (GDL), query embedding transfer, exact top-5
 * retrieval on the APU against simulated HBM, and generation TTFT on
 * the dedicated-GPU model — reproducing the serving scenario behind
 * the paper's Fig. 14 and energy study.
 *
 * This example is the showcase for the recoverable-error contract
 * (DESIGN.md "Fault model"): every query is served under a deadline
 * through a bounded retry policy, behind a per-core circuit breaker
 * that routes to the FAISS-lite CPU baseline (Xeon timing model)
 * when a core misbehaves, and probes the core again after a
 * cooldown. Arm faults with e.g.
 *
 *   CISRAM_FAULT_SPEC="task_hang:core=1,p=0.7;pcie_corrupt:p=1e-3"
 *
 * and the service still answers all ten queries with correct top-k
 * ids — the functional self-check serves its queries through the
 * same fault-tolerant path and verifies every answer against an
 * exact CPU search. Fault activity is observable in the
 * fault.injected/detected/corrected/retries/fallbacks counters and
 * lands in BENCH_rag_service.json.
 *
 * The query stream is sharded across the device's four cores with
 * runOnAllCores (each core owns its own retriever, HBM model, GDL
 * session, and breaker) and served concurrently when
 * CISRAM_SIM_THREADS allows; reported latencies, fault draws, and
 * the aggregate QPS are identical for any thread count.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apusim/multicore.hh"
#include "baseline/faisslite.hh"
#include "baseline/timing_models.hh"
#include "bench_report.hh"
#include "common/metrics.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"
#include "energy/energy.hh"
#include "fault/fault.hh"
#include "gdl/gdl.hh"
#include "kernels/rag.hh"
#include "kernels/serving.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

constexpr size_t kTopK = 5;
constexpr int kQueries = 10;

/** How one query was answered. */
struct ServeOutcome
{
    bool ok = false;
    bool fromDevice = false;
    unsigned attempts = 0;          ///< device attempts made
    std::vector<uint32_t> ids;      ///< host-visible top-k ids
    kernels::RagRunResult run;      ///< device result (fromDevice)
    double retrievalSeconds = 0;    ///< device or CPU retrieval
    double hostSeconds = 0;         ///< PCIe staging + readback
    std::string lastError;          ///< last device failure, if any
};

/**
 * Per-core serving state plus the retry/breaker/fallback policy.
 * One instance per device core; each instance is driven by exactly
 * one shard thread, matching the GDL one-session-per-thread rule.
 */
class FaultTolerantServer
{
  public:
    FaultTolerantServer(apu::ApuDevice &dev, RagCorpusSpec spec,
                        unsigned core, const IndexFlatI16 *golden,
                        uint64_t corpus_seed)
        : spec_(spec), core_(core), golden_(golden),
          corpusSeed_(corpus_seed),
          hbm_(dram::hbm2eConfig()),
          retriever_(dev, hbm_, spec, kTopK, core),
          host_(dev), qbuf_(host_, spec.dim * 2)
    {}

    ServeOutcome
    serve(const std::vector<int16_t> &query)
    {
        ServeOutcome out;
        if (breaker_.allowRequest()) {
            for (unsigned a = 0; a < policy_.maxAttempts; ++a) {
                ++out.attempts;
                Status st = tryDevice(query, out);
                if (st.ok()) {
                    breaker_.recordSuccess();
                    out.ok = true;
                    out.fromDevice = true;
                    return out;
                }
                out.lastError = st.toString();
                // The host gives up on an attempt at the deadline;
                // that wait is part of the query's served latency.
                out.hostSeconds += policy_.deadlineSeconds;
                metrics::Registry::get()
                    .counter("fault.retries", {{"site", "query"}})
                    .inc();
            }
            breaker_.recordFailure();
        }
        cpuFallback(query, out);
        return out;
    }

    CircuitBreaker &breaker() { return breaker_; }
    gdl::GdlContext &host() { return host_; }
    const dram::DramSystem &hbm() const { return hbm_; }

  private:
    /** One device attempt: stage, retrieve under deadline, read back. */
    Status
    tryDevice(const std::vector<int16_t> &query, ServeOutcome &out)
    {
        double pcieBefore = host_.stats().pcieSeconds;
        Status st = host_.tryMemCpyToDev(qbuf_.handle(), query.data(),
                                         spec_.dim * 2);
        if (!st.ok())
            return st;

        kernels::RagRunResult r;
        st = host_.runTaskTimeoutOn(
            core_, policy_.deadlineSeconds, [&](apu::ApuCore &) {
                r = retriever_.retrieve(query, RagVariant::AllOpts,
                                        corpusSeed_);
                return 0;
            });
        if (!st.ok())
            return st;
        if (!r.status.ok())
            return r.status; // uncorrectable ECC during the stream

        // Read the staged ids back (fixed-size in timing mode).
        size_t n = r.topkIdsCount ? r.topkIdsCount : kTopK;
        out.ids.assign(n, 0);
        st = host_.tryMemCpyFromDev(out.ids.data(),
                                    gdl::MemHandle{r.topkIdsAddr},
                                    n * sizeof(uint32_t));
        if (!st.ok())
            return st;

        out.run = r;
        out.retrievalSeconds = r.stages.total();
        out.hostSeconds += host_.stats().pcieSeconds - pcieBefore;
        return Status::okStatus();
    }

    /** Exact CPU retrieval at Xeon latency; always succeeds. */
    void
    cpuFallback(const std::vector<int16_t> &query, ServeOutcome &out)
    {
        metrics::Registry::get().counter("fault.fallbacks").inc();
        if (golden_) {
            auto hits = golden_->search(query.data(), kTopK);
            out.ids.clear();
            for (const auto &h : hits)
                out.ids.push_back(static_cast<uint32_t>(h.id));
        }
        out.retrievalSeconds =
            xeon_.ennsRetrievalMs(spec_.embeddingBytes()) * 1e-3;
        out.ok = true;
    }

    RagCorpusSpec spec_;
    unsigned core_;
    const IndexFlatI16 *golden_; ///< functional mode only
    uint64_t corpusSeed_;
    RetryPolicy policy_{3, 0.25};
    CircuitBreaker breaker_{2, 2};
    XeonTimingModel xeon_;
    dram::DramSystem hbm_;
    RagRetriever retriever_;
    gdl::GdlContext host_;
    gdl::DeviceBuffer qbuf_;
};

/**
 * Functional self-check: serve ten queries over a small corpus
 * through the full fault-tolerant path — retry, breaker, CPU
 * fallback — round-robin across all cores, and verify every
 * answer's top-k ids against FAISS-lite exact search. With an armed
 * fault plan this is the proof that injected hangs, PCIe corruption,
 * and ECC errors degrade latency, never correctness.
 */
bool
selfCheck()
{
    RagCorpusSpec corpus{"demo", 0, 20000, 368};
    const uint64_t seed = 2026;

    apu::ApuDevice dev;
    auto emb = genEmbeddings(corpus, 0, corpus.numChunks, seed);
    IndexFlatI16 index(corpus.dim);
    index.add(emb.data(), corpus.numChunks);

    std::vector<std::unique_ptr<FaultTolerantServer>> servers;
    for (unsigned c = 0; c < dev.numCores(); ++c)
        servers.push_back(std::make_unique<FaultTolerantServer>(
            dev, corpus, c, &index, seed));

    bool all_ok = true;
    unsigned device_answers = 0, fallback_answers = 0;
    for (int q = 0; q < kQueries; ++q) {
        unsigned c = static_cast<unsigned>(q) % dev.numCores();
        auto query = genQuery(corpus.dim, 100 + q);
        auto expect = index.search(query.data(), kTopK);

        ServeOutcome out = servers[c]->serve(query);
        bool ok = out.ok && out.ids.size() == expect.size();
        for (size_t i = 0; ok && i < expect.size(); ++i)
            ok = out.ids[i] == static_cast<uint32_t>(expect[i].id);
        if (out.fromDevice)
            ++device_answers;
        else
            ++fallback_answers;
        if (!ok) {
            std::printf("  query %d on core %u: WRONG ANSWER "
                        "(attempts %u, %s)\n",
                        q, c, out.attempts,
                        out.lastError.empty() ? "no error"
                                              : out.lastError.c_str());
            all_ok = false;
        }
    }
    std::printf("self-check: %d queries over %zu chunks, "
                "%u from device, %u from CPU fallback: %s\n\n",
                kQueries, corpus.numChunks, device_answers,
                fallback_answers, all_ok ? "PASS" : "FAIL");
    return all_ok;
}

struct QueryRecord
{
    double retrievalSeconds = 0;
    double hostSeconds = 0;
    double ttftSeconds = 0;
    double joules = 0;
    unsigned attempts = 0;
    bool fromDevice = true;
};

} // namespace

int
main()
{
    // Serving metrics for the whole session; CISRAM_TRACE=<path>
    // additionally dumps a per-op timeline of every query.
    trace::Tracer::init();
    metrics::initFromEnv();
    metrics::setEnabled(true);
    fault::initFromEnv();

    if (const fault::FaultPlan *fp = fault::plan())
        std::printf("fault plan armed: %s\n\n",
                    fp->toString().c_str());

    if (!selfCheck())
        return 1;

    // 200 GB corpus, timing mode (paper scale).
    const auto &spec = ragCorpora()[2];
    apu::ApuDevice dev;
    const unsigned cores = dev.numCores();
    for (unsigned c = 0; c < cores; ++c)
        dev.core(c).setMode(apu::ExecMode::TimingOnly);

    // Per-core serving state, constructed up front on this thread so
    // device addresses and fault-draw streams are identical for any
    // thread count: the HBM model is stateful and a GDL session is
    // single-threaded, so each core owns one of each.
    std::vector<std::unique_ptr<FaultTolerantServer>> servers;
    for (unsigned c = 0; c < cores; ++c)
        servers.push_back(std::make_unique<FaultTolerantServer>(
            dev, spec, c, nullptr, 2026));

    LlmGenerationModel llm;
    energy::ApuPowerModel power;

    std::printf("corpus: %s (%zu chunks, %.1f GB of embeddings)\n",
                spec.label, spec.numChunks,
                spec.embeddingBytes() / 1e9);
    std::printf("generation: Llama3.1-8B prefill on dedicated GPU "
                "model\n");
    std::printf("serving: %d queries sharded over %u cores, "
                "CISRAM_SIM_THREADS=%u\n\n",
                kQueries, cores, simThreads());

    std::vector<QueryRecord> records(kQueries);
    std::vector<int> coreOf(kQueries, 0);

    auto wallStart = std::chrono::steady_clock::now();
    apu::runOnAllCores(dev, [&](apu::ApuCore &, unsigned c,
                                unsigned n) {
        auto shard = apu::shardOf(kQueries, c, n);
        auto &server = *servers[c];
        for (size_t q = shard.begin; q < shard.end; ++q) {
            coreOf[q] = static_cast<int>(c);
            auto query = genQuery(spec.dim, 1000 + static_cast<int>(q));

            ServeOutcome out = server.serve(query);

            auto &rec = records[q];
            rec.retrievalSeconds = out.retrievalSeconds;
            rec.hostSeconds = out.hostSeconds;
            rec.attempts = out.attempts;
            rec.fromDevice = out.fromDevice;
            rec.ttftSeconds = rec.retrievalSeconds +
                rec.hostSeconds + llm.ttftSeconds();

            if (out.fromDevice) {
                energy::ApuActivity act;
                act.totalSeconds = out.run.stages.total();
                act.computeSeconds = out.run.computeSeconds;
                act.dramBytes = out.run.dramBytes;
                act.cacheBytes = out.run.cacheBytes;
                rec.joules = power.energy(act).totalJ();
            }
        }
    });
    double wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    // Registry observations in query order on this thread, so the
    // snapshot is independent of worker interleaving.
    auto &reg = metrics::Registry::get();
    auto &m_queries = reg.counter("rag.queries");
    auto &m_retrieval = reg.histogram("rag.retrieval_seconds");
    auto &m_ttft = reg.histogram("rag.ttft_seconds");
    auto &m_energy = reg.histogram("rag.query_energy_joules");
    auto &m_host = reg.histogram("rag.host_pcie_seconds");

    double total_energy = 0.0, total_ttft = 0.0;
    unsigned device_queries = 0, fallback_queries = 0;
    unsigned total_attempts = 0;
    std::printf("%5s %4s %5s %8s %14s %12s %12s\n", "query", "core",
                "path", "attempts", "retrieval (ms)", "TTFT (ms)",
                "APU E (mJ)");
    for (int q = 0; q < kQueries; ++q) {
        const auto &rec = records[q];
        m_queries.inc();
        m_retrieval.observe(rec.retrievalSeconds);
        m_ttft.observe(rec.ttftSeconds);
        m_energy.observe(rec.joules);
        m_host.observe(rec.hostSeconds);
        total_energy += rec.joules;
        total_ttft += rec.ttftSeconds;
        total_attempts += rec.attempts;
        if (rec.fromDevice)
            ++device_queries;
        else
            ++fallback_queries;
        std::printf("%5d %4d %5s %8u %14.1f %12.1f %12.1f\n", q,
                    coreOf[q], rec.fromDevice ? "apu" : "cpu",
                    rec.attempts, rec.retrievalSeconds * 1e3,
                    rec.ttftSeconds * 1e3, rec.joules * 1e3);
    }

    // Aggregate throughput: the service is limited by the busiest
    // core's simulated serving time (cores run concurrently).
    std::vector<double> coreBusy(cores, 0.0);
    for (int q = 0; q < kQueries; ++q)
        coreBusy[coreOf[q]] += records[q].retrievalSeconds +
            records[q].hostSeconds;
    double busiest =
        *std::max_element(coreBusy.begin(), coreBusy.end());
    std::printf("\naggregate throughput: %.1f QPS over %u cores "
                "(busiest core %.1f ms for its shard)\n",
                kQueries / busiest, cores, busiest * 1e3);
    std::printf("host wall-clock for the serving loop: %.2f s "
                "(%u sim thread(s) on %u host cpu(s))\n",
                wallSeconds,
                simThreads() == 0 ? cores : simThreads(),
                std::thread::hardware_concurrency());
    std::printf("average TTFT: %.0f ms; retrieval energy per "
                "query: %.0f mJ\n",
                total_ttft / kQueries * 1e3,
                total_energy / kQueries * 1e3);
    energy::GpuEnergyModel gpu;
    std::printf("GPU retrieval energy at this corpus: %.1f J per "
                "query -> %.0fx reduction\n",
                gpu.retrievalEnergy(spec.embeddingBytes()),
                gpu.retrievalEnergy(spec.embeddingBytes()) /
                    (total_energy / std::max(1u, device_queries)));

    // Fault/robustness ledger: host-observed failure counters plus
    // the per-core breaker outcome.
    gdl::HostStats agg;
    dram::EccStats ecc;
    unsigned breaker_trips = 0;
    for (unsigned c = 0; c < cores; ++c) {
        const auto &hs = servers[c]->host().stats();
        agg.tasksFailed += hs.tasksFailed;
        agg.tasksTimedOut += hs.tasksTimedOut;
        agg.pcieRetries += hs.pcieRetries;
        agg.pcieErrors += hs.pcieErrors;
        agg.allocFailures += hs.allocFailures;
        ecc += servers[c]->hbm().eccStats();
        breaker_trips += servers[c]->breaker().trips();
    }
    std::printf("\nfault ledger (timing loop):\n");
    std::printf("  device queries %u, CPU fallbacks %u, device "
                "attempts %u\n",
                device_queries, fallback_queries, total_attempts);
    std::printf("  task timeouts %u, task failures %u, PCIe retries "
                "%u, PCIe errors %u\n",
                agg.tasksTimedOut, agg.tasksFailed, agg.pcieRetries,
                agg.pcieErrors);
    std::printf("  ECC: %llu words checked, %llu corrected, %llu "
                "uncorrectable\n",
                static_cast<unsigned long long>(ecc.wordsChecked),
                static_cast<unsigned long long>(ecc.singleCorrected),
                static_cast<unsigned long long>(ecc.doubleDetected));
    std::printf("  breaker trips %u; per-core state:", breaker_trips);
    for (unsigned c = 0; c < cores; ++c)
        std::printf(" %u=%s", c,
                    breakerStateName(servers[c]->breaker().state()));
    std::printf("\n");

    std::printf("\nservice metrics (registry snapshot):\n");
    std::printf("  queries served: %.0f\n", m_queries.value());
    std::printf("  retrieval  p=mean %.1f ms  min %.1f  max %.1f\n",
                m_retrieval.mean() * 1e3, m_retrieval.min() * 1e3,
                m_retrieval.max() * 1e3);
    std::printf("  TTFT       p=mean %.1f ms  min %.1f  max %.1f\n",
                m_ttft.mean() * 1e3, m_ttft.min() * 1e3,
                m_ttft.max() * 1e3);
    std::printf("  energy     p=mean %.1f mJ  total %.1f mJ\n",
                m_energy.mean() * 1e3, m_energy.sum() * 1e3);
    std::printf("  host PCIe  p=mean %.1f us\n",
                m_host.mean() * 1e6);
    if (trace::active())
        std::printf("  trace timeline armed (written at exit)\n");

    // Machine-readable fault/serving report (includes the metrics
    // registry snapshot, and with it every fault.* counter).
    {
        bench::BenchReport report("rag_service");
        report.note("fault_spec",
                    fault::plan() ? fault::plan()->toString()
                                  : "(none)");
        report.scalar("queries", kQueries);
        report.scalar("device_queries", device_queries);
        report.scalar("fallback_queries", fallback_queries);
        report.scalar("device_attempts", total_attempts);
        report.scalar("task_timeouts", agg.tasksTimedOut);
        report.scalar("task_failures", agg.tasksFailed);
        report.scalar("pcie_retries", agg.pcieRetries);
        report.scalar("pcie_errors", agg.pcieErrors);
        report.scalar("alloc_failures", agg.allocFailures);
        report.scalar("ecc_words_checked",
                      static_cast<double>(ecc.wordsChecked));
        report.scalar("ecc_single_corrected",
                      static_cast<double>(ecc.singleCorrected));
        report.scalar("ecc_double_detected",
                      static_cast<double>(ecc.doubleDetected));
        report.scalar("breaker_trips", breaker_trips);
        report.scalar("mean_ttft_seconds", total_ttft / kQueries);
        report.scalar("qps", kQueries / busiest);
        report.write();
    }

    // Tear down in declaration order inside each server: the query
    // buffer releases before its GDL session's leak check runs.
    servers.clear();
    return 0;
}
