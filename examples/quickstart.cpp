/**
 * @file
 * Quickstart: vector addition with the host-accelerator programming
 * model, mirroring the paper's Fig. 5.
 *
 * The "host program" holds a GDL session: it allocates device DRAM,
 * copies the inputs in over PCIe, invokes the device kernel with
 * gdl_run_task_timeout semantics, and copies the result out. The
 * "device program" moves data from device memory to L1, computes on
 * vector registers through GVML, and writes the result back -- the
 * same structure as the paper's vec_add example. Every device call's
 * status is checked: a nonzero task return or a failed transfer is a
 * hard error here, not a silently dropped code.
 */

#include <cstdio>
#include <vector>

#include "apusim/apu.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "gdl/gdl.hh"
#include "gvml/gvml.hh"

using namespace cisram;
using namespace cisram::gvml;

namespace {

/** The paper's program_data: device-memory handles. */
struct ProgramData
{
    gdl::MemHandle memHndlVec1;
    gdl::MemHandle memHndlVec2;
    gdl::MemHandle memHndlOut;
};

/** Device program (Fig. 5b): runs "on" the APU control processor. */
int
vecAddTask(apu::ApuCore &core, const ProgramData &data)
{
    Gvml gvml(core);

    constexpr Vmr vm0{0}, vm1{1}, vm3{3};
    constexpr Vr vec1{0}, vec2{1}, result{2};

    // Move inputs from device DRAM (L4) to L1.
    gvml.directDmaL4ToL1_32k(vm0, data.memHndlVec1.addr);
    gvml.directDmaL4ToL1_32k(vm1, data.memHndlVec2.addr);

    // Load to vector registers, compute, store.
    gvml.load16(vec1, vm0);
    gvml.load16(vec2, vm1);
    gvml.addU16(result, vec1, vec2);
    gvml.store16(vm3, result);

    // Move the result back to device DRAM.
    gvml.directDmaL1ToL4_32k(data.memHndlOut.addr, vm3);
    return 0;
}

} // namespace

int
main()
{
    // ---- host program (Fig. 5a) ---------------------------------
    apu::ApuDevice dev;
    gdl::GdlContext host(dev);
    const size_t length = dev.spec().vrLength;
    const uint64_t vec_bytes = length * sizeof(uint16_t);

    std::vector<uint16_t> vec1_host(length), vec2_host(length);
    Rng rng(7);
    for (size_t i = 0; i < length; ++i) {
        vec1_host[i] = rng.nextU16();
        vec2_host[i] = rng.nextU16();
    }

    // Allocate device DRAM and copy inputs to the device.
    gdl::MemHandle l4_buf = host.memAllocAligned(3 * vec_bytes);
    ProgramData cmd{l4_buf, l4_buf.offset(vec_bytes),
                    l4_buf.offset(2 * vec_bytes)};
    host.memCpyToDev(cmd.memHndlVec1, vec1_host.data(), vec_bytes);
    host.memCpyToDev(cmd.memHndlVec2, vec2_host.data(), vec_bytes);

    // Invoke the APU task; the return status must be acted on.
    int rc = host.runTask([&](apu::ApuCore &core) {
        return vecAddTask(core, cmd);
    });
    cisram_assert(rc == 0, "vec_add device task failed with status ",
                  rc);

    // Copy the output from device DRAM.
    std::vector<uint16_t> out(length);
    host.memCpyFromDev(out.data(), cmd.memHndlOut, vec_bytes);

    // Verify and report.
    size_t errors = 0;
    for (size_t i = 0; i < length; ++i)
        if (out[i] != static_cast<uint16_t>(vec1_host[i] +
                                            vec2_host[i]))
            ++errors;

    double cycles = dev.core(0).stats().cycles();
    std::printf("vec_add over %zu elements: %s\n", length,
                errors == 0 ? "PASS" : "FAIL");
    std::printf("device kernel: %.0f cycles = %.2f us at 500 MHz\n",
                cycles, dev.cyclesToSeconds(cycles) * 1e6);
    std::printf("host: %.1f us PCIe + %.1f us launch overhead\n",
                host.stats().pcieSeconds * 1e6,
                host.stats().invokeSeconds * 1e6);
    std::printf("out[0..3] = %u %u %u %u\n", out[0], out[1], out[2],
                out[3]);

    host.memFree(l4_buf);
    return errors == 0 ? 0 : 1;
}
