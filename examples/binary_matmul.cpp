/**
 * @file
 * The paper's motivating example (Section 4): binary matrix
 * multiplication, run functionally at a modest size across all
 * optimization levels, verified against the scalar reference, and
 * timed at the paper's 1024^3 scale.
 */

#include <cstdio>

#include "core/bmm_model.hh"
#include "kernels/bmm.hh"

using namespace cisram;
using namespace cisram::core;
using namespace cisram::kernels;

int
main()
{
    // ---- functional run: verify all variants compute the same C.
    BmmShape small{128, 128, 512};
    BmmData data = genBmmData(small, 42);
    auto reference = bmmReference(small, data);

    std::printf("functional check at %zux%zu, K=%zu bits:\n",
                small.m, small.n, small.kBits);
    for (auto v : {BmmVariant::Baseline, BmmVariant::Opt1,
                   BmmVariant::Opt1Opt2, BmmVariant::Opt1Opt3,
                   BmmVariant::AllOpts}) {
        apu::ApuDevice dev;
        auto r = runBmmApu(dev, small, v, &data);
        bool ok = r.c == reference;
        std::printf("  %-10s %s (%.2f ms on-device)\n",
                    bmmVariantName(v), ok ? "PASS" : "FAIL",
                    r.cycles.total() / 500.0e6 * 1e3);
        if (!ok)
            return 1;
    }

    // ---- paper-scale timing: the Fig. 12 experiment.
    std::printf("\npaper-scale (1024^3) latency:\n");
    BmmShape paper{1024, 1024, 1024};
    double base = 0, all = 0;
    for (auto v : {BmmVariant::Baseline, BmmVariant::AllOpts}) {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        auto r = runBmmApu(dev, paper, v, nullptr);
        double ms = r.cycles.total() / 500.0e6 * 1e3;
        std::printf("  %-10s %.1f ms\n", bmmVariantName(v), ms);
        (v == BmmVariant::Baseline ? base : all) = ms;
    }
    std::printf("  speedup: %.1fx (paper: 18.9x)\n", base / all);
    return 0;
}
