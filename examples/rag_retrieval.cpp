/**
 * @file
 * RAG retrieval on the compute-in-SRAM device (paper Section 5.3):
 * build a small corpus, serve a query with exact nearest-neighbour
 * search on the simulated APU, verify the top-k against FAISS-lite,
 * then time the paper's 200 GB configuration.
 */

#include <cstdio>

#include "baseline/faisslite.hh"
#include "baseline/timing_models.hh"
#include "kernels/rag.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

int
main()
{
    // ---- functional retrieval over a 20k-chunk corpus ----------
    RagCorpusSpec corpus{"demo", 0, 20000, 368};
    const uint64_t seed = 2026;
    auto query = genQuery(corpus.dim, 99);

    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, corpus, 5);
    auto result = retriever.retrieve(query, RagVariant::AllOpts,
                                     seed);

    // Reference: FAISS-lite exact search over the same embeddings.
    auto emb = genEmbeddings(corpus, 0, corpus.numChunks, seed);
    IndexFlatI16 index(corpus.dim);
    index.add(emb.data(), corpus.numChunks);
    auto expect = index.search(query.data(), 5);

    std::printf("top-5 over %zu chunks (APU vs FAISS-lite):\n",
                corpus.numChunks);
    bool ok = result.hits.size() == expect.size();
    for (size_t i = 0; i < expect.size(); ++i) {
        std::printf("  #%zu chunk %6zu score %6.0f | chunk %6zu "
                    "score %6.0f\n",
                    i + 1, result.hits[i].id, result.hits[i].score,
                    expect[i].id, expect[i].score);
        ok = ok && result.hits[i] == expect[i];
    }
    std::printf("exactness: %s\n\n", ok ? "PASS" : "FAIL");
    if (!ok)
        return 1;

    // ---- paper-scale latency (200 GB corpus) --------------------
    const auto &big = ragCorpora()[2];
    apu::ApuDevice tdev;
    tdev.core(0).setMode(apu::ExecMode::TimingOnly);
    dram::DramSystem thbm(dram::hbm2eConfig());
    RagRetriever timed(tdev, thbm, big, 5);
    auto q2 = genQuery(big.dim, 1);

    XeonTimingModel cpu;
    double cpu_ms = cpu.ennsRetrievalMs(big.embeddingBytes());
    for (auto v : {RagVariant::NoOpt, RagVariant::AllOpts}) {
        auto r = timed.retrieve(q2, v, 1);
        std::printf("%s corpus, %-8s: %.1f ms retrieval "
                    "(CPU model: %.1f ms, speedup %.1fx)\n",
                    big.label, ragVariantName(v),
                    r.stages.total() * 1e3, cpu_ms,
                    cpu_ms / (r.stages.total() * 1e3));
    }
    return 0;
}
