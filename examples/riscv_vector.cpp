/**
 * @file
 * Building a different vector abstraction from microcode: a small
 * RISC-V-vector-style program on the APU's bit processors, the
 * capability the paper highlights in Section 2.2.2 (citing Golden et
 * al.'s virtual RISC-V vector ISA on this device).
 *
 * The program computes saxpy-like z = a*x + y over u16 lanes and a
 * clamp z = min(z, cap), using only micro-operations on the read
 * latch, neighbour wires, and global lines (Table 2) -- no GVML.
 */

#include <cstdio>
#include <vector>

#include "common/rng.hh"
#include "rvv/rvv.hh"

using namespace cisram;
using namespace cisram::rvv;

int
main()
{
    apu::ApuDevice dev;
    RvvUnit v(dev.core(0));

    // Initialize x (v1), y (v2), a (v3, splatted), cap (v4).
    Rng rng(123);
    for (auto &e : v.data(1))
        e = static_cast<uint16_t>(rng.nextBelow(1000));
    for (auto &e : v.data(2))
        e = static_cast<uint16_t>(rng.nextBelow(1000));
    for (auto &e : v.data(3))
        e = 37;
    for (auto &e : v.data(4))
        e = 20000;

    // z = a * x + y; z = min(z, cap).
    v.vmul_vv(5, 3, 1);  // v5 = a * x
    v.vadd_vv(5, 5, 2);  // v5 += y
    v.vmsltu_vv(6, 5, 4);
    v.vmerge_vvm(7, 5, 4, 6); // v7 = min(v5, cap)

    // Verify against scalar semantics.
    size_t errors = 0;
    for (size_t i = 0; i < v.vl(); ++i) {
        uint16_t z = static_cast<uint16_t>(37u * v.data(1)[i] +
                                           v.data(2)[i]);
        uint16_t expect = std::min<uint16_t>(z, 20000);
        if (v.data(7)[i] != expect)
            ++errors;
    }

    std::printf("rvv saxpy+clamp over %zu lanes: %s\n", v.vl(),
                errors == 0 ? "PASS" : "FAIL");
    std::printf("micro-ops issued: %llu (~%.0f us at one uop per "
                "cycle)\n",
                static_cast<unsigned long long>(v.uops()),
                static_cast<double>(v.uops()) / 500.0);
    std::printf("z[0..3] = %u %u %u %u\n", v.data(7)[0],
                v.data(7)[1], v.data(7)[2], v.data(7)[3]);
    return errors == 0 ? 0 : 1;
}
