/**
 * @file
 * Modeling an application with the analytical framework, the C++
 * equivalent of the paper's Fig. 6: the Histogram application's
 * structure is written against the estimator's GVML-shaped API and
 * the framework reports the predicted latency. The same calibration
 * flow (profile the device, fit Eq. 1) is shown explicitly.
 */

#include <cstdio>

#include "apusim/apu.hh"
#include "model/latency_estimator.hh"
#include "model/sg_model.hh"

using namespace cisram;
using namespace cisram::model;

int
main()
{
    // Calibrate the Eq. 1 subgroup-reduction model by profiling the
    // device, as Section 3.1 prescribes for any new platform.
    apu::ApuDevice dev;
    SubgroupReductionModel sg;
    sg.calibrate(dev.core(0));
    std::printf("Eq. 1 calibrated: mean fit error %.2f%%\n",
                sg.fitError() * 100.0);

    // framework = LatencyEstimator()  (Fig. 6, line 1)
    LatencyEstimator framework;
    framework.setSgModel(sg);

    // The Fig. 6 histogram model program, transliterated.
    double total_data_size = 1024.0 * 1024 * 256 * 3;
    double tile_data_size = 8.0 * 1024 * 48;
    double tile_num = total_data_size / tile_data_size;

    framework.repeat(tile_num, [&] {
        framework.repeat(48, [&] {
            framework.repeat(2, [&] {
                framework.fastDmaL4ToL2(32 * 512); // L4 -> L2 DMA
            });
            framework.directDmaL2ToL1_32k(); // L2 -> L1 DMA
        });
        framework.repeat(48, [&] {
            framework.gvmlLoad16();
            framework.repeat(8, [&] {
                framework.gvmlCpySubgrp16Grp();
                framework.gvmlCreateGrpIndexU16();
                framework.gvmlCpyImm16();
                framework.repeat(8, [&] {
                    framework.gvmlCpy16Msk(); // masked copy
                    framework.gvmlSrImm16();  // shift right by imm
                    framework.gvmlEq16();
                    framework.gvmlCpyFromMrk16();
                });
            });
        });
        framework.repeat(8, [&] {
            framework.gvmlStore16();
            framework.directDmaL1ToL4_32k();
        });
    });

    // latency = framework.report_latency()
    std::printf("Latency: %.1f us\n", framework.microseconds());
    std::printf("        (%.3f s for %.0f MB of input)\n",
                framework.seconds(), total_data_size / 1e6);

    // The framework also answers what-if questions: halve the DMA
    // cost and re-evaluate without touching the device.
    LatencyEstimator faster;
    faster.setSgModel(sg);
    faster.table().dmaL4L2PerByte /= 2.0;
    faster.repeat(tile_num, [&] {
        faster.repeat(48, [&] {
            faster.repeat(2,
                          [&] { faster.fastDmaL4ToL2(32 * 512); });
            faster.directDmaL2ToL1_32k();
        });
    });
    std::printf("DMA portion at 2x bandwidth: %.1f us\n",
                faster.microseconds());
    return 0;
}
